//! Quickstart: parse XML, inspect the pre/post encoding, and run XPath
//! axis steps with the staircase join.
//!
//! ```sh
//! cargo run -p staircase-suite --example quickstart
//! ```

use staircase_suite::prelude::*;

fn main() {
    // The running example of the paper (Figure 1).
    let xml = "<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>";
    let doc = Doc::from_xml(xml).expect("well-formed XML");

    // --- Figure 2: the doc table -------------------------------------
    println!("doc table for {xml}");
    println!("{:>4} {:>4} {:>5} {:>5}  tag", "pre", "post", "level", "size");
    for v in doc.pres() {
        println!(
            "{:>4} {:>4} {:>5} {:>5}  {}",
            v,
            doc.post(v),
            doc.level(v),
            doc.subtree_size(v),
            doc.tag_name(v).unwrap_or("-"),
        );
    }
    println!("document height h = {}\n", doc.height());

    // --- Axis steps with the staircase join --------------------------
    let f = doc.pres().find(|&v| doc.tag_name(v) == Some("f")).unwrap();
    let ctx = Context::singleton(f);
    for axis in Axis::PARTITIONING {
        let (result, stats) = axis_step(&doc, &ctx, axis, Variant::EstimationSkipping);
        let names: Vec<_> = result.iter().filter_map(|v| doc.tag_name(v)).collect();
        println!("f/{axis:<12} = {names:?}   [{stats}]");
    }
    println!();

    // --- Full XPath via the evaluator ---------------------------------
    let out = evaluate(&doc, "/descendant::e/child::*", Engine::default()).unwrap();
    let names: Vec<_> = out.result.iter().filter_map(|v| doc.tag_name(v)).collect();
    println!("/descendant::e/child::* = {names:?}");

    // The staircase join produces document-order, duplicate-free results,
    // so steps chain without sorting — XPath semantics for free.
    let out = evaluate(&doc, "//f/ancestor::node()", Engine::default()).unwrap();
    let names: Vec<_> = out.result.iter().filter_map(|v| doc.tag_name(v)).collect();
    println!("//f/ancestor::node()    = {names:?}");
}
