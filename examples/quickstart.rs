//! Quickstart: parse XML into a session, inspect the pre/post encoding,
//! run axis steps with the staircase join, and query through the
//! prepared-query API.
//!
//! ```sh
//! cargo run -p staircase-suite --example quickstart
//! ```

use staircase_suite::prelude::*;

fn main() -> Result<(), Error> {
    // The running example of the paper (Figure 1).
    let xml = "<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>";
    let session = Session::parse_xml(xml)?;
    let doc = session.doc();

    // --- Figure 2: the doc table -------------------------------------
    println!("doc table for {xml}");
    println!(
        "{:>4} {:>4} {:>5} {:>5}  tag",
        "pre", "post", "level", "size"
    );
    for v in doc.pres() {
        println!(
            "{:>4} {:>4} {:>5} {:>5}  {}",
            v,
            doc.post(v),
            doc.level(v),
            doc.subtree_size(v),
            doc.tag_name(v).unwrap_or("-"),
        );
    }
    println!("document height h = {}\n", doc.height());

    // --- Axis steps with the staircase join --------------------------
    let f = doc
        .pres()
        .find(|&v| doc.tag_name(v) == Some("f"))
        .expect("fixture contains <f>");
    let ctx = Context::singleton(f);
    for axis in Axis::PARTITIONING {
        let (result, stats) = try_axis_step(doc, &ctx, axis, Variant::EstimationSkipping)?;
        let names: Vec<_> = result.iter().filter_map(|v| doc.tag_name(v)).collect();
        println!("f/{axis:<12} = {names:?}   [{stats}]");
    }
    println!();

    // --- Full XPath via the session ----------------------------------
    let out = session.run("/descendant::e/child::*", Engine::default())?;
    let names: Vec<_> = out.iter().filter_map(|v| doc.tag_name(v)).collect();
    println!("/descendant::e/child::* = {names:?}");

    // The staircase join produces document-order, duplicate-free results,
    // so steps chain without sorting — XPath semantics for free. A
    // prepared query parses once and runs on any engine.
    let query = session.prepare("//f/ancestor::node()")?;
    let names: Vec<_> = query
        .run(Engine::default())
        .iter()
        .filter_map(|v| doc.tag_name(v))
        .collect();
    println!("//f/ancestor::node()    = {names:?}");
    let skipping = Engine::staircase().variant(Variant::Skipping).build()?;
    assert_eq!(query.run(skipping).len(), names.len());
    Ok(())
}
