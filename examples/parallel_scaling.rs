//! Partitioned parallel staircase join (§3.2/§6): measure how the second
//! axis steps of Q1 and Q2 scale with worker threads.
//!
//! ```sh
//! cargo run --release -p staircase-suite --example parallel_scaling [scale]
//! ```

use staircase_suite::prelude::*;

fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut xs: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() -> Result<(), Error> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    eprintln!("generating scale-{scale} document …");
    let session = Session::new(generate(XmarkConfig::new(scale)));
    let doc = session.doc();
    // The session's tag fragments are built once and shared.
    let tags = session.tag_index();
    let profiles: Context = tags
        .fragment_by_name(doc, "profile")
        .iter()
        .copied()
        .collect();
    let increases: Context = tags
        .fragment_by_name(doc, "increase")
        .iter()
        .copied()
        .collect();
    println!(
        "{} nodes; {} profile steps (Q1 desc), {} increase steps (Q2 anc)\n",
        doc.len(),
        profiles.len(),
        increases.len()
    );

    // Verify once that the parallel engine is result-identical, through
    // the session API.
    let query = session.prepare("/descendant::profile/descendant::education")?;
    let serial = query.run(Engine::default());
    let parallel = query.run(Engine::staircase().parallel(4).build()?);
    assert_eq!(
        serial.nodes(),
        parallel.nodes(),
        "parallel join must be exact"
    );

    println!("{:>8} {:>16} {:>16}", "threads", "Q1 desc ms", "Q2 anc ms");
    let baseline_q1 = median_ms(3, || {
        descendant(doc, &profiles, Variant::EstimationSkipping)
    });
    let baseline_q2 = median_ms(3, || ancestor(doc, &increases, Variant::Skipping));
    println!("{:>8} {baseline_q1:>16.2} {baseline_q2:>16.2}", "serial");
    for threads in [1usize, 2, 4, 8] {
        let q1 = median_ms(3, || {
            descendant_parallel(doc, &profiles, Variant::EstimationSkipping, threads)
        });
        let q2 = median_ms(3, || {
            ancestor_parallel(doc, &increases, Variant::Skipping, threads)
        });
        println!("{threads:>8} {q1:>16.2} {q2:>16.2}");
    }
    println!("\n(partitions are disjoint pre-ranges of the plane — Figure 8 — so no");
    println!("merge or sort is needed after the workers finish)");
    Ok(())
}
