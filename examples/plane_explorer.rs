//! Visualise the pre/post plane: plot a small document, shade the region
//! of a chosen axis/context node, and show the staircase a pruned context
//! traces (paper Figures 2, 5 and 6 as ASCII art).
//!
//! ```sh
//! cargo run -p staircase-suite --example plane_explorer
//! ```

use staircase_suite::prelude::*;

fn plot(doc: &Doc, title: &str, mark: impl Fn(Pre) -> char) {
    println!("{title}");
    let n = doc.len() as u32;
    // post on the y axis (top = high), pre on the x axis.
    for post in (0..n).rev() {
        let mut row = String::new();
        for pre in 0..n {
            let c = if doc.post(pre) == post {
                mark(pre)
            } else {
                '·'
            };
            row.push(c);
            row.push(' ');
        }
        println!("{post:>3} | {row}");
    }
    print!("      ");
    for pre in 0..n {
        print!("{pre:<2}");
    }
    println!("  (pre →, post ↑)");
    println!();
}

fn main() -> Result<(), Error> {
    let xml = "<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>";
    let session = Session::parse_xml(xml)?;
    let doc = session.doc();
    let name = |v: Pre| {
        doc.tag_name(v)
            .and_then(|n| n.chars().next())
            .unwrap_or('?')
    };

    plot(doc, "the pre/post plane of Figure 2:", name);

    // Regions of context node f (pre 5), Figure 2's dashed lines.
    let f: Pre = 5;
    for axis in Axis::PARTITIONING {
        let Some(region) = Region::of(doc, axis, f) else {
            continue;
        };
        plot(doc, &format!("f/{axis} region (■ = inside):"), |v| {
            if v == f {
                '◦'
            } else if region.contains(v, doc.post(v)) {
                '■'
            } else {
                name(v)
            }
        });
    }

    // A context sequence and its descendant staircase (Figure 6).
    let ctx: Context = [1u32, 4, 5, 8].into_iter().collect(); // b, e, f, i
    let pruned = prune(doc, &ctx, Axis::Descendant);
    println!(
        "context {{b,e,f,i}} prunes to {:?} for descendant (f, i are inside e's subtree):",
        pruned
            .iter()
            .filter_map(|v| doc.tag_name(v))
            .collect::<Vec<_>>()
    );
    plot(doc, "the staircase (◦ = pruned context steps):", |v| {
        if pruned.contains(v) {
            '◦'
        } else {
            name(v)
        }
    });

    let (result, stats) = descendant(doc, &pruned, Variant::EstimationSkipping);
    println!(
        "descendant result: {:?}",
        result
            .iter()
            .filter_map(|v| doc.tag_name(v))
            .collect::<Vec<_>>()
    );
    println!("stats: {stats}");

    // The same step through the session API, for comparison.
    let query = session.prepare("descendant::node()")?;
    let out = query.run_from(&pruned, Engine::default())?;
    assert_eq!(out.nodes(), &result);
    println!("(session API agrees: {} nodes)", out.len());
    Ok(())
}
