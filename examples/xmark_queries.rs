//! Run the paper's benchmark queries Q1 and Q2 over a generated
//! XMark-like document and compare engines: staircase join (with and
//! without name-test pushdown), the naive strategy, and the tree-unaware
//! SQL plan.
//!
//! ```sh
//! cargo run --release -p staircase-suite --example xmark_queries [scale]
//! ```

use staircase_suite::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    eprintln!("generating XMark-like document at scale {scale} …");
    let doc = generate(XmarkConfig::new(scale));
    let profile = DocProfile::measure(&doc);
    println!(
        "document: {} nodes ({} elements, {} attributes, {} texts), height {}",
        profile.nodes, profile.elements, profile.attributes, profile.texts, profile.height
    );
    println!(
        "entities: {} persons, {} open auctions, {} bidders ({:.2} per auction), {} increases\n",
        profile.persons,
        profile.open_auctions,
        profile.bidders,
        profile.bidders as f64 / profile.open_auctions.max(1) as f64,
        profile.increases
    );

    let queries = [
        ("Q1", "/descendant::profile/descendant::education"),
        ("Q2", "/descendant::increase/ancestor::bidder"),
    ];
    let engines: [(&str, Engine); 4] = [
        ("staircase", Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false }),
        ("staircase+pushdown", Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true }),
        ("naive", Engine::Naive),
        ("sql-plan", Engine::Sql { eq1_window: true, early_nametest: true }),
    ];

    for (qname, query) in queries {
        println!("{qname}: {query}");
        for (ename, engine) in engines {
            let eval = Evaluator::new(&doc, engine);
            let t0 = std::time::Instant::now();
            let out = eval.evaluate(query).expect("query parses");
            let dt = t0.elapsed();
            println!(
                "  {ename:<20} {:>8} results  {:>10.2?}  touched {:>10}  duplicates {:>8}",
                out.result.len(),
                dt,
                out.stats.total_touched(),
                out.stats.total_duplicates(),
            );
        }
        println!();
    }

    println!("note: 'duplicates' is the row count the unique operator had to remove;");
    println!("the staircase join never generates any (paper §3.2, property 3).");
}
