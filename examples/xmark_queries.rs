//! Run the paper's benchmark queries Q1 and Q2 over a generated
//! XMark-like document and compare engines: staircase join (with and
//! without name-test pushdown), the naive strategy, and the tree-unaware
//! SQL plan.
//!
//! ```sh
//! cargo run --release -p staircase-suite --example xmark_queries [scale]
//! ```

use staircase_suite::prelude::*;

fn main() -> Result<(), Error> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    eprintln!("generating XMark-like document at scale {scale} …");
    let session = Session::new(generate(XmarkConfig::new(scale)));
    let profile = DocProfile::measure(session.doc());
    println!(
        "document: {} nodes ({} elements, {} attributes, {} texts), height {}",
        profile.nodes, profile.elements, profile.attributes, profile.texts, profile.height
    );
    println!(
        "entities: {} persons, {} open auctions, {} bidders ({:.2} per auction), {} increases\n",
        profile.persons,
        profile.open_auctions,
        profile.bidders,
        profile.bidders as f64 / profile.open_auctions.max(1) as f64,
        profile.increases
    );

    let queries = [
        ("Q1", "/descendant::profile/descendant::education"),
        ("Q2", "/descendant::increase/ancestor::bidder"),
    ];
    let engines: [(&str, Engine); 4] = [
        ("staircase", Engine::default()),
        (
            "staircase+pushdown",
            Engine::staircase().pushdown(true).build()?,
        ),
        ("naive", Engine::naive()),
        (
            "sql-plan",
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()?,
        ),
    ];

    for (qname, query_text) in queries {
        println!("{qname}: {query_text}");
        // Parsed once; run on every engine. The session's cached
        // auxiliary structures are shared across all of them.
        let query = session.prepare(query_text)?;
        for (ename, engine) in engines {
            let t0 = std::time::Instant::now();
            let out = query.run(engine);
            let dt = t0.elapsed();
            println!(
                "  {ename:<20} {:>8} results  {:>10.2?}  touched {:>10}  duplicates {:>8}",
                out.len(),
                dt,
                out.stats().total_touched(),
                out.stats().total_duplicates(),
            );
        }
        println!();
    }

    println!("note: 'duplicates' is the row count the unique operator had to remove;");
    println!("the staircase join never generates any (paper §3.2, property 3).");
    Ok(())
}
