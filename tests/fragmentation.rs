//! Tag-name fragmentation (§6 future work): per-tag fragments answer the
//! paper's queries exactly like the full plane, while touching only
//! fragment nodes.

use staircase_suite::prelude::*;

#[test]
fn fragments_partition_the_elements() {
    let session = Session::new(generate(XmarkConfig::new(0.1)));
    let doc = session.doc();
    let idx = session.tag_index();
    let total: usize = (0..idx.len() as u32)
        .map(|t| idx.fragment(doc, t).len())
        .sum();
    assert_eq!(
        total,
        doc.kind_counts().0,
        "every element in exactly one fragment"
    );
    // Fragments are document-ordered and duplicate-free.
    for t in 0..idx.len() as u32 {
        let frag = idx.fragment(doc, t);
        assert!(frag.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn q1_over_fragments_equals_full_plane() {
    let session = Session::new(generate(XmarkConfig::new(0.1)));
    let doc = session.doc();
    let idx = session.tag_index();
    let root = Context::singleton(doc.root());

    // Step 1: /descendant::profile over the profile fragment.
    let (profiles, s1) = descendant_on_list(doc, idx.fragment_by_name(doc, "profile"), &root);
    // Step 2: /descendant::education over the education fragment.
    let (educations, s2) =
        descendant_on_list(doc, idx.fragment_by_name(doc, "education"), &profiles);

    let full = session
        .run(
            "/descendant::profile/descendant::education",
            Engine::default(),
        )
        .unwrap();
    assert_eq!(&educations, full.nodes());

    // The whole point of fragmentation: node accesses bounded by the
    // fragment sizes, not the document size.
    let frag_nodes =
        idx.fragment_by_name(doc, "profile").len() + idx.fragment_by_name(doc, "education").len();
    assert!(
        (s1.nodes_touched() + s2.nodes_touched()) as usize <= frag_nodes,
        "touched {} > fragment total {}",
        s1.nodes_touched() + s2.nodes_touched(),
        frag_nodes
    );
}

#[test]
fn ancestor_steps_work_on_fragments_too() {
    let session = Session::new(generate(XmarkConfig::new(0.1)));
    let doc = session.doc();
    let idx = session.tag_index();
    let increases: Context = idx
        .fragment_by_name(doc, "increase")
        .iter()
        .copied()
        .collect();
    let (bidders, _) =
        staircase_core::ancestor_on_list(doc, idx.fragment_by_name(doc, "bidder"), &increases);
    let full = session
        .run("/descendant::increase/ancestor::bidder", Engine::default())
        .unwrap();
    assert_eq!(&bidders, full.nodes());
}

#[test]
fn fragments_compose_across_multiple_steps() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let doc = session.doc();
    let idx = session.tag_index();
    let root = Context::singleton(doc.root());
    // site → open_auction → bidder → increase, all on fragments.
    let (auctions, _) = descendant_on_list(doc, idx.fragment_by_name(doc, "open_auction"), &root);
    let (bidders, _) = descendant_on_list(doc, idx.fragment_by_name(doc, "bidder"), &auctions);
    let (increases, _) = descendant_on_list(doc, idx.fragment_by_name(doc, "increase"), &bidders);
    let full = session
        .run(
            "/descendant::open_auction/descendant::bidder/descendant::increase",
            Engine::default(),
        )
        .unwrap();
    assert_eq!(&increases, full.nodes());
}

#[test]
fn empty_fragment_is_harmless() {
    let session = Session::new(generate(XmarkConfig::new(0.02)));
    let doc = session.doc();
    let idx = session.tag_index();
    let root = Context::singleton(doc.root());
    let (r, stats) = descendant_on_list(doc, idx.fragment_by_name(doc, "no-such-tag"), &root);
    assert!(r.is_empty());
    assert_eq!(stats.nodes_touched(), 0);
}
