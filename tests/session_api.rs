//! The session façade, exercised end to end: every engine configuration
//! must produce identical results for arbitrary documents and queries
//! run through [`Session`]/[`Query`], and the session must build its
//! auxiliary structures at most once however many queries it serves.

use proptest::prelude::*;
use staircase_suite::prelude::*;

/// Every buildable engine configuration.
fn all_engines() -> Vec<Engine> {
    vec![
        Engine::staircase()
            .variant(Variant::Basic)
            .build()
            .expect("valid engine config"),
        Engine::staircase()
            .variant(Variant::Skipping)
            .build()
            .expect("valid engine config"),
        Engine::staircase()
            .variant(Variant::EstimationSkipping)
            .build()
            .expect("valid engine config"),
        Engine::staircase()
            .pushdown(true)
            .build()
            .expect("valid engine config"),
        Engine::staircase()
            .fragmented(true)
            .build()
            .expect("valid engine config"),
        Engine::staircase()
            .parallel(3)
            .build()
            .expect("valid engine config"),
        Engine::naive(),
        Engine::sql().build().expect("valid engine config"),
        Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .expect("valid config"),
        Engine::auto(),
        Engine::adaptive(),
    ]
}

/// An arbitrary small document built through the encoding builder.
fn arb_doc() -> impl Strategy<Value = Doc> {
    proptest::collection::vec(0u8..5, 1..250).prop_map(|ops| {
        let tags = ["p", "q", "r"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        let mut just_text = false;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 3 => {
                    b.open_element(tags[i % tags.len()]);
                    depth += 1;
                    just_text = false;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                    just_text = false;
                }
                2 if !just_text => {
                    b.text("t");
                    just_text = true;
                }
                _ => {
                    b.comment("c");
                    just_text = false;
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

/// An arbitrary absolute query over the `p`/`q`/`r` vocabulary: one to
/// three steps of partitioning/child axes with name, wildcard, or node
/// tests, optionally carrying an existential predicate (which exercises
/// the staircase engines' semijoin fast path).
fn arb_query() -> impl Strategy<Value = String> {
    let axis = prop_oneof![
        Just("descendant"),
        Just("ancestor"),
        Just("following"),
        Just("preceding"),
        Just("child"),
        Just("descendant-or-self"),
        Just("ancestor-or-self"),
    ];
    let test = prop_oneof![Just("p"), Just("q"), Just("r"), Just("*"), Just("node()")];
    let pred = prop_oneof![
        Just(""),
        Just("[p]"),
        Just("[descendant::q]"),
        Just("[zzz]")
    ];
    proptest::collection::vec((axis, test, pred), 1..4).prop_map(|steps| {
        let mut out = String::new();
        for (axis, test, pred) in steps {
            out.push('/');
            out.push_str(axis);
            out.push_str("::");
            out.push_str(test);
            out.push_str(pred);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the whole engine zoo: any engine —
    /// including the cost-based planner — same answer, for random
    /// documents and random prepared queries.
    #[test]
    fn every_engine_agrees_via_session((doc, query) in (arb_doc(), arb_query())) {
        let session = Session::new(doc);
        let prepared = session.prepare(&query)
            .unwrap_or_else(|e| panic!("generated query {query:?} must parse: {e}"));
        let reference = prepared.run(Engine::naive());
        for engine in all_engines() {
            let got = prepared.run(engine);
            prop_assert_eq!(
                got.nodes(),
                reference.nodes(),
                "{} via {:?}",
                query,
                engine
            );
        }
        // The satellite claim, spelled out: Engine::auto() is
        // node-identical to Engine::default() on every generated query.
        prop_assert_eq!(
            prepared.run(Engine::auto()).nodes(),
            prepared.run(Engine::default()).nodes(),
            "auto vs default on {}",
            query
        );
        // However many engines ran, the session built each auxiliary
        // structure at most once.
        let builds = session.aux_builds();
        prop_assert!(builds.tag_index <= 1);
        prop_assert!(builds.sql_engine <= 1);
    }

    /// The adaptive engine is node- and order-identical to every fixed
    /// engine through both `run` and `run_many`, at every session pool
    /// width — re-planning may change access paths, never answers.
    #[test]
    fn adaptive_agrees_at_every_pool_width((doc, query) in (arb_doc(), arb_query())) {
        for width in [1usize, 2, 4] {
            let session = Session::new(doc.clone()).with_threads(width);
            let prepared = session.prepare(&query)
                .unwrap_or_else(|e| panic!("generated query {query:?} must parse: {e}"));
            let reference = prepared.run(Engine::naive());
            let single = prepared.run(Engine::adaptive());
            prop_assert_eq!(
                single.nodes(),
                reference.nodes(),
                "run at width {}: {}",
                width,
                query
            );
            // The same query twice in one batch: both lanes re-plan (or
            // decline to) independently and agree with the fixed run.
            let batch = session.run_many(&[&prepared, &prepared], Engine::adaptive());
            for out in &batch {
                prop_assert_eq!(
                    out.nodes(),
                    reference.nodes(),
                    "run_many at width {}: {}",
                    width,
                    query
                );
            }
        }
    }

    /// Sessions over a persisted plane answer exactly like sessions over
    /// the original document.
    #[test]
    fn persisted_sessions_answer_identically(doc in arb_doc()) {
        let original = Session::new(doc);
        let reloaded = Session::from_encoded_bytes(&original.doc().to_bytes())
            .expect("self-produced bytes decode");
        for query in ["/descendant::p", "//q/ancestor::node()", "//r[p]"] {
            let a = original.run(query, Engine::default()).unwrap();
            let b = reloaded.run(query, Engine::default()).unwrap();
            prop_assert_eq!(a.nodes(), b.nodes(), "{}", query);
        }
    }
}

#[test]
fn auxiliary_structures_build_at_most_once() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    assert_eq!(
        session.aux_builds(),
        AuxBuilds::default(),
        "nothing built up front"
    );

    let fragmented = Engine::staircase().fragmented(true).build().unwrap();
    let sql = Engine::sql()
        .eq1_window(true)
        .early_nametest(true)
        .build()
        .unwrap();
    let queries: Vec<Query> = [
        "/descendant::profile/descendant::education",
        "/descendant::increase/ancestor::bidder",
        "//open_auction[bidder]",
    ]
    .iter()
    .map(|q| session.prepare(q).unwrap())
    .collect();

    for _ in 0..4 {
        for query in &queries {
            query.run(Engine::default());
            query.run(fragmented);
            query.run(sql);
        }
    }
    // 36 runs across three engines and three prepared queries: exactly
    // one TagIndex and one SqlEngine were ever constructed.
    assert_eq!(
        session.aux_builds(),
        AuxBuilds {
            tag_index: 1,
            sql_engine: 1
        }
    );
}

#[test]
fn warm_builds_everything_exactly_once() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    assert_eq!(session.aux_builds(), AuxBuilds::default());

    // Warm builds both structures (concurrently) …
    session.warm();
    assert_eq!(
        session.aux_builds(),
        AuxBuilds {
            tag_index: 1,
            sql_engine: 1
        }
    );

    // … and neither warming again nor querying on any engine rebuilds.
    session.warm();
    let queries = [
        "/descendant::increase/ancestor::bidder",
        "//open_auction[bidder]",
    ];
    for engine in all_engines() {
        for query in queries {
            session.run(query, engine).unwrap();
        }
    }
    assert_eq!(
        session.aux_builds(),
        AuxBuilds {
            tag_index: 1,
            sql_engine: 1
        }
    );
}

#[test]
fn warm_races_with_queries_safely() {
    // Queries racing the warm-up must see each structure built exactly
    // once (OnceLock serialises initialisers).
    let session = Session::new(generate(XmarkConfig::new(0.02)));
    let query = session.prepare("//increase/ancestor::bidder").unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| session.warm());
        scope.spawn(|| query.run(Engine::staircase().fragmented(true).build().unwrap()));
        scope.spawn(|| query.run(Engine::sql().build().unwrap()));
    });
    assert_eq!(
        session.aux_builds(),
        AuxBuilds {
            tag_index: 1,
            sql_engine: 1
        }
    );
}

#[test]
fn prepared_queries_outlive_engine_choice() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let query = session
        .prepare("/descendant::increase/ancestor::bidder")
        .unwrap();
    let mut previous: Option<QueryOutput> = None;
    for engine in all_engines() {
        let out = query.run(engine);
        assert!(!out.is_empty(), "{engine:?}");
        if let Some(prev) = &previous {
            assert_eq!(prev.nodes(), out.nodes(), "{engine:?}");
        }
        previous = Some(out);
    }
}

#[test]
fn invalid_engine_configs_never_reach_evaluation() {
    assert!(matches!(
        Engine::staircase().parallel(0).build(),
        Err(Error::InvalidEngine(_))
    ));
    assert!(matches!(
        Engine::staircase().pushdown(true).parallel(2).build(),
        Err(Error::InvalidEngine(_))
    ));
}

#[test]
fn query_output_supports_borrowed_iteration() {
    let session = Session::parse_xml("<a><b/><b/><b/></a>").unwrap();
    let out = session.run("//b", Engine::default()).unwrap();
    // By-reference iteration, twice, with no clone in between.
    let first: Vec<Pre> = (&out).into_iter().collect();
    let second: Vec<Pre> = out.iter().collect();
    assert_eq!(first, second);
    assert_eq!(first.len(), 3);
    assert_eq!(out.nodes().as_slice(), &first[..]);
}

#[test]
fn explain_reports_operators_and_costs() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));

    // The cost-based planner: a selective name test on a vertical axis
    // plans as a prebuilt fragment join; planning alone builds nothing.
    let plan = session
        .explain(
            "/descendant::increase/ancestor::open_auction",
            Engine::auto(),
        )
        .unwrap();
    assert_eq!(session.aux_builds(), AuxBuilds::default());
    assert_eq!(plan.branches().len(), 1);
    let steps = plan.branches()[0].steps();
    assert_eq!(steps.len(), 2);
    for step in steps {
        assert!(
            matches!(step.operator(), StepOp::Fragment { prescan: false }),
            "{:?}",
            step.operator()
        );
        assert!(step.estimate().cost > 0.0);
        assert!(step.estimate().rows >= 0.0);
    }

    // An unselective step keeps the estimation-skipping staircase join.
    let plan = session
        .explain("/descendant::node()", Engine::auto())
        .unwrap();
    assert!(matches!(
        plan.branches()[0].steps()[0].operator(),
        StepOp::Staircase {
            variant: Variant::EstimationSkipping
        }
    ));

    // Fixed engines explain their fixed policies.
    let plan = session
        .explain("/descendant::increase", Engine::naive())
        .unwrap();
    assert!(matches!(
        plan.branches()[0].steps()[0].operator(),
        StepOp::Naive
    ));

    // One rendered line per step, each carrying operator and estimate.
    let plan = session
        .explain("//profile/education | //bidder", Engine::auto())
        .unwrap();
    let text = plan.to_string();
    assert!(text.contains("branch 2:"));
    let step_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("step ")).collect();
    assert_eq!(step_lines.len(), plan.step_count());
    for line in step_lines {
        assert!(line.contains("op "), "{line}");
        assert!(line.contains("est cost"), "{line}");
    }

    // Parse errors propagate as usual.
    assert!(session.explain("///", Engine::auto()).is_err());
}

#[test]
fn auto_estimates_track_observed_cost_direction() {
    // The model only has to *rank* candidates; sanity-check that the
    // auto plan's total estimate is in the same order of magnitude
    // bucket as what execution actually touched for a selective query
    // (both far below the document size), while a tree-unaware plan's
    // estimate is far above.
    let session = Session::new(generate(XmarkConfig::new(0.1)));
    session.warm();
    let expr = "/descendant::privacy";
    let auto_plan = session.explain(expr, Engine::auto()).unwrap();
    let naive_plan = session.explain(expr, Engine::naive()).unwrap();
    let n = session.doc().len() as f64;
    assert!(auto_plan.estimated_cost() < n / 4.0);
    assert!(naive_plan.estimated_cost() > n / 4.0);
    let out = session.run(expr, Engine::auto()).unwrap();
    assert!((out.stats().total_touched() as f64) < n / 4.0);
}

#[test]
fn auto_plans_absent_names_without_building_the_fragment_index() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    // A name absent from the document is provably empty; auto must not
    // force the prebuilt fragment index into existence to discover that.
    let plan = session
        .explain("/descendant::nosuchtag/ancestor::person", Engine::auto())
        .unwrap();
    assert!(matches!(
        plan.branches()[0].steps()[0].operator(),
        StepOp::Fragment { prescan: true }
    ));
    let out = session
        .run("/descendant::nosuchtag/ancestor::person", Engine::auto())
        .unwrap();
    assert!(out.is_empty());
    assert_eq!(
        session.aux_builds(),
        AuxBuilds::default(),
        "absent-name queries must build nothing"
    );
    // And the absent-name step costs nothing: no scan ever ran.
    assert_eq!(out.stats().steps[0].nodes_touched, 0);
}

#[test]
fn adaptive_replans_when_estimates_mislead() {
    // The misleading-statistics document: every global statistic is
    // honest, yet the `b` frontier after `//a/descendant::b` is orders
    // of magnitude above the Equation-1 estimate. The static planner
    // mis-prices the final step; the adaptive executor must observe the
    // real frontier, switch the operator mid-plan, and mark the switch.
    let session = Session::new(generate_misleading(MisleadConfig::new(4.0)));
    let expr = "/descendant::a/descendant::b/descendant::node()";
    let query = session.prepare(expr).unwrap();

    let adaptive = query.run(Engine::adaptive());
    let auto = query.run(Engine::auto());
    assert_eq!(
        adaptive.nodes(),
        auto.nodes(),
        "replanning changed the answer"
    );

    // The switch provably fired: the trace carries the marker …
    let replanned: Vec<&str> = adaptive
        .stats()
        .steps
        .iter()
        .filter(|s| s.replanned)
        .map(|s| s.op.as_str())
        .collect();
    assert!(
        !replanned.is_empty(),
        "the misleading workload must trigger a mid-plan switch"
    );
    assert!(
        replanned.iter().all(|op| op.contains("[replan]")),
        "replanned steps must be marked: {replanned:?}"
    );
    // … the switched step runs cheaper than the static pick of the same
    // step …
    let step = adaptive
        .stats()
        .steps
        .iter()
        .position(|s| s.replanned)
        .unwrap();
    assert!(
        adaptive.stats().steps[step].nodes_touched < auto.stats().steps[step].nodes_touched,
        "the switch must pay off: adaptive touched {} vs auto {}",
        adaptive.stats().steps[step].nodes_touched,
        auto.stats().steps[step].nodes_touched
    );
    // … and the static engines never carry the marker.
    assert!(auto.stats().steps.iter().all(|s| !s.replanned));

    // Lane-local switching: the shared cached plan is untouched, so a
    // later static run re-prices nothing.
    let plan = session.explain(expr, Engine::adaptive()).unwrap();
    assert!(!plan.to_string().contains("[replan]"));

    // The switch also fires identically through run_many at every pool
    // width.
    for width in [1usize, 2, 4] {
        let session =
            Session::new(generate_misleading(MisleadConfig::new(4.0))).with_threads(width);
        let query = session.prepare(expr).unwrap();
        let outs = session.run_many(&[&query, &query], Engine::adaptive());
        for out in &outs {
            assert_eq!(out.nodes(), adaptive.nodes(), "width {width}");
            assert!(
                out.stats().steps.iter().any(|s| s.replanned),
                "width {width}: batch lanes must replan too"
            );
        }
    }
}
