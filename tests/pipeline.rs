//! End-to-end pipeline: XML text → pull parser → accelerator encoding →
//! XPath evaluation → document reconstruction.

use staircase_suite::prelude::*;

#[test]
fn xml_text_to_query_results() {
    let xml = generate_xml(XmarkConfig::new(0.05).with_seed(11));
    let doc = Doc::from_xml(&xml).expect("generated XML parses");
    let out = evaluate(&doc, "/descendant::increase/ancestor::bidder", Engine::default())
        .unwrap();
    assert!(!out.result.is_empty());
    for v in out.result.iter() {
        assert_eq!(doc.tag_name(v), Some("bidder"));
    }
}

#[test]
fn direct_generation_equals_xml_roundtrip() {
    let cfg = XmarkConfig::new(0.05).with_seed(23);
    let direct = generate(cfg);
    let via_xml = Doc::from_xml(&generate_xml(cfg)).unwrap();
    assert_eq!(direct.len(), via_xml.len());
    assert_eq!(direct.post_column(), via_xml.post_column());
    assert_eq!(direct.kind_column(), via_xml.kind_column());
    // Queries agree too.
    for query in ["/descendant::education", "//bidder/increase", "//person/@id"] {
        let a = evaluate(&direct, query, Engine::default()).unwrap().result;
        let b = evaluate(&via_xml, query, Engine::default()).unwrap().result;
        assert_eq!(a, b, "{query}");
    }
}

#[test]
fn reconstruction_preserves_query_results() {
    // Encode → reconstruct DOM → serialize → re-encode: queries stable.
    let xml = generate_xml(XmarkConfig::new(0.02).with_seed(5));
    let doc = Doc::from_xml(&xml).unwrap();
    let rebuilt = Doc::from_xml(&doc.to_document().to_xml()).unwrap();
    assert_eq!(doc.len(), rebuilt.len());
    let q = "/descendant::profile/descendant::education";
    assert_eq!(
        evaluate(&doc, q, Engine::default()).unwrap().result,
        evaluate(&rebuilt, q, Engine::default()).unwrap().result
    );
}

#[test]
fn pull_parser_streams_without_dom() {
    // The loader path used for huge documents: event count matches the
    // encoded node count (attributes expand to extra nodes).
    let xml = generate_xml(XmarkConfig::new(0.02).with_seed(9));
    let doc = Doc::from_xml(&xml).unwrap();
    let mut elements = 0usize;
    let mut attrs = 0usize;
    let mut texts = 0usize;
    let mut parser = PullParser::new(&xml);
    loop {
        match parser.next_event().unwrap() {
            staircase_xml::Event::StartTag { attributes, .. } => {
                elements += 1;
                attrs += attributes.len();
            }
            staircase_xml::Event::Text(_) => texts += 1,
            staircase_xml::Event::Eof => break,
            _ => {}
        }
    }
    let (e, a, t, _, _) = doc.kind_counts();
    assert_eq!(elements, e);
    assert_eq!(attrs, a);
    // Adjacent text events merge into one node, so texts ≥ text nodes.
    assert!(texts >= t);
}

#[test]
fn multi_step_paths_chain_contexts() {
    let doc = generate(XmarkConfig::new(0.05));
    // Four-step path mixing axes; compare staircase vs naive engine.
    let q = "/descendant::open_auction/child::bidder/descendant::increase/ancestor::open_auction";
    let a = evaluate(&doc, q, Engine::default()).unwrap().result;
    let b = evaluate(&doc, q, Engine::Naive).unwrap().result;
    assert_eq!(a, b);
    assert!(!a.is_empty());
    for v in a.iter() {
        assert_eq!(doc.tag_name(v), Some("open_auction"));
    }
}
