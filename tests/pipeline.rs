//! End-to-end pipeline: XML text → pull parser → accelerator encoding →
//! XPath evaluation → document reconstruction.

use staircase_suite::prelude::*;

#[test]
fn xml_text_to_query_results() {
    let xml = generate_xml(XmarkConfig::new(0.05).with_seed(11));
    let session = Session::parse_xml(&xml).expect("generated XML parses");
    let out = session
        .run("/descendant::increase/ancestor::bidder", Engine::default())
        .unwrap();
    assert!(!out.is_empty());
    for v in &out {
        assert_eq!(session.doc().tag_name(v), Some("bidder"));
    }
}

#[test]
fn direct_generation_equals_xml_roundtrip() {
    let cfg = XmarkConfig::new(0.05).with_seed(23);
    let direct = Session::new(generate(cfg));
    let via_xml = Session::parse_xml(&generate_xml(cfg)).unwrap();
    assert_eq!(direct.doc().len(), via_xml.doc().len());
    assert_eq!(direct.doc().post_column(), via_xml.doc().post_column());
    assert_eq!(direct.doc().kind_column(), via_xml.doc().kind_column());
    // Queries agree too.
    for query in [
        "/descendant::education",
        "//bidder/increase",
        "//person/@id",
    ] {
        let a = direct.run(query, Engine::default()).unwrap();
        let b = via_xml.run(query, Engine::default()).unwrap();
        assert_eq!(a.nodes(), b.nodes(), "{query}");
    }
}

#[test]
fn reconstruction_preserves_query_results() {
    // Encode → reconstruct DOM → serialize → re-encode: queries stable.
    let xml = generate_xml(XmarkConfig::new(0.02).with_seed(5));
    let session = Session::parse_xml(&xml).unwrap();
    let rebuilt = Session::parse_xml(&session.doc().to_document().to_xml()).unwrap();
    assert_eq!(session.doc().len(), rebuilt.doc().len());
    let q = "/descendant::profile/descendant::education";
    assert_eq!(
        session.run(q, Engine::default()).unwrap().nodes(),
        rebuilt.run(q, Engine::default()).unwrap().nodes()
    );
}

#[test]
fn pull_parser_streams_without_dom() {
    // The loader path used for huge documents: event count matches the
    // encoded node count (attributes expand to extra nodes).
    let xml = generate_xml(XmarkConfig::new(0.02).with_seed(9));
    let doc = Doc::from_xml(&xml).unwrap();
    let mut elements = 0usize;
    let mut attrs = 0usize;
    let mut texts = 0usize;
    let mut parser = PullParser::new(&xml);
    loop {
        match parser.next_event().unwrap() {
            staircase_xml::Event::StartTag { attributes, .. } => {
                elements += 1;
                attrs += attributes.len();
            }
            staircase_xml::Event::Text(_) => texts += 1,
            staircase_xml::Event::Eof => break,
            _ => {}
        }
    }
    let (e, a, t, _, _) = doc.kind_counts();
    assert_eq!(elements, e);
    assert_eq!(attrs, a);
    // Adjacent text events merge into one node, so texts ≥ text nodes.
    assert!(texts >= t);
}

#[test]
fn multi_step_paths_chain_contexts() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    // Four-step path mixing axes; compare staircase vs naive engine.
    let q = session
        .prepare(
            "/descendant::open_auction/child::bidder/descendant::increase\
             /ancestor::open_auction",
        )
        .unwrap();
    let a = q.run(Engine::default());
    let b = q.run(Engine::naive());
    assert_eq!(a.nodes(), b.nodes());
    assert!(!a.is_empty());
    for v in &a {
        assert_eq!(session.doc().tag_name(v), Some("open_auction"));
    }
}
