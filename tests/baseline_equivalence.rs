//! Cross-engine equivalence: the staircase join (all variants, serial and
//! parallel), the naive strategy, the SQL-plan emulation, and MPMGJN must
//! compute identical axis-step results.

use staircase_suite::prelude::*;

fn workload() -> Doc {
    generate(XmarkConfig::new(0.1).with_seed(42))
}

fn engine(builder: StaircaseBuilder) -> Engine {
    builder.build().expect("valid engine config")
}

#[test]
fn all_engines_agree_on_paper_queries() {
    let session = Session::new(workload());
    let engines = [
        engine(Engine::staircase().variant(Variant::Basic)),
        engine(Engine::staircase().variant(Variant::Skipping)),
        engine(Engine::staircase().variant(Variant::EstimationSkipping)),
        engine(Engine::staircase().pushdown(true)),
        engine(Engine::staircase().fragmented(true)),
        engine(Engine::staircase().parallel(4)),
        Engine::naive(),
        Engine::sql().build().expect("valid engine config"),
        Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .expect("valid config"),
    ];
    for query in [
        "/descendant::profile/descendant::education",
        "/descendant::increase/ancestor::bidder",
        "//open_auction/descendant::personref",
        "/descendant::person/following::bidder",
        "/descendant::education/preceding::interest",
    ] {
        let prepared = session.prepare(query).unwrap();
        let reference = prepared.run(engines[0]);
        for e in &engines[1..] {
            let got = prepared.run(*e);
            assert_eq!(got.nodes(), reference.nodes(), "{query} via {e:?}");
        }
        assert!(!reference.is_empty(), "{query} should match something");
    }
    // Nine engines, thirty-odd runs: the session built each auxiliary
    // structure exactly once.
    assert_eq!(
        session.aux_builds(),
        AuxBuilds {
            tag_index: 1,
            sql_engine: 1
        }
    );
}

#[test]
fn mpmgjn_agrees_with_staircase_descendant() {
    let doc = workload();
    let tags = TagIndex::build(&doc);
    let profiles: Vec<Pre> = tags.fragment_by_name(&doc, "profile").to_vec();
    let all: Vec<Pre> = doc
        .pres()
        .filter(|&v| doc.kind(v) != NodeKind::Attribute)
        .collect();
    let (mp, _) = mpmgjn_join(&doc, &profiles, &all);
    let ctx: Context = profiles.iter().copied().collect();
    let (sc, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
    assert_eq!(mp, sc);
}

#[test]
fn mpmgjn_tests_more_nodes_than_staircase() {
    // §5's claim: pruning + skipping means the staircase join touches and
    // tests fewer nodes than MPMGJN on the same join.
    let doc = workload();
    let tags = TagIndex::build(&doc);
    // A context with nesting: open_auctions contain bidders.
    let mut alist: Vec<Pre> = tags.fragment_by_name(&doc, "open_auction").to_vec();
    alist.extend_from_slice(tags.fragment_by_name(&doc, "bidder"));
    alist.sort_unstable();
    let all: Vec<Pre> = doc
        .pres()
        .filter(|&v| doc.kind(v) != NodeKind::Attribute)
        .collect();
    let (mp_result, mp) = mpmgjn_join(&doc, &alist, &all);
    let ctx: Context = alist.iter().copied().collect();
    let (sc_result, sc) = descendant(&doc, &ctx, Variant::Skipping);
    assert_eq!(mp_result, sc_result);
    assert!(
        mp.nodes_tested > sc.nodes_touched(),
        "MPMGJN tested {} vs staircase touched {}",
        mp.nodes_tested,
        sc.nodes_touched()
    );
}

#[test]
fn sql_plan_generates_duplicates_staircase_does_not() {
    let doc = workload();
    let engine = SqlEngine::build(&doc);
    let tags = TagIndex::build(&doc);
    let increases: Context = tags
        .fragment_by_name(&doc, "increase")
        .iter()
        .copied()
        .collect();
    let (_, sql_stats) = engine.axis_step(&increases, Axis::Ancestor, SqlPlanOptions::default());
    assert!(
        sql_stats.duplicates() > 0,
        "ancestor step must duplicate shared paths"
    );
    let (_, sc_stats) = ancestor(&doc, &increases, Variant::Skipping);
    assert_eq!(sc_stats.result_size, sql_stats.result_size);
}

#[test]
fn eq1_window_preserves_results_while_cutting_scans() {
    let doc = workload();
    let engine = SqlEngine::build(&doc);
    let tags = TagIndex::build(&doc);
    let profiles: Context = tags
        .fragment_by_name(&doc, "profile")
        .iter()
        .copied()
        .collect();
    let (r1, s1) = engine.axis_step(&profiles, Axis::Descendant, SqlPlanOptions::default());
    let (r2, s2) = engine.axis_step(
        &profiles,
        Axis::Descendant,
        SqlPlanOptions {
            eq1_window: true,
            early_nametest: None,
        },
    );
    assert_eq!(r1, r2);
    // The paper saw up to three orders of magnitude here; at minimum the
    // window must cut the scan volume drastically.
    assert!(
        s2.index_entries_scanned * 10 <= s1.index_entries_scanned,
        "window scan {} vs unwindowed {}",
        s2.index_entries_scanned,
        s1.index_entries_scanned
    );
}

#[test]
fn random_documents_cross_check() {
    // Beyond XMark shapes: adversarial random trees.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    for round in 0..5 {
        let mut b = EncodingBuilder::new();
        b.open_element("r");
        let mut depth = 1;
        for _ in 0..500 {
            match rng.gen_range(0..4) {
                0 | 1 => {
                    b.open_element(["x", "y", "z"][rng.gen_range(0..3)]);
                    depth += 1;
                }
                2 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                _ => {
                    b.comment("pad");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        let session = Session::new(b.finish());
        let sql = Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .unwrap();
        for query in ["//x/ancestor::y", "//y/descendant::z", "//z/preceding::x"] {
            let prepared = session.prepare(query).unwrap();
            let a = prepared.run(Engine::default());
            let b2 = prepared.run(Engine::naive());
            let c = prepared.run(sql);
            assert_eq!(a.nodes(), b2.nodes(), "round {round}: {query}");
            assert_eq!(a.nodes(), c.nodes(), "round {round}: {query}");
        }
    }
}
