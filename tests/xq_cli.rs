//! End-to-end test of the `xq` command-line tool: encode, query, engine
//! selection, counting, and error handling, all through the real binary.

use std::io::Write;
use std::process::{Command, Stdio};

use staircase_suite::prelude::{generate_misleading_xml, MisleadConfig};

fn xq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xq"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xq-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SAMPLE: &str = "<site><open_auctions><open_auction id='a0'><bidder><increase>1</increase>\
    </bidder><bidder><increase>2</increase></bidder></open_auction>\
    <open_auction id='a1'><bidder><date/></bidder></open_auction>\
    </open_auctions></site>";

#[test]
fn query_from_stdin() {
    let mut child = xq()
        .args(["//bidder", "--count"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SAMPLE.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn query_from_file_with_engines() {
    let dir = tempdir();
    let file = dir.join("sample.xml");
    std::fs::write(&file, SAMPLE).unwrap();
    for engine in [
        "staircase",
        "pushdown",
        "fragmented",
        "parallel",
        "naive",
        "sql",
        "auto",
        "adaptive",
        "twig",
    ] {
        let out = xq()
            .args([
                "/descendant::increase/ancestor::bidder",
                file.to_str().unwrap(),
                "--count",
                "--engine",
                engine,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "2",
            "engine {engine}"
        );
    }
}

#[test]
fn encode_then_query_encoded() {
    let dir = tempdir();
    let xml = dir.join("doc.xml");
    let scj = dir.join("doc.scj");
    std::fs::write(&xml, SAMPLE).unwrap();

    let out = xq()
        .args(["--encode", xml.to_str().unwrap(), scj.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(scj.exists());

    let out = xq()
        .args([
            "//open_auction[bidder/increase]/@id",
            "--encoded",
            scj.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("@id=\"a0\""), "got: {stdout}");
    assert!(!stdout.contains("a1"));
}

#[test]
fn stats_go_to_stderr() {
    let mut child = xq()
        .args(["//bidder", "--stats", "--count"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SAMPLE.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("step"), "stats missing: {stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

/// Pins the `--stats` line format: every engine reports its estimated
/// cost next to the observed cost, per step, in this column order.
#[test]
fn stats_print_estimated_next_to_observed_cost_for_every_engine() {
    for engine in [
        "staircase",
        "fragmented",
        "naive",
        "sql",
        "auto",
        "adaptive",
    ] {
        let mut child = xq()
            .args(["//bidder", "--stats", "--count", "--engine", engine])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(SAMPLE.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "engine {engine}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let step_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with("step ")).collect();
        assert!(
            !step_lines.is_empty(),
            "engine {engine}: no stats: {stderr}"
        );
        for line in step_lines {
            // The pinned column order, estimated beside observed.
            let cols = [
                "result ",
                "touched ",
                "seeks ",
                "duplicates ",
                "est cost ",
                "obs cost ",
            ];
            let mut at = 0usize;
            for col in cols {
                match line[at..].find(col) {
                    Some(off) => at += off + col.len(),
                    None => panic!("engine {engine}: column {col:?} missing or misordered: {line}"),
                }
            }
        }
    }
}

/// `--explain --stats` is the post-run report: per executed step, the
/// operator that actually ran with planned vs observed cost, and
/// `[replan]` marking the adaptive engine's mid-query switches. On the
/// misleading-statistics document the marker must appear for
/// `adaptive` and never for static `auto`.
#[test]
fn explain_stats_reports_observed_cost_and_replan_markers() {
    let dir = tempdir();
    let file = dir.join("mislead.xml");
    std::fs::write(&file, generate_misleading_xml(MisleadConfig::new(4.0))).unwrap();
    let expr = "/descendant::a/descendant::b/descendant::node()";

    let out = xq()
        .args([
            expr,
            file.to_str().unwrap(),
            "--engine",
            "adaptive",
            "--explain",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let step_lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with("step ")).collect();
    assert_eq!(step_lines.len(), 3, "one report line per step: {stdout}");
    for line in &step_lines {
        assert!(line.contains("op "), "{line}");
        assert!(line.contains("est cost"), "{line}");
        assert!(line.contains("obs cost"), "{line}");
    }
    assert!(
        step_lines.iter().any(|l| l.contains("[replan]")),
        "adaptive must mark its switch on the misleading document: {stdout}"
    );

    let out = xq()
        .args([
            expr,
            file.to_str().unwrap(),
            "--engine",
            "auto",
            "--explain",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("[replan]"),
        "static engines never replan"
    );
}

#[test]
fn parse_errors_exit_with_parse_code() {
    let mut child = xq()
        .args(["///bad["])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SAMPLE.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(3), "XPath parse errors exit 3");
}

#[test]
fn malformed_xml_exits_with_parse_code() {
    let mut child = xq()
        .args(["//a"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<a><b></a>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(3), "XML parse errors exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = xq()
        .args(["//a", "/definitely/not/here.xml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "I/O errors exit 4");
}

#[test]
fn usage_errors_exit_with_usage_code() {
    let out = xq()
        .args(["//a", "--engine", "warp-drive"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown engines exit 2");
    let out = xq().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing query exits 2");
}

#[test]
fn threads_and_variant_flags() {
    let dir = tempdir();
    let file = dir.join("flags.xml");
    std::fs::write(&file, SAMPLE).unwrap();
    for variant in ["basic", "skipping", "estimation"] {
        let out = xq()
            .args([
                "/descendant::increase/ancestor::bidder",
                file.to_str().unwrap(),
                "--count",
                "--variant",
                variant,
                "--threads",
                "2",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "variant {variant}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "2",
            "variant {variant}"
        );
    }
}

#[test]
fn variant_on_non_staircase_engine_exits_with_usage_code() {
    let dir = tempdir();
    let file = dir.join("variant-sql.xml");
    std::fs::write(&file, SAMPLE).unwrap();
    let out = xq()
        .args([
            "//bidder",
            file.to_str().unwrap(),
            "--engine",
            "sql",
            "--variant",
            "basic",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--variant on the sql engine is rejected, not silently dropped"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--variant does not apply"));
}

#[test]
fn threads_flag_applies_to_every_engine() {
    // --threads used to imply (and be restricted to) the parallel
    // engine; it now sizes the session's worker pool for any engine,
    // with identical results.
    let dir = tempdir();
    let file = dir.join("threads-any.xml");
    std::fs::write(&file, SAMPLE).unwrap();
    for engine in ["pushdown", "fragmented", "naive", "sql", "auto"] {
        let out = xq()
            .args([
                "/descendant::increase/ancestor::bidder",
                file.to_str().unwrap(),
                "--count",
                "--engine",
                engine,
                "--threads",
                "4",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "engine {engine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "2",
            "engine {engine}"
        );
    }
    // Zero workers is rejected uniformly, whatever the engine.
    for engine_args in [
        &["--threads", "0"][..],
        &["--engine", "auto", "--threads", "0"][..],
    ] {
        let out = xq()
            .args(["//bidder", file.to_str().unwrap()])
            .args(engine_args)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "zero workers exit 2 ({engine_args:?})"
        );
    }
}

#[test]
fn query_file_batches_queries() {
    let dir = tempdir();
    let doc = dir.join("batch.xml");
    let qf = dir.join("batch-queries.txt");
    std::fs::write(&doc, SAMPLE).unwrap();
    std::fs::write(
        &qf,
        "# the paper's Q2, then two simpler probes\n\
         /descendant::increase/ancestor::bidder\n\
         \n\
         //bidder\n\
         //date\n",
    )
    .unwrap();

    let out = xq()
        .args([
            "--query-file",
            qf.to_str().unwrap(),
            doc.to_str().unwrap(),
            "--count",
            "--warm",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "comment and blank lines skipped: {stdout}");
    assert!(lines[0].trim().starts_with("2"), "{stdout}");
    assert!(lines[0].contains("/descendant::increase/ancestor::bidder"));
    assert!(lines[1].trim().starts_with("3"), "{stdout}");
    assert!(lines[2].trim().starts_with("1"), "{stdout}");

    // Without --count: one header per query, then its nodes.
    let out = xq()
        .args(["--query-file", qf.to_str().unwrap(), doc.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let headers = stdout.lines().filter(|l| l.starts_with("# ")).count();
    assert_eq!(headers, 3, "{stdout}");
    assert!(stdout.contains("<bidder>"));
}

#[test]
fn query_file_parse_errors_continue_with_partial_code() {
    let dir = tempdir();
    let doc = dir.join("badbatch.xml");
    let qf = dir.join("bad-queries.txt");
    std::fs::write(&doc, SAMPLE).unwrap();
    // A bad line in the middle: the lines around it must still run.
    std::fs::write(&qf, "//bidder\n///bad[\n//date\n").unwrap();
    let out = xq()
        .args([
            "--query-file",
            qf.to_str().unwrap(),
            doc.to_str().unwrap(),
            "--count",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "partial batches exit 5, not 3 (abort) or 0 (clean)"
    );
    // The error names the file and the failing line.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad-queries.txt:2"), "stderr: {stderr}");
    assert!(stderr.contains("///bad["), "stderr: {stderr}");
    // The remaining queries ran — including the one *after* the bad line.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "two good queries answered: {stdout}");
    assert!(lines[0].trim().starts_with('3'), "{stdout}");
    assert!(lines[0].contains("//bidder"));
    assert!(lines[1].trim().starts_with('1'), "{stdout}");
    assert!(lines[1].contains("//date"));

    let out = xq()
        .args([
            "--query-file",
            "/definitely/not/here.txt",
            doc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "missing query file exits 4");
}

#[test]
fn query_file_invalid_utf8_line_is_reported_and_skipped() {
    let dir = tempdir();
    let doc = dir.join("utf8batch.xml");
    let qf = dir.join("utf8-queries.txt");
    std::fs::write(&doc, SAMPLE).unwrap();
    // Line 2 is not UTF-8. A whole-file read would abort everything;
    // the buffered per-line reader reports it and runs the rest.
    std::fs::write(&qf, b"//bidder\n\xFF\xFE\n//date\n").unwrap();
    let out = xq()
        .args([
            "--query-file",
            qf.to_str().unwrap(),
            doc.to_str().unwrap(),
            "--count",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "a bad-encoding line is a partial batch, not an I/O abort"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("utf8-queries.txt:2"), "stderr: {stderr}");
    assert!(stderr.contains("UTF-8"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "both good lines ran: {stdout}");
    assert!(lines[0].trim().starts_with('3'), "{stdout}");
    assert!(lines[1].trim().starts_with('1'), "{stdout}");
}

#[test]
fn query_file_all_lines_bad_still_reports_each() {
    let dir = tempdir();
    let doc = dir.join("allbad.xml");
    let qf = dir.join("all-bad-queries.txt");
    std::fs::write(&doc, SAMPLE).unwrap();
    std::fs::write(&qf, "///x[\n# comment\n//y[unclosed\n").unwrap();
    let out = xq()
        .args(["--query-file", qf.to_str().unwrap(), doc.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Line numbers count raw file lines (the comment shifts them).
    assert!(stderr.contains("all-bad-queries.txt:1"), "{stderr}");
    assert!(stderr.contains("all-bad-queries.txt:3"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).is_empty());
}

#[test]
fn inline_query_plus_query_file_is_a_usage_error() {
    let dir = tempdir();
    let doc = dir.join("both.xml");
    let qf = dir.join("both-queries.txt");
    std::fs::write(&doc, SAMPLE).unwrap();
    std::fs::write(&qf, "//bidder\n").unwrap();
    // Ambiguous: neither source of queries should silently win.
    let out = xq()
        .args([
            "//increase",
            "--query-file",
            qf.to_str().unwrap(),
            doc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "ambiguous query sources exit 2");
}

#[test]
fn warm_flag_with_single_query() {
    let dir = tempdir();
    let doc = dir.join("warm.xml");
    std::fs::write(&doc, SAMPLE).unwrap();
    let out = xq()
        .args(["//bidder", doc.to_str().unwrap(), "--warm", "--count"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

/// A live in-process server for exercising `xq --connect`.
fn serve_sample() -> staircase_server::ServerHandle {
    let session = std::sync::Arc::new(staircase_xpath::Session::parse_xml(SAMPLE).unwrap());
    staircase_server::Server::start(session, staircase_server::ServerConfig::default()).unwrap()
}

#[test]
fn connect_mode_round_trips_against_a_live_server() {
    let handle = serve_sample();
    let addr = handle.local_addr().to_string();

    let out = xq()
        .args(["//bidder", "--connect", &addr, "--count"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");

    // Rendered mode uses the same shared formatting as local runs.
    let out = xq()
        .args([
            "/descendant::increase/ancestor::bidder",
            "--connect",
            &addr,
            "--engine",
            "auto",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
    assert!(stdout.contains("pre "), "{stdout}");
    assert!(stdout.contains("<bidder>"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("server: touched"),
        "--stats reports the server-side counters"
    );
    handle.shutdown_and_join();
}

#[test]
fn connect_mode_maps_server_errors_to_local_exit_codes() {
    let handle = serve_sample();
    let addr = handle.local_addr().to_string();

    let out = xq().args(["///bad[", "--connect", &addr]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "server parse errors exit 3");

    let out = xq()
        .args(["//bidder", "--connect", &addr, "--engine", "warp-drive"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown engines exit 2");

    // Local-only flags are rejected up front, not silently ignored.
    let out = xq()
        .args(["//bidder", "--connect", &addr, "--threads", "4"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "--threads with --connect exits 2"
    );
    handle.shutdown_and_join();

    // Nobody listening: transport errors are I/O errors.
    let out = xq()
        .args(["//bidder", "--connect", &addr])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "refused connections exit 4");
}

#[test]
fn connect_mode_streams_query_files_with_partial_code() {
    let handle = serve_sample();
    let addr = handle.local_addr().to_string();
    let dir = tempdir();
    let qf = dir.join("remote-queries.txt");
    std::fs::write(&qf, "//bidder\n///bad[\n//date\n").unwrap();

    let out = xq()
        .args([
            "--query-file",
            qf.to_str().unwrap(),
            "--connect",
            &addr,
            "--count",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(5),
        "remote batches share the partial-batch contract: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("remote-queries.txt:2"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].trim().starts_with('3'), "{stdout}");
    assert!(lines[0].contains("//bidder"), "{stdout}");
    assert!(lines[1].trim().starts_with('1'), "{stdout}");
    handle.shutdown_and_join();
}

#[test]
fn explain_prints_one_line_per_step() {
    let mut child = xq()
        .args([
            "/descendant::increase/ancestor::bidder",
            "--engine",
            "auto",
            "--explain",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SAMPLE.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let lines: Vec<&str> = text.lines().collect();
    // One line per step, plus the closing plan-total cost line.
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines[..2] {
        assert!(line.starts_with("step "), "{line}");
        assert!(line.contains("op "), "{line}");
        assert!(line.contains("est cost"), "{line}");
    }
    assert!(lines[2].starts_with("total"), "{text}");
    assert!(lines[2].contains("est cost"), "{text}");
    // Selective name tests on this document plan as fragment joins.
    assert!(lines[0].contains("fragment"), "{text}");
}

#[test]
fn explain_renders_fused_twig_steps() {
    let mut child = xq()
        .args([
            "/descendant::open_auction[descendant::bidder]/descendant::increase",
            "--engine",
            "twig",
            "--explain",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SAMPLE.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let lines: Vec<&str> = text.lines().collect();
    // Both vertical steps fuse into one twig step, plus the total line.
    assert_eq!(lines.len(), 2, "{text}");
    assert!(
        lines[0].contains("twig[open_auction>bidder, open_auction>increase]"),
        "{text}"
    );
    assert!(lines[1].starts_with("total"), "{text}");
}

#[test]
fn explain_covers_fixed_engines_and_query_files() {
    let dir = tempdir();
    let file = dir.join("explain.xml");
    let qf = dir.join("explain-queries.txt");
    std::fs::write(&file, SAMPLE).unwrap();
    std::fs::write(
        &qf,
        "//bidder\n# comment\n//increase/ancestor::open_auction\n",
    )
    .unwrap();

    let out = xq()
        .args([
            "--query-file",
            qf.to_str().unwrap(),
            file.to_str().unwrap(),
            "--engine",
            "naive",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("# //bidder"), "{text}");
    assert!(text.contains("naive"), "{text}");
    // Five steps across the two queries (`//` desugars to
    // `descendant-or-self::node()/child::…`), plus one header line each.
    assert_eq!(text.lines().filter(|l| l.starts_with("step ")).count(), 5);
}
