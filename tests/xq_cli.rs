//! End-to-end test of the `xq` command-line tool: encode, query, engine
//! selection, counting, and error handling, all through the real binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn xq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xq"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xq-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SAMPLE: &str = "<site><open_auctions><open_auction id='a0'><bidder><increase>1</increase>\
    </bidder><bidder><increase>2</increase></bidder></open_auction>\
    <open_auction id='a1'><bidder><date/></bidder></open_auction>\
    </open_auctions></site>";

#[test]
fn query_from_stdin() {
    let mut child = xq()
        .args(["//bidder", "--count"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(SAMPLE.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn query_from_file_with_engines() {
    let dir = tempdir();
    let file = dir.join("sample.xml");
    std::fs::write(&file, SAMPLE).unwrap();
    for engine in ["staircase", "pushdown", "fragmented", "parallel", "naive", "sql"] {
        let out = xq()
            .args([
                "/descendant::increase/ancestor::bidder",
                file.to_str().unwrap(),
                "--count",
                "--engine",
                engine,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout).trim(),
            "2",
            "engine {engine}"
        );
    }
}

#[test]
fn encode_then_query_encoded() {
    let dir = tempdir();
    let xml = dir.join("doc.xml");
    let scj = dir.join("doc.scj");
    std::fs::write(&xml, SAMPLE).unwrap();

    let out = xq()
        .args(["--encode", xml.to_str().unwrap(), scj.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(scj.exists());

    let out = xq()
        .args(["//open_auction[bidder/increase]/@id", "--encoded", scj.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("@id=\"a0\""), "got: {stdout}");
    assert!(!stdout.contains("a1"));
}

#[test]
fn stats_go_to_stderr() {
    let mut child = xq()
        .args(["//bidder", "--stats", "--count"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(SAMPLE.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("step"), "stats missing: {stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn parse_errors_exit_nonzero() {
    let mut child = xq()
        .args(["///bad["])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(SAMPLE.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn malformed_xml_exits_nonzero() {
    let mut child = xq()
        .args(["//a"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"<a><b></a>").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}
