//! XPath rewriting laws the paper relies on (§4.4 Experiment 3, §6):
//! name-test pushdown and the Q2 ancestor ↔ descendant-predicate rewrite.

use staircase_suite::prelude::*;

fn doc() -> Doc {
    generate(XmarkConfig::new(0.1).with_seed(3))
}

#[test]
fn q2_equals_manual_rewrite() {
    // /descendant::increase/ancestor::bidder ≡
    // /descendant::bidder[descendant::increase]    (Olteanu et al.)
    let doc = doc();
    for engine in [
        Engine::default(),
        Engine::Naive,
        Engine::Sql { eq1_window: true, early_nametest: true },
    ] {
        let direct = evaluate(&doc, "/descendant::increase/ancestor::bidder", engine)
            .unwrap()
            .result;
        let rewrite = evaluate(&doc, "/descendant::bidder[descendant::increase]", engine)
            .unwrap()
            .result;
        assert_eq!(direct, rewrite, "{engine:?}");
        assert!(!direct.is_empty());
    }
}

#[test]
fn sql_exists_rewrite_matches_xpath_semantics() {
    let doc = doc();
    let engine = SqlEngine::build(&doc);
    let bidder = doc.tag_id("bidder").unwrap();
    let increase = doc.tag_id("increase").unwrap();
    let (via_sql, _) =
        engine.descendant_exists_rewrite(&Context::singleton(doc.root()), bidder, increase);
    let via_xpath = evaluate(
        &doc,
        "/descendant::bidder[descendant::increase]",
        Engine::default(),
    )
    .unwrap()
    .result;
    assert_eq!(via_sql, via_xpath);
}

#[test]
fn nametest_pushdown_is_transparent() {
    // nametest(scj(doc, cs), n) ≡ scj(nametest(doc, n), cs) — the paper's
    // §4.4: pre/post properties remain valid on a subset of the plane.
    let doc = doc();
    for query in [
        "/descendant::profile/descendant::education",
        "/descendant::increase/ancestor::bidder",
        "//person/descendant::interest",
    ] {
        let late = evaluate(
            &doc,
            query,
            Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
        )
        .unwrap();
        let early = evaluate(
            &doc,
            query,
            Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true },
        )
        .unwrap();
        assert_eq!(late.result, early.result, "{query}");
        let fragmented = evaluate(
            &doc,
            query,
            Engine::Fragmented { variant: Variant::EstimationSkipping },
        )
        .unwrap();
        assert_eq!(late.result, fragmented.result, "{query}");
        // With prebuilt fragments (§6) the join touches only fragment
        // nodes — far fewer than the full-plane join. (Query-time
        // pushdown pays an O(n) name-test scan instead; its win is wall
        // time, not touch count.)
        assert!(
            fragmented.stats.total_touched() < late.stats.total_touched(),
            "{query}: fragments touched {} vs {}",
            fragmented.stats.total_touched(),
            late.stats.total_touched()
        );
    }
}

#[test]
fn pushdown_on_nonselective_test_still_correct() {
    // A tag that covers most elements (the "obviously makes sense for
    // selective name tests only" caveat): correctness must hold anyway.
    let doc = Doc::from_xml("<p><p><p><q/></p></p><p/></p>").unwrap();
    let late = evaluate(
        &doc,
        "//p/descendant::p",
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
    )
    .unwrap();
    let early = evaluate(
        &doc,
        "//p/descendant::p",
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true },
    )
    .unwrap();
    assert_eq!(late.result, early.result);
}

#[test]
fn predicate_evaluation_is_existential() {
    let doc = Doc::from_xml(
        "<r><a><b/><b/><b/></a><a><c/></a><a><b/></a></r>",
    )
    .unwrap();
    // Predicates do not multiply results: one hit per qualifying node.
    let out = evaluate(&doc, "//a[b]", Engine::default()).unwrap();
    assert_eq!(out.result.len(), 2);
}
