//! XPath rewriting laws the paper relies on (§4.4 Experiment 3, §6):
//! name-test pushdown and the Q2 ancestor ↔ descendant-predicate rewrite.

use staircase_suite::prelude::*;

fn doc() -> Doc {
    generate(XmarkConfig::new(0.1).with_seed(3))
}

#[test]
fn q2_equals_manual_rewrite() {
    // /descendant::increase/ancestor::bidder ≡
    // /descendant::bidder[descendant::increase]    (Olteanu et al.)
    let session = Session::new(doc());
    let direct = session
        .prepare("/descendant::increase/ancestor::bidder")
        .unwrap();
    let rewrite = session
        .prepare("/descendant::bidder[descendant::increase]")
        .unwrap();
    for engine in [
        Engine::default(),
        Engine::naive(),
        Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .unwrap(),
    ] {
        let a = direct.run(engine);
        let b = rewrite.run(engine);
        assert_eq!(a.nodes(), b.nodes(), "{engine:?}");
        assert!(!a.is_empty());
    }
}

#[test]
fn sql_exists_rewrite_matches_xpath_semantics() {
    let session = Session::new(doc());
    let doc = session.doc();
    let engine = session.sql_engine();
    let bidder = doc.tag_id("bidder").unwrap();
    let increase = doc.tag_id("increase").unwrap();
    let (via_sql, _) =
        engine.descendant_exists_rewrite(&Context::singleton(doc.root()), bidder, increase);
    let via_xpath = session
        .run(
            "/descendant::bidder[descendant::increase]",
            Engine::default(),
        )
        .unwrap();
    assert_eq!(&via_sql, via_xpath.nodes());
}

#[test]
fn nametest_pushdown_is_transparent() {
    // nametest(scj(doc, cs), n) ≡ scj(nametest(doc, n), cs) — the paper's
    // §4.4: pre/post properties remain valid on a subset of the plane.
    let session = Session::new(doc());
    for query in [
        "/descendant::profile/descendant::education",
        "/descendant::increase/ancestor::bidder",
        "//person/descendant::interest",
    ] {
        let prepared = session.prepare(query).unwrap();
        let late = prepared.run(Engine::default());
        let early = prepared.run(Engine::staircase().pushdown(true).build().unwrap());
        assert_eq!(late.nodes(), early.nodes(), "{query}");
        let fragmented = prepared.run(Engine::staircase().fragmented(true).build().unwrap());
        assert_eq!(late.nodes(), fragmented.nodes(), "{query}");
        // With prebuilt fragments (§6) the join touches only fragment
        // nodes — far fewer than the full-plane join. (Query-time
        // pushdown pays an O(n) name-test scan instead; its win is wall
        // time, not touch count.)
        assert!(
            fragmented.stats().total_touched() < late.stats().total_touched(),
            "{query}: fragments touched {} vs {}",
            fragmented.stats().total_touched(),
            late.stats().total_touched()
        );
    }
}

#[test]
fn pushdown_on_nonselective_test_still_correct() {
    // A tag that covers most elements (the "obviously makes sense for
    // selective name tests only" caveat): correctness must hold anyway.
    let session = Session::parse_xml("<p><p><p><q/></p></p><p/></p>").unwrap();
    let query = session.prepare("//p/descendant::p").unwrap();
    let late = query.run(Engine::default());
    let early = query.run(Engine::staircase().pushdown(true).build().unwrap());
    assert_eq!(late.nodes(), early.nodes());
}

#[test]
fn predicate_evaluation_is_existential() {
    let session = Session::parse_xml("<r><a><b/><b/><b/></a><a><c/></a><a><b/></a></r>").unwrap();
    // Predicates do not multiply results: one hit per qualifying node.
    let out = session.run("//a[b]", Engine::default()).unwrap();
    assert_eq!(out.len(), 2);
}
