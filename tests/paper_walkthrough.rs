//! A guided tour through the paper's running example: every concrete
//! number printed in Figures 1–8 is asserted here, end-to-end from XML
//! text.

use staircase_suite::prelude::*;

/// Figure 1's ten-node instance: a(b(c), d, e(f(g, h), i(j))).
fn figure1() -> Doc {
    Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
}

fn by_name(doc: &Doc, name: &str) -> Pre {
    doc.pres().find(|&v| doc.tag_name(v) == Some(name)).unwrap()
}

fn names(doc: &Doc, ctx: &Context) -> Vec<String> {
    ctx.iter()
        .map(|v| doc.tag_name(v).unwrap().to_string())
        .collect()
}

/// Figure 2: the pre/post table.
#[test]
fn figure2_doc_table() {
    let doc = figure1();
    let table: Vec<(&str, Pre, u32)> = vec![
        ("a", 0, 9),
        ("b", 1, 1),
        ("c", 2, 0),
        ("d", 3, 2),
        ("e", 4, 8),
        ("f", 5, 5),
        ("g", 6, 3),
        ("h", 7, 4),
        ("i", 8, 7),
        ("j", 9, 6),
    ];
    for (name, pre, post) in table {
        assert_eq!(by_name(&doc, name), pre, "pre({name})");
        assert_eq!(doc.post(pre), post, "post({name})");
    }
}

/// §2: f/preceding = (b, c, d); the four regions partition the document.
#[test]
fn figure1_regions_of_f() {
    let doc = figure1();
    let f = Context::singleton(by_name(&doc, "f"));
    let (p, _) = preceding(&doc, &f);
    assert_eq!(names(&doc, &p), ["b", "c", "d"]);
    let (d, _) = descendant(&doc, &f, Variant::default());
    assert_eq!(names(&doc, &d), ["g", "h"]);
    let (a, _) = ancestor(&doc, &f, Variant::default());
    assert_eq!(names(&doc, &a), ["a", "e"]);
    let (fo, _) = following(&doc, &f);
    assert_eq!(names(&doc, &fo), ["i", "j"]);
    assert_eq!(p.len() + d.len() + a.len() + fo.len() + 1, doc.len());
}

/// §2: g/ancestor = (a, e, f).
#[test]
fn figure2_ancestors_of_g() {
    let doc = figure1();
    let g = Context::singleton(by_name(&doc, "g"));
    let (a, _) = ancestor(&doc, &g, Variant::default());
    assert_eq!(names(&doc, &a), ["a", "e", "f"]);
}

/// §2.1: (c)/following/descendant = (f, g, h, i, j).
#[test]
fn section21_following_descendant() {
    let doc = figure1();
    let c = Context::singleton(by_name(&doc, "c"));
    let (step1, _) = following(&doc, &c);
    let (step2, _) = descendant(&doc, &step1, Variant::default());
    assert_eq!(names(&doc, &step2), ["f", "g", "h", "i", "j"]);
}

/// Equation 1 on the example: |(e)/descendant| = post(e) − pre(e) +
/// level(e) = 8 − 4 + 1 = 5.
#[test]
fn equation1_for_e() {
    let doc = figure1();
    let e = by_name(&doc, "e");
    assert_eq!(doc.subtree_size(e), 5);
    assert_eq!(doc.post(e) - e + doc.level(e) as u32, 5);
}

/// Figure 4: ancestor-or-self for context (d, e, f, h, i, j) yields
/// (a, d, e, f, h, i, j); pruning the context to (d, h, j) changes
/// nothing, and the naive strategy produces 11 tuples versus 3 duplicates
/// avoided... precisely: pruned context produces 3 fewer-duplicate paths.
#[test]
fn figure4_pruning_and_duplicates() {
    let doc = figure1();
    let ctx: Context = ["d", "e", "f", "h", "i", "j"]
        .iter()
        .map(|n| by_name(&doc, n))
        .collect();

    // ancestor-or-self via a prepared session query.
    let session = Session::new(figure1());
    let query = session.prepare("ancestor-or-self::node()").unwrap();
    let out = query.run_from(&ctx, Engine::default()).unwrap();
    assert_eq!(
        names(&doc, out.nodes()),
        ["a", "d", "e", "f", "h", "i", "j"]
    );

    // Pruning keeps (d, h, j).
    let pruned = prune(&doc, &ctx, Axis::Ancestor);
    assert_eq!(names(&doc, &pruned), ["d", "h", "j"]);

    // Same result from the pruned context.
    let out2 = query.run_from(&pruned, Engine::default()).unwrap();
    assert_eq!(out.nodes(), out2.nodes());

    // Figure 4 caption: the pruned context "produces less duplicates
    // (3 rather than 11)". Count via the naive engine: ancestor-or-self
    // tuples = ancestor tuples + one self tuple per context node; the
    // distinct result has 7 nodes.
    let (_, anc_naive) = naive_step(&doc, &ctx, Axis::Ancestor);
    let produced_or_self = anc_naive.tuples_produced + ctx.len() as u64;
    assert_eq!(produced_or_self - 7, 11, "unpruned duplicates");
    let (_, anc_pruned) = naive_step(&doc, &pruned, Axis::Ancestor);
    let produced_pruned = anc_pruned.tuples_produced + pruned.len() as u64;
    assert_eq!(produced_pruned - 7, 3, "pruned duplicates");
}

/// Figure 7: the empty-region lemmas, checked exhaustively on the example.
#[test]
fn figure7_empty_regions() {
    let doc = figure1();
    for a in doc.pres() {
        for b in doc.pres() {
            if Axis::Descendant.contains(&doc, a, b) {
                // Case (a): no ancestor of b may follow or precede a.
                for v in doc.pres() {
                    if Axis::Ancestor.contains(&doc, b, v) {
                        assert!(!Axis::Following.contains(&doc, a, v), "S region");
                        assert!(!Axis::Preceding.contains(&doc, a, v), "U region");
                    }
                }
            } else if Axis::Following.contains(&doc, a, b) {
                // Case (b): a and b share no descendants.
                for v in doc.pres() {
                    assert!(
                        !(Axis::Descendant.contains(&doc, a, v)
                            && Axis::Descendant.contains(&doc, b, v)),
                        "Z region"
                    );
                }
            }
        }
    }
}

/// Figure 8: the ancestor staircase for context (d, h, j) partitions the
/// plane at p0=0 < d < h < j; each partition's results are disjoint and
/// concatenate to the full answer in document order.
#[test]
fn figure8_partitions() {
    let doc = figure1();
    let ctx: Context = ["d", "h", "j"].iter().map(|n| by_name(&doc, n)).collect();
    let (result, stats) = ancestor(&doc, &ctx, Variant::Skipping);
    assert_eq!(names(&doc, &result), ["a", "e", "f", "i"]);
    assert_eq!(stats.partitions, 3);
    // Serial and parallel partition evaluation agree (the parallel
    // strategy §3.2 hints at).
    let (par, _) = ancestor_parallel(&doc, &ctx, Variant::Skipping, 3);
    assert_eq!(result, par);
}

/// §3.1: following degenerates to the min-postorder context node,
/// preceding to the max-preorder one.
#[test]
fn section31_horizontal_degeneration() {
    let doc = figure1();
    let ctx: Context = ["b", "g", "h"].iter().map(|n| by_name(&doc, n)).collect();
    let f = prune(&doc, &ctx, Axis::Following);
    assert_eq!(names(&doc, &f), ["b"]); // post(b)=1 is minimal
    let p = prune(&doc, &ctx, Axis::Preceding);
    assert_eq!(names(&doc, &p), ["h"]); // pre(h)=7 is maximal
}
