//! Worst-case-optimal twig matching, exercised end to end: the fused
//! `StepOp::Twig` leapfrog must answer node- and order-identically to
//! every fixed step-at-a-time engine — on random documents and random
//! branching queries, through `Session::run_many`, and at worker-pool
//! widths 1/2/4 — while its `StepTrace` reports the *actual* leapfrog
//! seeks. Plus cursor unit tests at word and fragment boundaries.

use proptest::prelude::*;
use staircase_suite::prelude::*;

/// The fixed step-at-a-time engines the twig plans are checked against.
fn fixed_engines() -> Vec<Engine> {
    vec![
        Engine::staircase().variant(Variant::Basic).build().unwrap(),
        Engine::staircase()
            .variant(Variant::EstimationSkipping)
            .build()
            .unwrap(),
        Engine::staircase().pushdown(true).build().unwrap(),
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::staircase().parallel(2).build().unwrap(),
        Engine::naive(),
        Engine::sql().eq1_window(true).build().unwrap(),
    ]
}

/// An arbitrary small document over the `p`/`q`/`r`/`rare` vocabulary —
/// the same shape family as the batch tests, so twig regions see deep
/// nesting, repeated tags, and empty fragments alike.
fn arb_doc() -> impl Strategy<Value = Doc> {
    proptest::collection::vec(0u8..6, 1..220).prop_map(|ops| {
        let tags = ["p", "q", "r"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        let mut rares = 0;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 3 => {
                    b.open_element(tags[i % tags.len()]);
                    depth += 1;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                5 if rares < 3 && i % 17 == 5 => {
                    b.open_element("rare");
                    b.close_element();
                    rares += 1;
                }
                _ => {
                    b.comment("c");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

/// An arbitrary *branching* query whose head is twig-eligible — vertical
/// steps with vertical existential predicates — optionally followed by
/// an ineligible tail (ancestor step, nested predicate), so plans mix
/// fused twig regions with ordinary steps.
fn arb_twig_query() -> impl Strategy<Value = String> {
    const NAMES: [&str; 4] = ["p", "q", "r", "rare"];
    const EDGES: [&str; 3] = ["descendant", "descendant", "child"];
    const PREDS: [&str; 6] = [
        "",
        "",
        "[descendant::p]",
        "[child::q]",
        "[descendant::q/child::r]",
        "[p][descendant::r]",
    ];
    const TAILS: [&str; 4] = ["", "", "/ancestor::p", "/descendant::q[r/p]"];
    proptest::collection::vec(0usize..60, 3..9).prop_map(|picks| {
        let mut out = format!(
            "/descendant::{}{}",
            NAMES[picks[0] % NAMES.len()],
            PREDS[picks[1] % PREDS.len()]
        );
        for pair in picks[2..picks.len() - 1].chunks(2) {
            let pred = pair.get(1).copied().unwrap_or(0);
            out.push('/');
            out.push_str(EDGES[pair[0] % EDGES.len()]);
            out.push_str("::");
            out.push_str(NAMES[(pair[0] / EDGES.len()) % NAMES.len()]);
            out.push_str(PREDS[pred % PREDS.len()]);
        }
        out.push_str(TAILS[picks[picks.len() - 1] % TAILS.len()]);
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: `Engine::twig()` and `Engine::auto()`
    /// answer node- and order-identically to every fixed engine on
    /// random documents and random branching queries — one query at a
    /// time, through `run_many`, and at pool widths 1, 2, and 4.
    #[test]
    fn twig_matches_every_fixed_engine(
        (doc, exprs) in (arb_doc(), proptest::collection::vec(arb_twig_query(), 1..5))
    ) {
        let sessions: Vec<Session> = [1usize, 2, 4]
            .into_iter()
            .map(|w| Session::new(doc.clone()).with_threads(w))
            .collect();
        let reference_engine = fixed_engines()[0];
        for session in &sessions {
            let queries: Vec<Query> = exprs
                .iter()
                .map(|e| session.prepare(e).unwrap_or_else(|err| panic!("{e:?} must parse: {err}")))
                .collect();
            let reference: Vec<QueryOutput> =
                queries.iter().map(|q| q.run(reference_engine)).collect();
            // Fixed engines agree among themselves (the existing
            // invariant twig must join).
            for engine in &fixed_engines()[1..] {
                for ((e, q), r) in exprs.iter().zip(&queries).zip(&reference) {
                    prop_assert_eq!(q.run(*engine).nodes(), r.nodes(),
                        "{} via {:?} at width {}", e, engine, session.threads());
                }
            }
            for engine in [Engine::twig(), Engine::auto()] {
                for ((e, q), r) in exprs.iter().zip(&queries).zip(&reference) {
                    prop_assert_eq!(q.run(engine).nodes(), r.nodes(),
                        "{} via {:?} at width {}", e, engine, session.threads());
                }
                // The lane executor path: run_many over the whole batch.
                let refs: Vec<&Query> = queries.iter().collect();
                let batch = session.run_many(&refs, engine);
                for ((e, b), r) in exprs.iter().zip(&batch).zip(&reference) {
                    prop_assert_eq!(b.nodes(), r.nodes(),
                        "run_many {} via {:?} at width {}", e, engine, session.threads());
                }
            }
        }
    }
}

/// A fused query's trace reports the leapfrog's *actual* work: the twig
/// step carries non-zero seeks, step-at-a-time traces carry none, and
/// the fused plan materializes a strictly smaller peak intermediate.
#[test]
fn fused_step_reports_real_seeks() {
    let session = Session::new(generate_skewed(SkewConfig::new(0.5, 1.2)));
    let expr = "/descendant::a[descendant::b]/descendant::c[descendant::d]";
    let plan = session.explain(expr, Engine::twig()).unwrap();
    let fused: Vec<_> = plan.branches()[0]
        .steps()
        .iter()
        .filter(|s| matches!(s.operator(), StepOp::Twig(_)))
        .collect();
    assert_eq!(fused.len(), 1, "the whole path fuses into one twig step");

    let query = session.prepare(expr).unwrap();
    let twig = query.run(Engine::twig());
    let step = query.run(Engine::staircase().fragmented(true).build().unwrap());
    assert_eq!(twig.nodes(), step.nodes());
    assert!(!twig.is_empty(), "the skewed generator plants matches");
    assert!(
        twig.stats().total_seeks() > 0,
        "leapfrog must report its seeks"
    );
    assert_eq!(
        twig.stats().steps.len(),
        1,
        "one fused step, one trace entry"
    );
    assert_eq!(step.stats().total_seeks(), 0, "scans do not seek");
    let twig_peak = twig.stats().steps.iter().map(|s| s.result_size).max();
    let step_peak = step.stats().steps.iter().map(|s| s.result_size).max();
    assert!(
        twig_peak < step_peak,
        "fusion must shrink the peak intermediate: {twig_peak:?} vs {step_peak:?}"
    );
}

/// The session calibrator fits the twig seek constant from executed
/// steps' real seek counts, and the fitted factor must keep (or
/// improve) `Engine::auto`'s fuse-or-not decision on the skewed
/// workload the twig operator exists for — feedback may sharpen the
/// constants, never invert a correct decision.
#[test]
fn calibrator_fits_twig_seeks_without_flipping_autos_decision() {
    let session = Session::new(generate_skewed(SkewConfig::new(0.5, 1.2)));
    let expr = "/descendant::a[descendant::b]/descendant::c[descendant::d]";
    let fused_steps = |plan: &PhysicalPlan| {
        plan.branches()[0]
            .steps()
            .iter()
            .filter(|s| matches!(s.operator(), StepOp::Twig(_)))
            .count()
    };

    // Before any feedback: factor 1.0 (trust the static constants), no
    // samples, and auto fuses the rare-under-common path.
    assert_eq!(session.calibrator().samples(), 0);
    assert_eq!(session.calibrator().twig_seek_factor(), 1.0);
    let before = session.explain(expr, Engine::auto()).unwrap();
    let fused_before = fused_steps(&before);
    assert!(fused_before >= 1, "auto must fuse on the skewed workload");

    // Executed twig steps feed their observed seeks into the fit.
    let query = session.prepare(expr).unwrap();
    let reference = query.run(Engine::twig());
    for _ in 0..7 {
        query.run(Engine::twig());
    }
    assert!(
        session.calibrator().samples() >= 8,
        "every executed twig step must be folded into the fit"
    );
    let factor = session.calibrator().twig_seek_factor();
    assert!(
        (0.25..=4.0).contains(&factor),
        "the fitted factor must stay inside the clamp: {factor}"
    );

    // Re-planning with the fitted constant keeps the decision …
    let after = session.explain(expr, Engine::auto()).unwrap();
    assert!(
        fused_steps(&after) >= fused_before,
        "calibration flipped auto's twig decision: {} fused before, {} after (factor {factor})",
        fused_before,
        fused_steps(&after)
    );
    // … and the answers, on a freshly planned query.
    let recalibrated = session.prepare(expr).unwrap();
    assert_eq!(recalibrated.run(Engine::auto()).nodes(), reference.nodes());
}

/// Tags absent from the document give empty fragments; the leapfrog
/// must return empty (not panic, not mis-seek) whichever leg is empty.
#[test]
fn empty_fragments_are_handled_at_every_leg() {
    let session = Session::parse_xml("<root><a><b/></a><a/></root>").unwrap();
    for expr in [
        "/descendant::zzz[descendant::b]/descendant::a",
        "/descendant::a[descendant::zzz]/descendant::b",
        "/descendant::a[descendant::b]/descendant::zzz",
    ] {
        let query = session.prepare(expr).unwrap();
        assert!(query.run(Engine::twig()).is_empty(), "{expr} must be empty");
        assert_eq!(
            query.run(Engine::twig()).nodes(),
            query.run(Engine::default()).nodes(),
            "{expr}"
        );
    }
}

/// Builds a flat document of `blocks` repeated `<a><b/></a>` blocks with
/// one trailing `<a><c/></a>`, so every per-tag fragment's length is
/// exactly `blocks` and the interesting match sits on the final entry.
fn flat_doc(blocks: usize) -> Doc {
    let mut b = EncodingBuilder::new();
    b.open_element("root");
    for _ in 0..blocks {
        b.open_element("a");
        b.open_element("b");
        b.close_element();
        b.close_element();
    }
    b.open_element("a");
    b.open_element("c");
    b.close_element();
    b.close_element();
    b.close_element();
    b.finish()
}

/// Cursor seeks at word boundaries: fragment lengths straddling the
/// 64-element mark (63/64/65) — where any word-granular bitmap or
/// galloping window math is most likely to be off by one — must not
/// change what matches, including the match planted on the fragment's
/// last entry.
#[test]
fn cursor_seeks_across_word_boundary_fragments() {
    for blocks in [1, 2, 63, 64, 65, 127, 128] {
        let doc = flat_doc(blocks);
        let tags = TagIndex::build(&doc);
        let a = tags.fragment_by_name(&doc, "a");
        let c = tags.fragment_by_name(&doc, "c");
        assert_eq!(a.len(), blocks + 1);
        assert_eq!(c.len(), 1);

        // Spine a > c: only the last `a` block qualifies.
        let spine = [
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: a,
                chains: vec![],
            },
            SpineLeg {
                edge: TwigEdge::Child,
                list: c,
                chains: vec![],
            },
        ];
        let (out, stats) = twig_match(&doc, &spine, &Context::singleton(0));
        assert_eq!(out.len(), 1, "{blocks} blocks: one c matches");
        assert_eq!(out.iter().next(), Some(c[0]), "{blocks} blocks");
        assert!(stats.seeks > 0, "{blocks} blocks: cursor must seek");

        // Chain [b] on the spine leg: all but the last `a` qualify —
        // the chain cursor runs to the very end of its fragment.
        let b = tags.fragment_by_name(&doc, "b");
        assert_eq!(b.len(), blocks);
        let spine = [SpineLeg {
            edge: TwigEdge::Descendant,
            list: a,
            chains: vec![vec![ChainStep {
                edge: TwigEdge::Child,
                list: b,
            }]],
        }];
        let (out, _) = twig_match(&doc, &spine, &Context::singleton(0));
        assert_eq!(out.len(), blocks, "{blocks} blocks: every a[b] matches");
    }
}

/// Fragment-boundary seeks under the session API: results planted at
/// the first and last positions of their fragments survive fusion at
/// sizes around the word boundary, identically to step-at-a-time.
#[test]
fn boundary_matches_survive_fusion() {
    for blocks in [63, 64, 65] {
        let session = Session::new(flat_doc(blocks));
        for expr in [
            "/descendant::a[child::b]/descendant::b",
            "/descendant::a/child::c",
            "/descendant::a[child::c]/child::c",
        ] {
            let query = session.prepare(expr).unwrap();
            assert_eq!(
                query.run(Engine::twig()).nodes(),
                query.run(Engine::default()).nodes(),
                "{expr} with {blocks} blocks"
            );
        }
    }
}
