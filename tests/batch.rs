//! The batch execution layer, exercised end to end: `Session::run_many`
//! must answer exactly like a loop of `Query::run` calls — node for
//! node, step for step — on every engine and variant, while sharing
//! plane scans between the batched queries (touched-node totals at or
//! below, and on overlapping workloads strictly below, the sequential
//! sum).

use proptest::prelude::*;
use staircase_suite::prelude::*;

/// Every buildable engine configuration (batching engines and the
/// fallback-only ones alike).
fn all_engines() -> Vec<Engine> {
    let mut engines = vec![
        Engine::naive(),
        Engine::sql().eq1_window(true).build().unwrap(),
        Engine::auto(),
    ];
    for variant in [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ] {
        engines.push(Engine::staircase().variant(variant).build().unwrap());
        engines.push(
            Engine::staircase()
                .variant(variant)
                .pushdown(true)
                .build()
                .unwrap(),
        );
        engines.push(
            Engine::staircase()
                .variant(variant)
                .fragmented(true)
                .build()
                .unwrap(),
        );
        engines.push(
            Engine::staircase()
                .variant(variant)
                .parallel(2)
                .build()
                .unwrap(),
        );
    }
    engines
}

/// An arbitrary small document over the `p`/`q`/`r` vocabulary, plus an
/// occasional `rare` element: on most generated documents `rare` is
/// selective enough that [`Engine::auto`] plans its name tests as
/// fragment (on-list) joins — the fragment lane rounds are exercised by
/// the cost-based policy, not just the fixed fragmented engines.
fn arb_doc() -> impl Strategy<Value = Doc> {
    proptest::collection::vec(0u8..6, 1..220).prop_map(|ops| {
        let tags = ["p", "q", "r"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        let mut just_text = false;
        let mut rares = 0;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 3 => {
                    b.open_element(tags[i % tags.len()]);
                    depth += 1;
                    just_text = false;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                    just_text = false;
                }
                2 if !just_text => {
                    b.text("t");
                    just_text = true;
                }
                5 if rares < 2 && i % 31 == 5 => {
                    b.open_element("rare");
                    b.close_element();
                    rares += 1;
                    just_text = false;
                }
                _ => {
                    b.comment("c");
                    just_text = false;
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

/// An arbitrary multi-step query mixing every lane form with the
/// per-lane residue: plain vertical steps (staircase lanes), selective
/// and unselective name tests (fragment lanes under the fragmented /
/// pushdown / auto engines), horizontal axes (horiz lanes), semijoin
/// predicates on all three probe axes (grouped probes), nested-loop
/// predicates, and structural steps (both per-lane).
fn arb_query() -> impl Strategy<Value = String> {
    let axis = prop_oneof![
        Just("descendant"),
        Just("descendant"),
        Just("ancestor"),
        Just("ancestor"),
        Just("descendant-or-self"),
        Just("ancestor-or-self"),
        Just("child"),
        Just("following"),
        Just("preceding"),
    ];
    let test = prop_oneof![
        Just("p"),
        Just("q"),
        Just("r"),
        Just("rare"),
        Just("*"),
        Just("node()")
    ];
    let pred = prop_oneof![
        Just(""),
        Just(""),
        Just(""),
        Just("[p]"),
        Just("[descendant::q]"),
        Just("[ancestor::r]"),
        Just("[rare]"),
        Just("[p/q]"), // nested-loop filter: the per-lane residue
    ];
    proptest::collection::vec((axis, test, pred), 1..4).prop_map(|steps| {
        let mut out = String::new();
        for (axis, test, pred) in steps {
            out.push('/');
            out.push_str(axis);
            out.push_str("::");
            out.push_str(test);
            out.push_str(pred);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lane executor's acceptance property: `run_many` equals a
    /// sequential `run` loop node- **and order**-identical (`Context`
    /// equality compares the full document-order sequence) — and
    /// step-for-step on result sizes — on every engine including
    /// `auto`, across staircase, fragment-join-planned, horizontal, and
    /// predicate-carrying steps, while never touching more nodes in
    /// total than the sequential runs did. The same holds **per pool
    /// width**: sessions with worker pools of width 1, 2, and 4 answer
    /// node- and order-identically, and the per-worker touched-node
    /// counts sum to exactly the width-1 (sequential) totals — the
    /// morsel split changes who reads a position, never whether it is
    /// read.
    #[test]
    fn run_many_equals_sequential_runs(
        (doc, exprs) in (arb_doc(), proptest::collection::vec(arb_query(), 1..7))
    ) {
        let sessions: Vec<Session> = [1usize, 2, 4]
            .into_iter()
            .map(|w| Session::new(doc.clone()).with_threads(w))
            .collect();
        let session = &sessions[0]; // width 1: the sequential reference
        let queries: Vec<Query> = exprs
            .iter()
            .map(|e| session.prepare(e).unwrap_or_else(|err| panic!("{e:?} must parse: {err}")))
            .collect();
        let refs: Vec<&Query> = queries.iter().collect();
        for engine in all_engines() {
            let batch = session.run_many(&refs, engine);
            prop_assert_eq!(batch.len(), queries.len());
            let sequential: Vec<QueryOutput> =
                queries.iter().map(|q| q.run(engine)).collect();
            let mut batch_touched = 0u64;
            let mut seq_touched = 0u64;
            for ((q, b), s) in exprs.iter().zip(&batch).zip(&sequential) {
                prop_assert_eq!(b.nodes(), s.nodes(), "{} via {:?}", q, engine);
                // Per-query traces line up step for step; only the
                // touched-node attribution may differ (shared scans).
                prop_assert_eq!(b.stats().steps.len(), s.stats().steps.len());
                for (bt, st) in b.stats().steps.iter().zip(&s.stats().steps) {
                    prop_assert_eq!(&bt.step, &st.step, "{} via {:?}", q, engine);
                    prop_assert_eq!(bt.result_size, st.result_size, "{} via {:?}", q, engine);
                }
                batch_touched += b.stats().total_touched();
                seq_touched += s.stats().total_touched();
            }
            prop_assert!(
                batch_touched <= seq_touched,
                "batch touched {} > sequential {} via {:?}",
                batch_touched,
                seq_touched,
                engine
            );

            // Pool widths 2 and 4: parallel run_many (and run) must be
            // node- and order-identical to the width-1 session, with
            // summed touched-node counts equal to the sequential totals.
            for wide in &sessions[1..] {
                let wqueries: Vec<Query> = exprs
                    .iter()
                    .map(|e| wide.prepare(e).expect("parsed on the width-1 session"))
                    .collect();
                let wrefs: Vec<&Query> = wqueries.iter().collect();
                let wbatch = wide.run_many(&wrefs, engine);
                let mut wide_touched = 0u64;
                for ((q, w), b) in exprs.iter().zip(&wbatch).zip(&batch) {
                    prop_assert_eq!(
                        w.nodes(), b.nodes(),
                        "{} via {:?} at width {}", q, engine, wide.threads()
                    );
                    wide_touched += w.stats().total_touched();
                }
                prop_assert_eq!(
                    wide_touched, batch_touched,
                    "width {} touched-node total must equal sequential's via {:?}",
                    wide.threads(), engine
                );
                for ((q, w), s) in exprs.iter().zip(&wqueries).zip(&sequential) {
                    prop_assert_eq!(
                        w.run(engine).nodes(), s.nodes(),
                        "single-query run at width {} via {:?}: {}",
                        wide.threads(), engine, q
                    );
                }
            }
        }
    }
}

/// Morsel-level parallelism on a document big enough for the planner's
/// fanout hint to fire: a 4-worker session answers node- and
/// order-identically to the width-1 session, per-query traces line up,
/// and the summed per-worker touched-node counts equal the sequential
/// totals exactly — on a workload mixing root-context descendants
/// (single-partition range splits), ancestor steps (whole-partition
/// chunks), fragment joins, horizontal axes, and semijoin probes.
#[test]
fn four_workers_match_single_thread_on_fanout_sized_doc() {
    // Widths pinned explicitly: the STAIRCASE_THREADS environment
    // default (the CI matrix's knob) must not change what this test
    // compares.
    let doc = generate(XmarkConfig::new(0.2));
    let narrow = Session::new(doc.clone()).with_threads(1);
    let wide = Session::new(doc).with_threads(4);
    assert_eq!(narrow.threads(), 1);
    assert_eq!(wide.threads(), 4);
    let exprs = [
        "/descendant::node()",
        "/descendant::bidder",
        "/descendant::increase/ancestor::bidder",
        "/descendant::node()/ancestor::node()",
        "/descendant::open_auction[bidder]/descendant::date",
        "/descendant::bidder/following::node()",
        "/descendant::person/preceding::node()",
        "/descendant::bidder[increase]/ancestor::open_auction",
    ];
    for engine in [
        Engine::default(),
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::staircase().pushdown(true).build().unwrap(),
        Engine::auto(),
    ] {
        let nq: Vec<Query> = exprs.iter().map(|e| narrow.prepare(e).unwrap()).collect();
        let wq: Vec<Query> = exprs.iter().map(|e| wide.prepare(e).unwrap()).collect();
        let nrefs: Vec<&Query> = nq.iter().collect();
        let wrefs: Vec<&Query> = wq.iter().collect();
        let nbatch = narrow.run_many(&nrefs, engine);
        let wbatch = wide.run_many(&wrefs, engine);
        let mut ntouched = 0u64;
        let mut wtouched = 0u64;
        for ((e, n), w) in exprs.iter().zip(&nbatch).zip(&wbatch) {
            assert_eq!(n.nodes(), w.nodes(), "{e} via {engine:?}");
            assert_eq!(
                n.stats().steps.len(),
                w.stats().steps.len(),
                "{e} via {engine:?}"
            );
            for (nt, wt) in n.stats().steps.iter().zip(&w.stats().steps) {
                assert_eq!(nt.result_size, wt.result_size, "{e} via {engine:?}");
            }
            ntouched += n.stats().total_touched();
            wtouched += w.stats().total_touched();
        }
        assert_eq!(
            ntouched, wtouched,
            "{engine:?}: per-worker touched counts must sum to the sequential total"
        );
        // Single queries fan out too (run is the K = 1 batch).
        for (e, (n, w)) in exprs.iter().zip(nq.iter().zip(&wq)) {
            assert_eq!(
                n.run(engine).nodes(),
                w.run(engine).nodes(),
                "{e} via {engine:?}"
            );
        }
    }
}

/// The acceptance criterion of the batch layer: a batch of ≥ 8
/// descendant/ancestor queries performs **one** plane pass per shared
/// step — the per-query `nodes_touched` totals sum to strictly less than
/// what the same queries touch when run one by one.
#[test]
fn batch_of_eight_shares_plane_passes() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let exprs = [
        "/descendant::increase/ancestor::bidder",
        "/descendant::profile/descendant::education",
        "/descendant::bidder",
        "/descendant::date/ancestor::open_auction",
        "/descendant::person",
        "/descendant::increase",
        "/descendant::open_auction/descendant::date",
        "/descendant::education/ancestor::person",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();

    for variant in [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ] {
        let engine = Engine::staircase().variant(variant).build().unwrap();
        let batch = session.run_many(&refs, engine);
        let sequential: Vec<QueryOutput> = queries.iter().map(|q| q.run(engine)).collect();

        let batch_total: u64 = batch.iter().map(|o| o.stats().total_touched()).sum();
        let seq_total: u64 = sequential.iter().map(|o| o.stats().total_touched()).sum();
        assert!(
            batch_total < seq_total,
            "{variant:?}: batch touched {batch_total}, sequential {seq_total}"
        );
        // All eight queries' first steps share the root context: their
        // first shared pass is paid once, not eight times.
        let first_step_total: u64 = batch.iter().map(|o| o.stats().steps[0].nodes_touched).sum();
        let first_step_single = sequential[0].stats().steps[0].nodes_touched;
        assert_eq!(
            first_step_total, first_step_single,
            "{variant:?}: shared first step must cost one pass"
        );
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.nodes(), s.nodes(), "{variant:?}");
        }
    }
}

/// Batched ancestor steps with *distinct* contexts still merge their
/// boundary lists into one pass.
#[test]
fn distinct_contexts_still_share() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    // Different first steps → different second-step contexts; the second
    // (ancestor) round batches eight distinct boundary lists.
    let exprs = [
        "/descendant::increase/ancestor::node()",
        "/descendant::date/ancestor::node()",
        "/descendant::education/ancestor::node()",
        "/descendant::bidder/ancestor::node()",
        "/descendant::profile/ancestor::node()",
        "/descendant::person/ancestor::node()",
        "/descendant::open_auction/ancestor::node()",
        "/descendant::seller/ancestor::node()",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();
    let engine = Engine::default();
    let batch = session.run_many(&refs, engine);
    let mut batch_anc = 0u64;
    let mut seq_anc = 0u64;
    for (q, b) in queries.iter().zip(&batch) {
        let s = q.run(engine);
        assert_eq!(b.nodes(), s.nodes());
        batch_anc += b.stats().steps[1].nodes_touched;
        seq_anc += s.stats().steps[1].nodes_touched;
    }
    assert!(
        batch_anc < seq_anc,
        "ancestor round: batch touched {batch_anc}, sequential {seq_anc}"
    );
}

/// Degenerate batches behave.
#[test]
fn trivial_batches() {
    let session = Session::parse_xml("<a><b><c/></b><b/></a>").unwrap();
    // Empty batch.
    assert!(session.run_many(&[], Engine::default()).is_empty());
    // Single query batch equals the plain run.
    let q = session.prepare("//b").unwrap();
    let batch = session.run_many(&[&q], Engine::default());
    assert_eq!(batch[0].nodes(), q.run(Engine::default()).nodes());
    // Union queries merge branches in order, as sequential does.
    let u = session.prepare("//b | //c").unwrap();
    let batch = session.run_many(&[&u, &q], Engine::default());
    let direct = u.run(Engine::default());
    assert_eq!(batch[0].nodes(), direct.nodes());
    assert_eq!(batch[0].stats().steps.len(), direct.stats().steps.len());
    // Empty documents yield empty outputs, one per query.
    let empty = Session::new(EncodingBuilder::new().finish());
    let eq = empty.prepare("//b").unwrap();
    let outs = empty.run_many(&[&eq, &eq], Engine::default());
    assert_eq!(outs.len(), 2);
    assert!(outs.iter().all(|o| o.is_empty()));
}

/// Fragment (on-list) joins batch: under the fragmented engine — and
/// under `auto` wherever it plans fragments — lanes naming the same tag
/// share one cursor over the per-tag list, so batch touched totals drop
/// strictly below the sequential sum while results stay identical.
#[test]
fn fragment_joins_share_the_list_cursor() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    // All eight first steps are name tests from the root: same tag ⇒
    // same fragment lane group, deduped context ⇒ one pass.
    let exprs = [
        "/descendant::bidder",
        "/descendant::bidder/ancestor::open_auction",
        "/descendant::bidder/descendant::increase",
        "/descendant::bidder[increase]",
        "/descendant::person",
        "/descendant::person/descendant::education",
        "/descendant::increase",
        "/descendant::increase/ancestor::bidder",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();
    for engine in [
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::staircase().pushdown(true).build().unwrap(),
        Engine::auto(),
    ] {
        let batch = session.run_many(&refs, engine);
        let sequential: Vec<QueryOutput> = queries.iter().map(|q| q.run(engine)).collect();
        let batch_total: u64 = batch.iter().map(|o| o.stats().total_touched()).sum();
        let seq_total: u64 = sequential.iter().map(|o| o.stats().total_touched()).sum();
        assert!(
            batch_total < seq_total,
            "{engine:?}: batch touched {batch_total} !< sequential {seq_total}"
        );
        for ((e, b), s) in exprs.iter().zip(&batch).zip(&sequential) {
            assert_eq!(b.nodes(), s.nodes(), "{e} via {engine:?}");
        }
    }
}

/// Horizontal axes batch too: the nested following/preceding regions of
/// a group come out of one shared scan, attributed to the widest lane.
#[test]
fn horizontal_axes_share_one_scan() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let exprs = [
        "/descendant::bidder/following::node()",
        "/descendant::person/following::node()",
        "/descendant::increase/following::node()",
        "/descendant::bidder/preceding::node()",
        "/descendant::education/preceding::node()",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();
    let engine = Engine::default();
    let batch = session.run_many(&refs, engine);
    let mut batch_horiz = 0u64;
    let mut seq_horiz = 0u64;
    for (q, b) in queries.iter().zip(&batch) {
        let s = q.run(engine);
        assert_eq!(b.nodes(), s.nodes());
        batch_horiz += b.stats().steps[1].nodes_touched;
        seq_horiz += s.stats().steps[1].nodes_touched;
    }
    assert!(
        batch_horiz < seq_horiz,
        "horizontal round: batch touched {batch_horiz} !< sequential {seq_horiz}"
    );
}

/// Steps carrying semijoin predicates stay on the lane path (the probes
/// are grouped), so a batch of predicate-heavy queries still shares its
/// join passes.
#[test]
fn semijoin_predicates_do_not_break_batching() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let exprs = [
        "/descendant::open_auction[bidder]",
        "/descendant::open_auction[descendant::increase]",
        "/descendant::open_auction[bidder][descendant::date]",
        "/descendant::bidder[increase]/ancestor::open_auction",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();
    for engine in [Engine::default(), Engine::auto()] {
        let batch = session.run_many(&refs, engine);
        let sequential: Vec<QueryOutput> = queries.iter().map(|q| q.run(engine)).collect();
        for ((e, b), s) in exprs.iter().zip(&batch).zip(&sequential) {
            assert_eq!(b.nodes(), s.nodes(), "{e} via {engine:?}");
            for (bt, st) in b.stats().steps.iter().zip(&s.stats().steps) {
                assert_eq!(bt.result_size, st.result_size, "{e} via {engine:?}");
            }
        }
        // The four first steps share passes: strictly fewer touches than
        // four sequential runs (which re-scan per query).
        let batch_total: u64 = batch.iter().map(|o| o.stats().total_touched()).sum();
        let seq_total: u64 = sequential.iter().map(|o| o.stats().total_touched()).sum();
        assert!(
            batch_total < seq_total,
            "{engine:?}: batch touched {batch_total} !< sequential {seq_total}"
        );
    }
}

/// Horizontal axes on batching and fallback-only engines alike must
/// line up with sequential runs node for node and trace for trace,
/// including mixed batches where vertical steps batch around them.
#[test]
fn horizontal_axes_match_sequential_per_query() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    let exprs = [
        "/descendant::bidder/following::node()",
        "/descendant::person/preceding::node()",
        "/descendant::increase/following::date",
        "/descendant::education/preceding::bidder",
        // Mixed: a batchable vertical step on either side of a
        // horizontal one.
        "/descendant::open_auction/following::node()/descendant::increase",
        "/descendant::profile/preceding::node()/ancestor::open_auction",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();

    for engine in [
        Engine::default(),
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::auto(),
        Engine::naive(),
    ] {
        let batch = session.run_many(&refs, engine);
        assert_eq!(batch.len(), queries.len());
        let mut some_result = false;
        for ((expr, q), b) in exprs.iter().zip(&queries).zip(&batch) {
            let s = q.run(engine);
            assert_eq!(b.nodes(), s.nodes(), "{expr} via {engine:?}");
            assert_eq!(
                b.stats().steps.len(),
                s.stats().steps.len(),
                "{expr} via {engine:?}"
            );
            for (bt, st) in b.stats().steps.iter().zip(&s.stats().steps) {
                assert_eq!(bt.step, st.step, "{expr} via {engine:?}");
                assert_eq!(bt.result_size, st.result_size, "{expr} via {engine:?}");
            }
            some_result |= !b.is_empty();
        }
        assert!(some_result, "workload must exercise non-empty results");
    }
}

/// `Engine::auto` batches the steps it planned as plain staircase joins
/// exactly like the fixed staircase engine: shared first steps cost one
/// pass, and results stay identical to sequential runs.
#[test]
fn auto_planned_staircase_steps_share_passes() {
    let session = Session::new(generate(XmarkConfig::new(0.05)));
    // node() tests keep auto on the plain staircase join (no fragment
    // to exploit), so all four first steps share the root context pass.
    let exprs = [
        "/descendant::node()",
        "/descendant::node()/ancestor::node()",
        "/descendant::node()/descendant::node()",
        "/descendant::node()/following::node()",
    ];
    let queries: Vec<Query> = exprs.iter().map(|e| session.prepare(e).unwrap()).collect();
    let refs: Vec<&Query> = queries.iter().collect();
    let batch = session.run_many(&refs, Engine::auto());
    let sequential: Vec<QueryOutput> = queries.iter().map(|q| q.run(Engine::auto())).collect();
    for (b, s) in batch.iter().zip(&sequential) {
        assert_eq!(b.nodes(), s.nodes());
    }
    let first_step_total: u64 = batch.iter().map(|o| o.stats().steps[0].nodes_touched).sum();
    let first_step_single = sequential[0].stats().steps[0].nodes_touched;
    assert_eq!(
        first_step_total, first_step_single,
        "shared first step must cost one pass under auto"
    );
}
