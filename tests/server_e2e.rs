//! End-to-end server test: a real listener on an ephemeral port, many
//! concurrent client threads on mixed engines, every response asserted
//! node- and order-identical to a sequential `Session::run` of the same
//! expression.

use std::sync::Arc;
use std::time::Duration;

use staircase_server::{Client, QueryOptions, Server, ServerConfig};
use staircase_suite::prelude::*;

/// A generated xmark-ish document big enough that shared scans matter
/// and queries return non-trivial result sets.
fn session() -> Arc<Session> {
    Arc::new(Session::new(generate(XmarkConfig::new(0.05))))
}

const EXPRS: [&str; 8] = [
    "/descendant::profile/descendant::education",
    "/descendant::increase/ancestor::bidder",
    "/descendant::bidder",
    "/descendant::date/ancestor::open_auction",
    "/descendant::person",
    "/descendant::bidder[increase]",
    "/descendant::open_auction[bidder]/descendant::date",
    "/descendant::education/ancestor::person",
];

const ENGINES: [&str; 5] = ["staircase", "fragmented", "auto", "sql", "naive"];

fn engine_of(name: &str) -> Engine {
    staircase_server::engine_by_name(name).expect("wire engine name")
}

/// ≥ 8 concurrent clients, mixed engines (incl. `auto`), a batching
/// window: every streamed response must equal the sequential
/// `Session::run` answer, node for node, in order.
#[test]
fn concurrent_clients_match_sequential_run_exactly() {
    let session = session();
    // The oracle: sequential runs, engine by engine, before any server
    // traffic exists.
    let mut expected: Vec<Vec<Vec<Pre>>> = Vec::new();
    for engine in ENGINES {
        expected.push(
            EXPRS
                .iter()
                .map(|e| {
                    session
                        .run(e, engine_of(engine))
                        .expect("oracle query parses")
                        .into_nodes()
                        .into_vec()
                })
                .collect(),
        );
    }
    let expected = Arc::new(expected);

    let config = ServerConfig {
        window: Duration::from_millis(3),
        max_batch: 64,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&session), config).expect("bind");
    let addr = handle.local_addr();

    const CLIENTS: usize = 10;
    const ROUNDS: usize = 3;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..ROUNDS {
                    // Stagger engines and expressions across clients and
                    // rounds so windows mix engines and expressions.
                    let ei = (c + round) % ENGINES.len();
                    for (qi, expr) in EXPRS.iter().enumerate() {
                        let reply = client
                            .query(
                                expr,
                                &QueryOptions {
                                    engine: ENGINES[ei].to_string(),
                                    render: false,
                                    count_only: false,
                                    deadline_ms: None,
                                },
                            )
                            .unwrap_or_else(|e| panic!("client {c}: {expr}: {e}"));
                        assert_eq!(
                            reply.ids, expected[ei][qi],
                            "client {c} round {round}: {} on {expr} diverged from \
                             sequential run",
                            ENGINES[ei]
                        );
                        assert_eq!(reply.total as usize, expected[ei][qi].len());
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // The server must have actually batched some of that concurrency:
    // every query answered, at least one multi-query shared pass.
    let metrics = handle.metrics();
    let queries = metrics
        .queries_ok
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(queries as usize, CLIENTS * ROUNDS * EXPRS.len());
    let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
    let batched = metrics
        .batched_queries
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(batched, queries, "every query rode in exactly one pass");
    assert!(
        batches <= queries,
        "passes cannot outnumber queries (batches {batches}, queries {queries})"
    );
    handle.shutdown_and_join();
}

/// The configured-hot-set warm (`staircase-serve --warm-tags`):
/// `Session::warm_tags` pre-cracks exactly the listed fragments, cold
/// tags stay unbuilt while the server answers hot-set traffic over the
/// wire, and a cold tag's fragment materializes only once queries
/// actually touch it.
#[test]
fn warm_tags_precracks_the_hot_set_and_leaves_cold_tags_lazy() {
    let session = session();
    session.warm_tags(&["bidder", "increase"]);
    assert!(session.tag_fragment_built("bidder"));
    assert!(session.tag_fragment_built("increase"));
    for cold in ["education", "person", "open_auction"] {
        assert!(
            !session.tag_fragment_built(cold),
            "{cold} built by a partial warm"
        );
    }

    let handle = Server::start(Arc::clone(&session), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let fragmented = QueryOptions {
        engine: "fragmented".to_string(),
        render: false,
        count_only: false,
        deadline_ms: None,
    };

    // Hot-set traffic reads the pre-cracked fragments; the cold tags
    // must survive it unbuilt.
    let reply = client
        .query("/descendant::increase/ancestor::bidder", &fragmented)
        .expect("hot-set query");
    assert!(!reply.ids.is_empty());
    for cold in ["education", "person", "open_auction"] {
        assert!(
            !session.tag_fragment_built(cold),
            "{cold} built without being touched"
        );
    }

    // First touches of a cold tag crack it piecewise; by the
    // convergence bound the fragment is fully sorted.
    for _ in 0..CRACK_CONVERGE_TOUCHES {
        client
            .query("/descendant::education", &fragmented)
            .expect("cold-tag query");
    }
    assert!(
        session.tag_fragment_built("education"),
        "a touched tag must converge to its built fragment"
    );
    assert!(!session.tag_fragment_built("person"), "still cold");
    handle.shutdown_and_join();
}

/// A document and query pair whose ungoverned evaluation takes long
/// enough (many full-plane passes) that deadlines and cancellations
/// deterministically win the race against completion.
fn pathological() -> (Arc<Session>, String) {
    let mut b = EncodingBuilder::new();
    b.open_element("root");
    for _ in 0..300 {
        b.open_element("p");
        for _ in 0..400 {
            b.open_element("q");
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    let mut expr = String::from("/descendant-or-self::*");
    for i in 0..80 {
        expr.push_str(if i % 2 == 0 {
            "/ancestor-or-self::*"
        } else {
            "/descendant-or-self::*"
        });
    }
    (Arc::new(Session::new(b.finish())), expr)
}

/// A per-query deadline riding the QUERY frame: the server answers a
/// typed `TIMEOUT` error frame promptly and the connection stays open
/// for ordinary queries.
#[test]
fn a_client_deadline_times_out_a_pathological_query_and_the_connection_survives() {
    use staircase_server::protocol::code;
    use staircase_server::ClientError;

    let (session, expr) = pathological();
    let handle = Server::start(Arc::clone(&session), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let started = std::time::Instant::now();
    let err = client
        .query(
            &expr,
            &QueryOptions {
                deadline_ms: Some(50),
                ..QueryOptions::default()
            },
        )
        .expect_err("the deadline must trip first");
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::TIMEOUT),
        "{err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "timeout answered way late: {:?}",
        started.elapsed()
    );

    // Same connection, next query: the governed timeout is survivable.
    let reply = client
        .query("//p", &QueryOptions::default())
        .expect("connection stays open");
    assert_eq!(reply.total, 300);
    assert!(
        handle
            .metrics()
            .exec_timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}

/// A `CANCEL` frame sent while a query is in flight stops it: the
/// server answers a typed `CANCELLED` error frame and the connection
/// keeps serving.
#[test]
fn a_cancel_frame_stops_an_in_flight_query() {
    use staircase_server::protocol::code;
    use staircase_server::ClientError;

    let (session, expr) = pathological();
    let handle = Server::start(Arc::clone(&session), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut canceller = client.try_clone().expect("clone stream");
    let cancel_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        canceller.cancel().expect("cancel frame sends");
    });

    let started = std::time::Instant::now();
    let err = client
        .query(&expr, &QueryOptions::default())
        .expect_err("the cancel must win against completion");
    cancel_thread.join().expect("cancel thread");
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::CANCELLED),
        "{err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancellation answered way late: {:?}",
        started.elapsed()
    );

    let reply = client
        .query("//p", &QueryOptions::default())
        .expect("connection stays open");
    assert_eq!(reply.total, 300);
    assert!(
        handle
            .metrics()
            .cancelled_queries
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}

/// Rendered streaming matches what local `xq`-style rendering would
/// produce (same shared `render_line`).
#[test]
fn rendered_results_match_local_rendering() {
    let session = session();
    let handle = Server::start(Arc::clone(&session), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let expr = "/descendant::increase/ancestor::bidder";
    let reply = client
        .query(
            expr,
            &QueryOptions {
                engine: "auto".to_string(),
                render: true,
                count_only: false,
                deadline_ms: None,
            },
        )
        .expect("query");
    let local = session.run(expr, Engine::auto()).expect("parses");
    let local_lines: Vec<String> = local
        .iter()
        .map(|v| staircase_server::render_line(session.doc(), v))
        .collect();
    assert_eq!(reply.rendered, local_lines);
    handle.shutdown_and_join();
}
