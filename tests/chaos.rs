//! The chaos suite: fault-injection tests compiled only under
//! `RUSTFLAGS="--cfg stair_faults"` (CI runs them as a dedicated leg).
//!
//! Each test arms named fail points (`staircase_xpath::faults`) to
//! force failures ordinary inputs cannot reach — a panic inside a pool
//! task, a forced budget trip inside a kernel, an injected delay that
//! makes deadlines observable on small documents — and asserts the
//! governor's containment claims: one query fails, its siblings and
//! the session (and, server-side, the connection) survive.
//!
//! The fail-point registry is process-wide, so every test serializes on
//! one mutex and disarms everything it armed.

#![allow(unexpected_cfgs)]
#![cfg(stair_faults)]

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use staircase_suite::prelude::*;
use staircase_xpath::faults::{self, FaultKind};

/// Serializes chaos tests (the registry is process-wide) and guarantees
/// a clean registry on entry and exit.
struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultScope {
    fn enter() -> FaultScope {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear_all();
        FaultScope(guard)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        faults::clear_all();
    }
}

fn layered_doc(fanout: usize, width: usize) -> Doc {
    let mut b = EncodingBuilder::new();
    b.open_element("root");
    for _ in 0..fanout {
        b.open_element("p");
        for _ in 0..width {
            b.open_element("q");
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

fn engine() -> Engine {
    Engine::staircase().build().expect("valid engine config")
}

#[test]
fn a_panicking_pool_task_fails_only_its_query() {
    let _scope = FaultScope::enter();
    // Width 2 and two lanes with *different* grouping keys (a
    // descendant pass and a child pass): the round fans out as two pool
    // tasks, and a panic in one of them must fail exactly one query.
    let session = Session::new(layered_doc(40, 40)).with_threads(2);
    let queries = [
        session.prepare("//q").expect("query parses"),
        session
            .prepare("/child::p/descendant::q")
            .expect("query parses"),
    ];
    let refs: Vec<&_> = queries.iter().collect();
    let baseline = session.run_many(&refs, engine());

    faults::set("core::pool::task", FaultKind::Panic, Some(1));
    let governed = session.run_many_governed(&refs, engine(), &[None, None]);
    faults::clear_all();

    let failed: Vec<usize> = governed
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed.len(), 1, "exactly one query must fail: {governed:?}");
    assert!(
        matches!(governed[failed[0]], Err(Error::Internal(_))),
        "the failure must be the isolated-panic variant: {:?}",
        governed[failed[0]]
    );
    for (i, (g, b)) in governed.iter().zip(&baseline).enumerate() {
        if i == failed[0] {
            continue;
        }
        let g = g.as_ref().expect("sibling completes");
        assert_eq!(
            g.nodes().as_slice(),
            b.nodes().as_slice(),
            "sibling {i} diverged"
        );
    }

    // The pool and session survive the unwound task: the same batch
    // answers in full.
    let again = session.run_many(&refs, engine());
    for (a, b) in again.iter().zip(&baseline) {
        assert_eq!(a.nodes().as_slice(), b.nodes().as_slice());
    }
}

#[test]
fn a_forced_trip_inside_a_kernel_cancels_the_governed_query() {
    let _scope = FaultScope::enter();
    let session = Session::new(layered_doc(30, 30));
    let query = session.prepare("//q/ancestor::p").expect("query parses");

    faults::set("core::desc::partition", FaultKind::Trip, None);
    let out = query.run_governed(engine(), Arc::new(Budget::new()));
    faults::clear_all();
    assert!(
        matches!(out, Err(Error::Cancelled)),
        "a forced trip surfaces as cancellation: {out:?}"
    );

    let ok = query
        .run_governed(engine(), Arc::new(Budget::new()))
        .expect("disarmed: the query answers");
    assert_eq!(
        ok.nodes().as_slice(),
        query.run(engine()).nodes().as_slice()
    );
}

#[test]
fn an_injected_delay_makes_a_deadline_trip_on_a_small_document() {
    let _scope = FaultScope::enter();
    let session = Session::new(layered_doc(5, 5));
    let query = session.prepare("//q/ancestor::p").expect("query parses");

    // 30 ms per round against a 10 ms deadline: the round-boundary
    // check must trip even though the document is far too small for the
    // in-kernel tickers to fire. Both round sites are armed so the test
    // holds whether the plan runs its lanes grouped or as fallbacks.
    faults::set("xpath::lane", FaultKind::Delay(30), None);
    faults::set("xpath::round", FaultKind::Delay(30), None);
    let budget = Arc::new(Budget::new().with_deadline_in(Duration::from_millis(10)));
    let out = query.run_governed(engine(), budget);
    faults::clear_all();
    assert!(
        matches!(out, Err(Error::DeadlineExceeded)),
        "the delayed round must overrun the deadline: {out:?}"
    );
}

#[test]
fn a_panicking_batch_execution_answers_internal_and_the_server_survives() {
    use staircase_server::protocol::code;
    use staircase_server::{Client, ClientError, QueryOptions, Server, ServerConfig};

    let _scope = FaultScope::enter();
    let session =
        Arc::new(staircase_xpath::Session::parse_xml("<a><b/><b/></a>").expect("fixture parses"));
    let handle = Server::start(session, ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.local_addr()).expect("client connects");

    faults::set("server::execute", FaultKind::Panic, Some(1));
    let err = client
        .query("//b", &QueryOptions::default())
        .expect_err("the injected panic must fail the query");
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::INTERNAL),
        "{err:?}"
    );

    // Same connection, same batcher thread: the next query answers.
    let reply = client
        .query("//b", &QueryOptions::default())
        .expect("the server survives the caught panic");
    assert_eq!(reply.total, 2);
    assert!(
        handle
            .metrics()
            .internal_errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}

#[test]
fn an_injected_delay_trips_the_client_deadline_over_the_wire() {
    use staircase_server::protocol::code;
    use staircase_server::{Client, ClientError, QueryOptions, Server, ServerConfig};

    let _scope = FaultScope::enter();
    let session =
        Arc::new(staircase_xpath::Session::parse_xml("<a><b/><b/></a>").expect("fixture parses"));
    let handle = Server::start(session, ServerConfig::default()).expect("server binds");
    let mut client = Client::connect(handle.local_addr()).expect("client connects");

    faults::set("xpath::lane", FaultKind::Delay(80), None);
    faults::set("xpath::round", FaultKind::Delay(80), None);
    let err = client
        .query(
            "//b",
            &QueryOptions {
                deadline_ms: Some(20),
                ..QueryOptions::default()
            },
        )
        .expect_err("the delayed execution must overrun the 20 ms deadline");
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::TIMEOUT),
        "{err:?}"
    );
    faults::clear_all();

    // The connection survives the governed timeout.
    let reply = client
        .query("//b", &QueryOptions::default())
        .expect("the connection stays open after TIMEOUT");
    assert_eq!(reply.total, 2);
    assert!(
        handle
            .metrics()
            .exec_timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}
