//! Mask/scalar parity: the chunked bitmask kernels and the per-tag
//! bitmap fragments are pure acceleration. Whichever filtering route
//! the runtime picks — per-element scalar loop, gathered-column mask
//! kernel, or bitmap window select — every engine must return node-
//! and order-identical results with identical per-step stats.
//!
//! The reference here is deliberately naive: a per-node loop over the
//! raw pre/post/kind/tag columns that never touches `mask` or
//! `TagBitmap`. Window offsets and lengths are driven across word
//! boundaries (unaligned heads, sub-word tails) both at the kernel
//! level and, via `Query::run_from`, through whole engines including
//! the cost-based `auto` planner.

use proptest::prelude::*;
use staircase_core::{mask, TagBitmap};
use staircase_suite::prelude::*;

const TAG_NAMES: [&str; 4] = ["x", "y", "z", "w"];
const AXES: [(&str, Axis); 5] = [
    ("descendant", Axis::Descendant),
    ("ancestor", Axis::Ancestor),
    ("following", Axis::Following),
    ("preceding", Axis::Preceding),
    ("child", Axis::Child),
];
/// Node tests as written in the query text; `ghost` never occurs in
/// any generated document, so its name test must yield nothing.
const TESTS: [&str; 8] = ["x", "y", "z", "w", "ghost", "*", "node()", "text()"];

fn engines() -> [Engine; 10] {
    [
        Engine::staircase().variant(Variant::Basic).build().unwrap(),
        Engine::staircase()
            .variant(Variant::Skipping)
            .build()
            .unwrap(),
        Engine::staircase()
            .variant(Variant::EstimationSkipping)
            .build()
            .unwrap(),
        Engine::staircase().pushdown(true).build().unwrap(),
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::staircase().parallel(3).build().unwrap(),
        Engine::naive(),
        Engine::sql().build().unwrap(),
        Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .unwrap(),
        Engine::auto(),
    ]
}

/// Random document from an opcode tape: elements over a small tag
/// alphabet, interleaved with text, comments, and attributes.
fn build_doc(ops: &[u8]) -> Doc {
    let mut b = EncodingBuilder::new();
    b.open_element("r");
    let mut depth = 1usize;
    for (i, &op) in ops.iter().enumerate() {
        match op {
            0..=2 | 7 => {
                b.open_element(TAG_NAMES[(op as usize + i) % TAG_NAMES.len()]);
                depth += 1;
            }
            3 if depth > 1 => {
                b.close_element();
                depth -= 1;
            }
            4 => {
                b.text("t");
            }
            5 => {
                b.comment("pad");
            }
            _ => {
                b.attribute("id", "v");
            }
        }
    }
    while depth > 0 {
        b.close_element();
        depth -= 1;
    }
    b.finish()
}

/// `true` when `v` passes `test` (as spelled in [`TESTS`]).
fn scalar_test(doc: &Doc, v: Pre, test: &str) -> bool {
    match test {
        "*" => doc.kind(v) == NodeKind::Element,
        "node()" => true,
        "text()" => doc.kind(v) == NodeKind::Text,
        "comment()" => doc.kind(v) == NodeKind::Comment,
        name => {
            doc.kind(v) == NodeKind::Element
                && doc.tag_id(name) == Some(doc.tag_column()[v as usize])
        }
    }
}

/// One axis step + node test, evaluated per node over the raw columns.
fn scalar_step(doc: &Doc, ctx: &[Pre], axis: Axis, test: &str) -> Vec<Pre> {
    let post = doc.post_column();
    let mut out = Vec::new();
    for v in doc.pres() {
        if doc.kind(v) == NodeKind::Attribute {
            continue;
        }
        let hit = ctx.iter().any(|&c| match axis {
            Axis::Descendant => v > c && post[v as usize] < post[c as usize],
            Axis::Ancestor => v < c && post[v as usize] > post[c as usize],
            Axis::Following => v > c && post[v as usize] > post[c as usize],
            Axis::Preceding => v < c && post[v as usize] < post[c as usize],
            Axis::Child => v != c && doc.parent(v) == c,
            _ => unreachable!("axis outside the generated set"),
        });
        if hit && scalar_test(doc, v, test) {
            out.push(v);
        }
    }
    out
}

fn query_text(steps: &[(usize, usize)], absolute: bool) -> String {
    let mut q = String::new();
    for (i, &(a, t)) in steps.iter().enumerate() {
        if absolute || i > 0 {
            q.push('/');
        }
        q.push_str(AXES[a].0);
        q.push_str("::");
        q.push_str(TESTS[t]);
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-query parity from the root: every engine, including
    /// `auto`, matches the scalar reference node for node, and a warm
    /// rerun (bitmaps now built and cached) reports byte-identical
    /// [`EvalStats`] to the cold one.
    #[test]
    fn every_engine_matches_the_scalar_reference(
        ops in proptest::collection::vec(0u8..8, 1..250),
        steps in proptest::collection::vec((0usize..AXES.len(), 0usize..TESTS.len()), 1..4),
    ) {
        let doc = build_doc(&ops);
        let mut expected: Vec<Pre> = vec![doc.root()];
        for &(a, t) in &steps {
            expected = scalar_step(&doc, &expected, AXES[a].1, TESTS[t]);
        }
        let query = query_text(&steps, true);
        let session = Session::new(doc);
        let prepared = session.prepare(&query).unwrap();
        for engine in engines() {
            let cold = prepared.run(engine);
            let warm = prepared.run(engine);
            let got: Vec<Pre> = cold.nodes().iter().collect();
            prop_assert_eq!(&got, &expected, "{} via {:?}", &query, engine);
            prop_assert_eq!(
                warm.nodes().iter().collect::<Vec<Pre>>(), got,
                "warm rerun changed nodes: {} via {:?}", &query, engine
            );
            prop_assert_eq!(
                cold.stats(), warm.stats(),
                "bitmap warm-up changed stats: {} via {:?}", &query, engine
            );
        }
    }

    /// Windowed contexts at arbitrary offsets: a contiguous pre-rank
    /// run whose head and tail land anywhere relative to the 64-bit
    /// word grid is fed to every engine through `run_from`, and each
    /// must match the scalar reference (the gap-free runs here are
    /// exactly the shape the bitmap window-select fast path claims).
    #[test]
    fn offset_windows_agree_on_every_engine(
        ops in proptest::collection::vec(0u8..8, 64..300),
        start in 0usize..130,
        len in 1usize..140,
        a in 0usize..AXES.len(),
        t in 0usize..TESTS.len(),
    ) {
        let doc = build_doc(&ops);
        let n = doc.len();
        let ctx: Vec<Pre> = (start.min(n)..(start + len).min(n))
            .map(|v| v as Pre)
            .filter(|&v| doc.kind(v) != NodeKind::Attribute)
            .collect();
        if !ctx.is_empty() {
            let expected = scalar_step(&doc, &ctx, AXES[a].1, TESTS[t]);
            let query = query_text(&[(a, t)], false);
            let session = Session::new(doc);
            let prepared = session.prepare(&query).unwrap();
            let context: Context = ctx.iter().copied().collect();
            for engine in engines() {
                let cold = prepared.run_from(&context, engine).unwrap();
                let warm = prepared.run_from(&context, engine).unwrap();
                let got: Vec<Pre> = cold.nodes().iter().collect();
                prop_assert_eq!(&got, &expected, "{} from {}..+{} via {:?}", &query, start, len, engine);
                prop_assert_eq!(
                    cold.stats(), warm.stats(),
                    "warm rerun changed stats: {} from {}..+{} via {:?}", &query, start, len, engine
                );
            }
        }
    }

    /// Kernel-level window parity: `TagBitmap::select_window` and
    /// `count_window` against the scalar column loop over windows whose
    /// `from`/`to` sweep across word boundaries.
    #[test]
    fn bitmap_windows_match_scalar_filters(
        tags in proptest::collection::vec(0u32..6, 1..400),
        from in 0usize..140,
        len in 0usize..140,
    ) {
        let element = NodeKind::Element as u8;
        let kinds: Vec<u8> = (0..tags.len())
            .map(|i| if i % 7 == 3 { NodeKind::Text as u8 } else { element })
            .collect();
        for tid in 0..6u32 {
            let bm = TagBitmap::build(&kinds, element, &tags, tid);
            let to = (from + len).min(tags.len());
            let want: Vec<Pre> = (from.min(tags.len())..to)
                .filter(|&v| kinds[v] == element && tags[v] == tid)
                .map(|v| v as Pre)
                .collect();
            let mut got = Vec::new();
            bm.select_window(from, to, &mut got);
            prop_assert_eq!(&got, &want, "select {}..{} tag {}", from, to, tid);
            prop_assert_eq!(bm.count_window(from, to), want.len(), "count {}..{} tag {}", from, to, tid);
        }
    }

    /// Kernel-level candidate parity: the gathered-column mask kernel
    /// and the bitmap probe kernel against the scalar loop, over
    /// candidate slices starting at unaligned offsets with sub-word
    /// tails and gaps.
    #[test]
    fn candidate_kernels_match_scalar_filters(
        tags in proptest::collection::vec(0u32..6, 1..400),
        off in 0usize..70,
        stride in 1usize..4,
    ) {
        let element = NodeKind::Element as u8;
        let kinds: Vec<u8> = (0..tags.len())
            .map(|i| if i % 5 == 2 { NodeKind::Comment as u8 } else { element })
            .collect();
        let cands: Vec<Pre> = (off.min(tags.len())..tags.len())
            .step_by(stride)
            .map(|v| v as Pre)
            .collect();
        for tid in 0..6u32 {
            let want: Vec<Pre> = cands
                .iter()
                .copied()
                .filter(|&v| kinds[v as usize] == element && tags[v as usize] == tid)
                .collect();
            let mut got = Vec::new();
            mask::select_tag_candidates(&kinds, &tags, element, tid, &cands, &mut got);
            prop_assert_eq!(&got, &want, "columns off {} stride {} tag {}", off, stride, tid);
            let bm = TagBitmap::build(&kinds, element, &tags, tid);
            got.clear();
            mask::select_bitmap_candidates(&bm, &cands, &mut got);
            prop_assert_eq!(&got, &want, "bitmap off {} stride {} tag {}", off, stride, tid);
        }
    }
}

/// Deterministic sweep pinning the exact boundary shapes: empty
/// windows, single bits, 63/64/65, double-word spans, and ragged tails
/// past the end of the document.
#[test]
fn word_boundary_windows_are_exact() {
    let element = NodeKind::Element as u8;
    let n = 300usize;
    let kinds = vec![element; n];
    let tags: Vec<u32> = (0..n as u32)
        .map(|v| v.wrapping_mul(2654435761) % 5)
        .collect();
    for tid in 0..5u32 {
        let bm = TagBitmap::build(&kinds, element, &tags, tid);
        for from in [
            0usize, 1, 7, 31, 63, 64, 65, 127, 128, 129, 255, 256, 299, 300, 310,
        ] {
            for len in [0usize, 1, 7, 63, 64, 65, 128, 129, 171, 400] {
                let to = (from + len).min(n);
                let want: Vec<Pre> = (from.min(n)..to)
                    .filter(|&v| tags[v] == tid)
                    .map(|v| v as Pre)
                    .collect();
                let mut got = Vec::new();
                bm.select_window(from, from + len, &mut got);
                assert_eq!(got, want, "select {from}..+{len} tag {tid}");
                assert_eq!(
                    bm.count_window(from, from + len),
                    want.len(),
                    "count {from}..+{len} tag {tid}"
                );
            }
        }
    }
}
