//! The query governor, end to end: deadlines stop pathological queries
//! promptly, cost budgets trip at the touched-node ceiling, cooperative
//! cancellation works from another thread, and every trip is
//! lane-local — batch siblings complete node- and order-identical to an
//! ungoverned run, and the session (with its worker pool) stays
//! reusable afterwards.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use staircase_suite::prelude::*;

/// A two-level document: `root` over `fanout` `p` elements, each over
/// `width` `q` elements — big enough that a full-document pass is
/// measurable work, cheap enough to build in every test.
fn layered_doc(fanout: usize, width: usize) -> Doc {
    let mut b = EncodingBuilder::new();
    b.open_element("root");
    for _ in 0..fanout {
        b.open_element("p");
        for _ in 0..width {
            b.open_element("q");
            b.close_element();
        }
        b.close_element();
    }
    b.close_element();
    b.finish()
}

/// A query whose every step visits (roughly) the whole document:
/// `steps` alternating full-plane descendant/ancestor passes. Running
/// it ungoverned costs `steps × |doc|` touched nodes — the pathological
/// shape the governor exists for.
fn pathological_query(steps: usize) -> String {
    let mut q = String::from("/descendant-or-self::*");
    for i in 0..steps {
        q.push_str(if i % 2 == 0 {
            "/ancestor-or-self::*"
        } else {
            "/descendant-or-self::*"
        });
    }
    q
}

fn engine() -> Engine {
    Engine::staircase().build().expect("valid engine config")
}

#[test]
fn a_50ms_deadline_stops_a_pathological_query_promptly() {
    let session = Session::new(layered_doc(300, 400));
    let query = session
        .prepare(&pathological_query(60))
        .expect("query parses");
    let budget = Arc::new(Budget::new().with_deadline_in(Duration::from_millis(50)));
    let started = Instant::now();
    let out = query.run_governed(engine(), budget);
    let elapsed = started.elapsed();
    assert!(
        matches!(out, Err(Error::DeadlineExceeded)),
        "expected a deadline trip, got {out:?}"
    );
    // Promptness: enforcement is amortized (chunk boundaries, round
    // boundaries), so the stop lands within a small multiple of the
    // deadline — not after the multi-second ungoverned runtime.
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline enforced too late: {elapsed:?}"
    );

    // The session survives the trip: ordinary queries still answer.
    let ok = session.prepare("//q").expect("query parses").run(engine());
    assert_eq!(ok.len(), 300 * 400);
}

#[test]
fn a_cost_budget_trips_at_the_touched_node_ceiling() {
    let session = Session::new(layered_doc(100, 100));
    let query = session
        .prepare(&pathological_query(20))
        .expect("query parses");

    let tight = Arc::new(Budget::new().with_max_touched(2_000));
    let out = query.run_governed(engine(), Arc::clone(&tight));
    assert!(
        matches!(out, Err(Error::BudgetExhausted)),
        "expected a cost trip, got {out:?}"
    );
    assert!(
        tight.touched() >= 2_000,
        "the trip must record the ceiling being reached, saw {}",
        tight.touched()
    );

    // A generous budget changes nothing about the answer.
    let loose = Arc::new(Budget::new().with_max_touched(u64::MAX));
    let governed = query
        .run_governed(engine(), loose)
        .expect("a generous budget must not trip");
    let baseline = query.run(engine());
    assert_eq!(governed.nodes().as_slice(), baseline.nodes().as_slice());
}

#[test]
fn cancellation_from_another_thread_stops_the_query() {
    let session = Session::new(layered_doc(300, 400));
    let query = session
        .prepare(&pathological_query(60))
        .expect("query parses");
    let budget = Arc::new(Budget::new());
    let canceller = {
        let budget = Arc::clone(&budget);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            budget.cancel();
        })
    };
    let started = Instant::now();
    let out = query.run_governed(engine(), budget);
    let elapsed = started.elapsed();
    canceller.join().expect("canceller thread");
    assert!(
        matches!(out, Err(Error::Cancelled)),
        "expected a cancellation, got {out:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "cancellation observed too late: {elapsed:?}"
    );
}

#[test]
fn a_dead_budget_fails_before_any_work() {
    let session = Session::new(layered_doc(10, 10));
    let query = session.prepare("//q").expect("query parses");
    let budget = Arc::new(Budget::new());
    budget.cancel();
    let out = query.run_governed(engine(), Arc::clone(&budget));
    assert!(matches!(out, Err(Error::Cancelled)), "got {out:?}");
    assert_eq!(budget.touched(), 0, "a dead budget must admit no work");
}

#[test]
fn a_tripped_lane_leaves_batch_siblings_identical() {
    let doc = layered_doc(60, 60);
    let exprs = [
        "//q",
        "/descendant::q/ancestor::p",
        "//p[q]",
        // The governed victim: full-plane passes against a 500-node cap.
        "/descendant-or-self::*/ancestor-or-self::*/descendant-or-self::*",
    ];
    for width in [1usize, 2, 4] {
        for engine in [engine(), Engine::auto()] {
            let session = Session::new(doc.clone()).with_threads(width);
            let queries: Vec<_> = exprs
                .iter()
                .map(|e| session.prepare(e).expect("query parses"))
                .collect();
            let refs: Vec<&_> = queries.iter().collect();
            let baseline = session.run_many(&refs, engine);

            let mut budgets: Vec<Option<Arc<Budget>>> = vec![None; exprs.len()];
            budgets[exprs.len() - 1] = Some(Arc::new(Budget::new().with_max_touched(500)));
            let governed = session.run_many_governed(&refs, engine, &budgets);

            assert!(
                matches!(governed.last(), Some(Err(Error::BudgetExhausted))),
                "width {width}: the victim must trip, got {:?}",
                governed.last()
            );
            for (i, (g, b)) in governed.iter().zip(&baseline).enumerate() {
                if i == exprs.len() - 1 {
                    continue;
                }
                let g = g.as_ref().unwrap_or_else(|e| {
                    panic!("width {width}: sibling {i} must complete, got {e}")
                });
                assert_eq!(
                    g.nodes().as_slice(),
                    b.nodes().as_slice(),
                    "width {width}: sibling {i} diverged from the ungoverned run"
                );
            }

            // The pool is still whole: the same batch answers again.
            let again = session.run_many(&refs, engine);
            for (a, b) in again.iter().zip(&baseline) {
                assert_eq!(a.nodes().as_slice(), b.nodes().as_slice());
            }
        }
    }
}

/// An arbitrary small document over the `p`/`q`/`r` vocabulary (the
/// batch suite's generator, reduced).
fn arb_doc() -> impl Strategy<Value = Doc> {
    proptest::collection::vec(0u8..5, 1..200).prop_map(|ops| {
        let tags = ["p", "q", "r"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 3 => {
                    b.open_element(tags[i % tags.len()]);
                    depth += 1;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                2 => {
                    b.text("t");
                }
                _ => {
                    b.comment("c");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

/// Arbitrary multi-step queries spanning staircase, fragment, horiz,
/// and predicate lanes.
fn arb_query() -> impl Strategy<Value = String> {
    let axis = prop_oneof![
        Just("descendant"),
        Just("ancestor"),
        Just("descendant-or-self"),
        Just("child"),
        Just("following"),
    ];
    let test = prop_oneof![Just("p"), Just("q"), Just("r"), Just("*")];
    let pred = prop_oneof![Just(""), Just(""), Just("[p]"), Just("[descendant::q]")];
    proptest::collection::vec((axis, test, pred), 1..4).prop_map(|steps| {
        let mut out = String::new();
        for (axis, test, pred) in steps {
            out.push('/');
            out.push_str(axis);
            out.push_str("::");
            out.push_str(test);
            out.push_str(pred);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The containment property, at arbitrary scan points: wherever a
    /// cost budget trips the first query of a batch — mid-kernel,
    /// between rounds, or never — every sibling lane answers node- and
    /// order-identical to the ungoverned run, at pool widths 1, 2, and
    /// 4, and the session remains fully reusable afterwards.
    #[test]
    fn governed_trips_are_lane_local_and_leave_the_session_reusable(
        (doc, exprs, cap) in (
            arb_doc(),
            proptest::collection::vec(arb_query(), 2..5),
            1u64..3_000,
        )
    ) {
        for width in [1usize, 2, 4] {
            let session = Session::new(doc.clone()).with_threads(width);
            let queries: Vec<_> = exprs
                .iter()
                .map(|e| session.prepare(e).expect("generated query parses"))
                .collect();
            let refs: Vec<&_> = queries.iter().collect();
            let baseline = session.run_many(&refs, Engine::auto());

            let mut budgets: Vec<Option<Arc<Budget>>> = vec![None; refs.len()];
            budgets[0] = Some(Arc::new(Budget::new().with_max_touched(cap)));
            let governed = session.run_many_governed(&refs, Engine::auto(), &budgets);

            for (i, (g, b)) in governed.iter().zip(&baseline).enumerate() {
                match g {
                    Ok(out) => prop_assert_eq!(
                        out.nodes().as_slice(),
                        b.nodes().as_slice(),
                        "width {}: query {} diverged", width, i
                    ),
                    Err(Error::BudgetExhausted) => prop_assert_eq!(
                        i, 0, "width {}: only the governed lane may trip", width
                    ),
                    Err(other) => prop_assert!(
                        false, "width {}: unexpected failure {}", width, other
                    ),
                }
            }

            // Reusability: the same session answers the full batch
            // ungoverned, identically, after any trip.
            let again = session.run_many(&refs, Engine::auto());
            for (a, b) in again.iter().zip(&baseline) {
                prop_assert_eq!(a.nodes().as_slice(), b.nodes().as_slice());
            }
        }
    }
}
