//! Property tests: arbitrary generated trees survive a serialize → parse →
//! serialize round-trip, and parsing never panics on arbitrary input.

use proptest::prelude::*;
use staircase_xml::{Document, NodeId, NodeKind};

/// A recursive tree blueprint we can turn into a [`Document`].
#[derive(Debug, Clone)]
enum Blueprint {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Blueprint>,
    },
    Text(String),
    Comment(String),
}

fn xml_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn text_value() -> impl Strategy<Value = String> {
    // Avoid raw control characters (not representable in XML 1.0) and the
    // "]]>" sequence; everything else must survive escaping.
    "[ -~äöü€]{0,20}".prop_map(|s| s.replace("]]>", "]] >"))
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    let leaf = prop_oneof![
        (
            xml_name(),
            proptest::collection::vec((xml_name(), text_value()), 0..3)
        )
            .prop_map(|(name, attrs)| Blueprint::Element {
                name,
                attrs: dedup(attrs),
                children: vec![]
            }),
        text_value()
            .prop_filter("non-empty text", |t| !t.is_empty())
            .prop_map(Blueprint::Text),
        "[ -~&&[^-]]{0,10}".prop_map(Blueprint::Comment),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        (
            xml_name(),
            proptest::collection::vec((xml_name(), text_value()), 0..3),
            proptest::collection::vec(inner, 0..6),
        )
            .prop_map(|(name, attrs, children)| Blueprint::Element {
                name,
                attrs: dedup(attrs),
                children: merge_adjacent_text(children),
            })
    })
}

fn dedup(attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs
        .into_iter()
        .filter(|(n, _)| seen.insert(n.clone()))
        .collect()
}

/// The tree builder merges adjacent text nodes, so the blueprint must not
/// contain them either or the comparison would differ trivially.
fn merge_adjacent_text(children: Vec<Blueprint>) -> Vec<Blueprint> {
    let mut out: Vec<Blueprint> = Vec::new();
    for c in children {
        if let (Some(Blueprint::Text(prev)), Blueprint::Text(t)) = (out.last_mut(), &c) {
            prev.push_str(t);
            continue;
        }
        out.push(c);
    }
    out
}

fn build(doc: &mut Document, parent: NodeId, bp: &Blueprint) {
    match bp {
        Blueprint::Element {
            name,
            attrs,
            children,
        } => {
            let id = doc.append_element(parent, name, attrs.clone());
            for c in children {
                build(doc, id, c);
            }
        }
        Blueprint::Text(t) => doc.append_text(parent, t),
        Blueprint::Comment(c) => {
            doc.append_child(parent, NodeKind::Comment(c.clone()));
        }
    }
}

fn count_nodes(doc: &Document) -> usize {
    doc.descendants(doc.document_node()).count()
}

proptest! {
    #[test]
    fn roundtrip_preserves_serialization(bp in blueprint()) {
        // Force a root element (documents need exactly one).
        let bp = match bp {
            e @ Blueprint::Element { .. } => e,
            other => Blueprint::Element { name: "root".into(), attrs: vec![], children: vec![other] },
        };
        let mut doc = Document::new();
        let docnode = doc.document_node();
        build(&mut doc, docnode, &bp);
        let xml = doc.to_xml();
        let reparsed = Document::parse(&xml).expect("serialized output must parse");
        prop_assert_eq!(count_nodes(&doc), count_nodes(&reparsed));
        prop_assert_eq!(xml, reparsed.to_xml());
    }

    #[test]
    fn parser_never_panics(input in "[ -~<>&'\"]{0,64}") {
        let _ = Document::parse(&input);
    }

    /// The streaming parse→write pipeline is a fixpoint on serializer
    /// output: canonicalize(x) == x for any serialized document.
    #[test]
    fn canonicalize_fixpoint(bp in blueprint()) {
        let bp = match bp {
            e @ Blueprint::Element { .. } => e,
            other => Blueprint::Element { name: "root".into(), attrs: vec![], children: vec![other] },
        };
        let mut doc = Document::new();
        let docnode = doc.document_node();
        build(&mut doc, docnode, &bp);
        let xml = doc.to_xml();
        let canon = staircase_xml::canonicalize(&xml).expect("serializer output parses");
        prop_assert_eq!(&canon, &xml);
        prop_assert_eq!(staircase_xml::canonicalize(&canon).unwrap(), canon);
    }

    #[test]
    fn parser_never_panics_unicode(input in ".{0,48}") {
        let _ = Document::parse(&input);
    }
}
