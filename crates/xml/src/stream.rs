//! Streaming event writer: the output half of a DOM-free pipeline.
//!
//! [`EventWriter`] consumes [`Event`]s (typically straight from a
//! [`PullParser`]) and produces XML text, checking well-formedness as it
//! goes. Together with the pull parser this gives an identity transform
//! over arbitrarily large documents in constant memory — the shape a
//! database export path needs.

use crate::escape::{escape_attribute, escape_text};
use crate::reader::Event;

/// Errors produced by [`EventWriter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// An `EndTag` without a matching open element.
    UnbalancedEnd,
    /// `finish` called with elements still open.
    UnclosedElements(usize),
    /// An `EndTag` whose name does not match the open element.
    MismatchedEnd {
        /// Name of the innermost open element.
        expected: String,
        /// Name in the end event.
        found: String,
    },
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::UnbalancedEnd => write!(f, "end tag without open element"),
            WriteError::UnclosedElements(n) => write!(f, "{n} element(s) left open"),
            WriteError::MismatchedEnd { expected, found } => {
                write!(f, "end tag </{found}> does not match <{expected}>")
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// Writes a stream of events as XML text.
///
/// ```
/// use staircase_xml::{Event, EventWriter, PullParser};
///
/// let input = "<a x='1'><b>hi</b><!--c--></a>";
/// let mut w = EventWriter::new();
/// let mut p = PullParser::new(input);
/// loop {
///     match p.next_event().unwrap() {
///         Event::Eof => break,
///         ev => w.write(&ev).unwrap(),
///     }
/// }
/// assert_eq!(w.finish().unwrap(), r#"<a x="1"><b>hi</b><!--c--></a>"#);
/// ```
#[derive(Debug, Default)]
pub struct EventWriter {
    out: String,
    stack: Vec<String>,
}

impl EventWriter {
    /// A writer with an empty buffer.
    pub fn new() -> EventWriter {
        EventWriter::default()
    }

    /// Appends one event.
    pub fn write(&mut self, event: &Event<'_>) -> Result<(), WriteError> {
        match event {
            Event::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                self.out.push('<');
                self.out.push_str(name);
                for a in attributes {
                    self.out.push(' ');
                    self.out.push_str(a.name);
                    self.out.push_str("=\"");
                    self.out.push_str(&escape_attribute(&a.value));
                    self.out.push('"');
                }
                if *self_closing {
                    self.out.push_str("/>");
                } else {
                    self.out.push('>');
                    self.stack.push(name.to_string());
                }
            }
            Event::EndTag { name } => match self.stack.pop() {
                None => return Err(WriteError::UnbalancedEnd),
                Some(open) if open != *name => {
                    return Err(WriteError::MismatchedEnd {
                        expected: open,
                        found: name.to_string(),
                    })
                }
                Some(_) => {
                    self.out.push_str("</");
                    self.out.push_str(name);
                    self.out.push('>');
                }
            },
            Event::Text(t) => self.out.push_str(&escape_text(t)),
            Event::CData(t) => {
                self.out.push_str("<![CDATA[");
                self.out.push_str(t);
                self.out.push_str("]]>");
            }
            Event::Comment(c) => {
                self.out.push_str("<!--");
                self.out.push_str(c);
                self.out.push_str("-->");
            }
            Event::ProcessingInstruction { target, data } => {
                self.out.push_str("<?");
                self.out.push_str(target);
                if !data.is_empty() {
                    self.out.push(' ');
                    self.out.push_str(data);
                }
                self.out.push_str("?>");
            }
            Event::Eof => {}
        }
        Ok(())
    }

    /// Finalises the stream, returning the XML text.
    pub fn finish(self) -> Result<String, WriteError> {
        if !self.stack.is_empty() {
            return Err(WriteError::UnclosedElements(self.stack.len()));
        }
        Ok(self.out)
    }

    /// The text produced so far (for incremental flushing).
    pub fn buffer(&self) -> &str {
        &self.out
    }
}

/// Convenience: re-serializes `input` through the parse → write pipeline
/// (an identity transform modulo attribute-quote and entity
/// normalisation).
pub fn canonicalize(input: &str) -> crate::error::Result<String> {
    let mut parser = crate::reader::PullParser::new(input);
    let mut writer = EventWriter::new();
    loop {
        match parser.next_event()? {
            Event::Eof => break,
            ev => writer.write(&ev).expect("parser emits balanced events"),
        }
    }
    Ok(writer.finish().expect("parser emits balanced events"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Attribute;

    #[test]
    fn canonicalize_is_stable() {
        let once = canonicalize("<a x='1'>1 &lt; 2<b/><!--c--><?p d?></a>").unwrap();
        let twice = canonicalize(&once).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once, r#"<a x="1">1 &lt; 2<b/><!--c--><?p d?></a>"#);
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let out = canonicalize("<a><![CDATA[<raw> & markup]]></a>").unwrap();
        assert_eq!(out, "<a><![CDATA[<raw> & markup]]></a>");
        // And it still parses back to the same text content.
        let doc = crate::Document::parse(&out).unwrap();
        assert_eq!(
            doc.text_content(doc.root_element().unwrap()),
            "<raw> & markup"
        );
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut w = EventWriter::new();
        assert_eq!(
            w.write(&Event::EndTag { name: "a" }),
            Err(WriteError::UnbalancedEnd)
        );
    }

    #[test]
    fn mismatched_end_rejected() {
        let mut w = EventWriter::new();
        w.write(&Event::StartTag {
            name: "a",
            attributes: vec![],
            self_closing: false,
        })
        .unwrap();
        let err = w.write(&Event::EndTag { name: "b" }).unwrap_err();
        assert!(matches!(err, WriteError::MismatchedEnd { .. }));
    }

    #[test]
    fn unclosed_elements_rejected_at_finish() {
        let mut w = EventWriter::new();
        w.write(&Event::StartTag {
            name: "a",
            attributes: vec![],
            self_closing: false,
        })
        .unwrap();
        assert_eq!(w.finish(), Err(WriteError::UnclosedElements(1)));
    }

    #[test]
    fn attributes_escaped() {
        let mut w = EventWriter::new();
        w.write(&Event::StartTag {
            name: "a",
            attributes: vec![Attribute {
                name: "x",
                value: "a\"b".into(),
            }],
            self_closing: true,
        })
        .unwrap();
        assert_eq!(w.finish().unwrap(), r#"<a x="a&quot;b"/>"#);
    }

    #[test]
    fn buffer_allows_incremental_reads() {
        let mut w = EventWriter::new();
        w.write(&Event::StartTag {
            name: "a",
            attributes: vec![],
            self_closing: false,
        })
        .unwrap();
        assert_eq!(w.buffer(), "<a>");
        w.write(&Event::EndTag { name: "a" }).unwrap();
        assert_eq!(w.buffer(), "<a></a>");
    }
}
