//! Arena-backed DOM-lite document tree.
//!
//! The tree mirrors the node taxonomy of the paper's Figure 1: inner nodes
//! are non-empty elements; leaves are empty elements, attributes, text,
//! comments, or processing instructions. Attributes are stored on their
//! owning element (they participate in the XPath-accelerator encoding via a
//! special node kind, handled by `staircase-accel`, not here).

use std::fmt;

use crate::error::Result;
use crate::reader::{Event, PullParser};

/// Index of a node inside a [`Document`] arena.
///
/// Node ids are assigned in *document order* (preorder), a property the
/// encoding loader and several tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document node (virtual root; exactly one, id 0).
    Document,
    /// An element with a tag name and attributes in document order.
    Element {
        /// Tag name.
        name: String,
        /// `(name, value)` pairs in document order.
        attributes: Vec<(String, String)>,
    },
    /// A text node (CDATA sections are folded into text).
    Text(String),
    /// A comment node.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// The PI target.
        target: String,
        /// The PI data.
        data: String,
    },
}

struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An in-memory XML document.
///
/// Nodes live in an arena indexed by [`NodeId`]; id 0 is the document node.
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Document {
    /// Creates an empty document (document node only).
    pub fn new() -> Document {
        Document {
            nodes: vec![NodeData {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Parses `input` into a document tree.
    ///
    /// Consecutive text/CDATA events are merged into a single text node, so
    /// the tree has no adjacent text siblings (the XPath data model property
    /// the accelerator assumes).
    pub fn parse(input: &str) -> Result<Document> {
        let mut doc = Document::new();
        let mut parser = PullParser::new(input);
        let mut stack = vec![doc.document_node()];
        loop {
            match parser.next_event()? {
                Event::StartTag {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let attrs = attributes
                        .into_iter()
                        .map(|a| (a.name.to_string(), a.value.into_owned()))
                        .collect();
                    let id = doc.append_element(*stack.last().unwrap(), name, attrs);
                    if !self_closing {
                        stack.push(id);
                    }
                }
                Event::EndTag { .. } => {
                    stack.pop();
                }
                Event::Text(t) => doc.append_text(*stack.last().unwrap(), &t),
                Event::CData(t) => doc.append_text(*stack.last().unwrap(), t),
                Event::Comment(c) => {
                    doc.append_child(*stack.last().unwrap(), NodeKind::Comment(c.to_string()));
                }
                Event::ProcessingInstruction { target, data } => {
                    doc.append_child(
                        *stack.last().unwrap(),
                        NodeKind::Pi {
                            target: target.to_string(),
                            data: data.to_string(),
                        },
                    );
                }
                Event::Eof => break,
            }
        }
        Ok(doc)
    }

    /// The document node (virtual root).
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root *element*, if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.document_node())
            .find(|&c| matches!(self.kind(c), NodeKind::Element { .. }))
    }

    /// Total number of nodes (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the document holds only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The kind of `id`.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.idx()].kind
    }

    /// The element name of `id`, if it is an element.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The attributes of `id` (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> &[(String, String)] {
        match self.kind(id) {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Looks up one attribute value on `id`.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The parent of `id` (`None` for the document node).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.idx()].parent
    }

    /// The children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.idx()].children.iter().copied()
    }

    /// All descendants of `id` in document order (excluding `id`).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: self.nodes[id.idx()]
                .children
                .iter()
                .rev()
                .copied()
                .collect(),
        }
    }

    /// The concatenated text content beneath `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text(t) => out.push_str(t),
            _ => {
                for c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Appends a new element under `parent`; returns its id.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        name: &str,
        attributes: Vec<(String, String)>,
    ) -> NodeId {
        self.append_child(
            parent,
            NodeKind::Element {
                name: name.to_string(),
                attributes,
            },
        )
    }

    /// Appends text under `parent`, merging with a trailing text sibling.
    pub fn append_text(&mut self, parent: NodeId, text: &str) {
        if let Some(&last) = self.nodes[parent.idx()].children.last() {
            if let NodeKind::Text(existing) = &mut self.nodes[last.idx()].kind {
                existing.push_str(text);
                return;
            }
        }
        self.append_child(parent, NodeKind::Text(text.to_string()));
    }

    /// Adds an attribute to an existing element node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn push_attribute(&mut self, id: NodeId, name: &str, value: &str) {
        match &mut self.nodes[id.idx()].kind {
            NodeKind::Element { attributes, .. } => {
                attributes.push((name.to_string(), value.to_string()));
            }
            other => panic!("push_attribute on non-element node {other:?}"),
        }
    }

    /// Appends an arbitrary node under `parent`; returns its id.
    pub fn append_child(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.idx()].children.push(id);
        id
    }

    /// Serializes the document to a string (no pretty-printing).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        crate::writer::write_document(self, &mut out, &crate::writer::WriteOptions::default());
        out
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Document({} nodes)", self.nodes.len())
    }
}

/// Preorder iterator over the descendants of a node.
pub struct Descendants<'d> {
    doc: &'d Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        self.stack
            .extend(self.doc.nodes[id.idx()].children.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_expected_shape() {
        let doc = Document::parse("<a><b>x</b><c y='1'/></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("a"));
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.name(kids[0]), Some("b"));
        assert_eq!(doc.attribute(kids[1], "y"), Some("1"));
        assert_eq!(doc.text_content(root), "x");
    }

    #[test]
    fn node_ids_are_document_order() {
        let doc = Document::parse("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<_> = doc
            .descendants(doc.document_node())
            .filter_map(|n| doc.name(n).map(str::to_string))
            .collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        // Preorder ids are strictly increasing along the iterator.
        let ids: Vec<_> = doc.descendants(doc.document_node()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn adjacent_text_merged() {
        let doc = Document::parse("<a>one<![CDATA[two]]>three</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).count(), 1);
        assert_eq!(doc.text_content(root), "onetwothree");
    }

    #[test]
    fn parent_links() {
        let doc = Document::parse("<a><b><c/></b></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.children(root).next().unwrap();
        let c = doc.children(b).next().unwrap();
        assert_eq!(doc.parent(c), Some(b));
        assert_eq!(doc.parent(b), Some(root));
        assert_eq!(doc.parent(root), Some(doc.document_node()));
        assert_eq!(doc.parent(doc.document_node()), None);
    }

    #[test]
    fn comments_and_pis_kept() {
        let doc = Document::parse("<a><!--c--><?t d?></a>").unwrap();
        let root = doc.root_element().unwrap();
        let kids: Vec<_> = doc.children(root).collect();
        assert!(matches!(doc.kind(kids[0]), NodeKind::Comment(c) if c == "c"));
        assert!(matches!(doc.kind(kids[1]), NodeKind::Pi { target, .. } if target == "t"));
    }

    #[test]
    fn figure_1_document_shape() {
        // The 10-node instance of the paper's Figure 1: a is the root;
        // f is the context node with children g (with h) and i (with j).
        let doc =
            Document::parse("<a><b><c/><d/></b><e><f><g><h/></g><i><j/></i></f></e></a>").unwrap();
        let all: Vec<_> = doc
            .descendants(doc.document_node())
            .filter_map(|n| doc.name(n).map(str::to_string))
            .collect();
        assert_eq!(all, ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
    }

    #[test]
    fn empty_document_helpers() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 1);
        assert!(doc.root_element().is_none());
    }

    #[test]
    fn build_programmatically_and_serialize() {
        let mut doc = Document::new();
        let root = doc.append_element(doc.document_node(), "r", vec![]);
        let child = doc.append_element(root, "c", vec![("k".into(), "v".into())]);
        doc.append_text(child, "body");
        assert_eq!(doc.to_xml(), r#"<r><c k="v">body</c></r>"#);
    }
}
