//! Parse errors with positional information.

use std::fmt;

/// A line/column position inside the input text (1-based, columns in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextPos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
}

impl TextPos {
    /// Computes the position of byte `offset` inside `input`.
    pub fn from_offset(input: &str, offset: usize) -> TextPos {
        let offset = offset.min(input.len());
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, b) in input.as_bytes()[..offset].iter().enumerate() {
            if *b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        TextPos {
            line,
            col: (offset - line_start) as u32 + 1,
        }
    }
}

impl fmt::Display for TextPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced while parsing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended in the middle of a construct.
    UnexpectedEof(TextPos),
    /// A byte that cannot start or continue the current construct.
    UnexpectedToken {
        /// What the parser was trying to read.
        expected: &'static str,
        /// Where it failed.
        pos: TextPos,
    },
    /// An element name, attribute name, or PI target is not a valid XML name.
    InvalidName(TextPos),
    /// A closing tag does not match the innermost open tag.
    MismatchedTag {
        /// The name of the currently open element.
        expected: String,
        /// The name found in the closing tag.
        found: String,
        /// Where the closing tag starts.
        pos: TextPos,
    },
    /// A closing tag with no corresponding open tag.
    UnexpectedClosingTag(TextPos),
    /// The document ended with unclosed elements.
    UnclosedElements(TextPos),
    /// More than one top-level element, or content outside the root.
    ExtraRootContent(TextPos),
    /// The document contains no root element.
    NoRootElement,
    /// An attribute appears twice on the same element.
    DuplicateAttribute {
        /// The attribute name.
        name: String,
        /// Where the duplicate occurrence starts.
        pos: TextPos,
    },
    /// An unknown or malformed entity/character reference.
    InvalidReference(TextPos),
    /// `--` inside a comment, or other malformed comment.
    MalformedComment(TextPos),
    /// `]]>` appearing literally in character data.
    CdataCloseInText(TextPos),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof(p) => write!(f, "unexpected end of input at {p}"),
            Error::UnexpectedToken { expected, pos } => {
                write!(f, "expected {expected} at {pos}")
            }
            Error::InvalidName(p) => write!(f, "invalid XML name at {p}"),
            Error::MismatchedTag {
                expected,
                found,
                pos,
            } => write!(
                f,
                "closing tag </{found}> at {pos} does not match open element <{expected}>"
            ),
            Error::UnexpectedClosingTag(p) => write!(f, "closing tag without open element at {p}"),
            Error::UnclosedElements(p) => write!(f, "input ended with unclosed elements at {p}"),
            Error::ExtraRootContent(p) => write!(f, "content after document root at {p}"),
            Error::NoRootElement => write!(f, "document has no root element"),
            Error::DuplicateAttribute { name, pos } => {
                write!(f, "duplicate attribute '{name}' at {pos}")
            }
            Error::InvalidReference(p) => write!(f, "invalid entity or character reference at {p}"),
            Error::MalformedComment(p) => write!(f, "malformed comment at {p}"),
            Error::CdataCloseInText(p) => write!(f, "']]>' not allowed in character data at {p}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_first_line() {
        assert_eq!(TextPos::from_offset("abc", 0), TextPos { line: 1, col: 1 });
        assert_eq!(TextPos::from_offset("abc", 2), TextPos { line: 1, col: 3 });
    }

    #[test]
    fn pos_after_newlines() {
        let s = "ab\ncd\nef";
        assert_eq!(TextPos::from_offset(s, 3), TextPos { line: 2, col: 1 });
        assert_eq!(TextPos::from_offset(s, 7), TextPos { line: 3, col: 2 });
    }

    #[test]
    fn pos_clamps_to_len() {
        assert_eq!(TextPos::from_offset("a", 99), TextPos { line: 1, col: 2 });
    }

    #[test]
    fn display_formats() {
        let e = Error::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
            pos: TextPos { line: 2, col: 5 },
        };
        assert!(e.to_string().contains("</b>"));
        assert!(e.to_string().contains("2:5"));
    }
}
