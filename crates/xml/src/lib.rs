//! # staircase-xml
//!
//! A from-scratch XML 1.0 subset parser, document tree, and serializer.
//!
//! This crate is the XML substrate of the staircase-join reproduction
//! (Grust, van Keulen, Teubner: *Staircase Join*, VLDB 2003). The paper
//! stores XML documents inside a relational engine using the XPath
//! accelerator encoding; this crate supplies the document side of that
//! pipeline:
//!
//! * [`PullParser`] — a streaming (SAX-style) pull parser producing
//!   [`Event`]s. The accelerator loader consumes events directly, so
//!   multi-million-node documents never materialise a DOM.
//! * [`Document`] / [`NodeId`] — an arena-backed DOM-lite tree for tests,
//!   examples, and small-document round-trips.
//! * [`write_document`] — a serializer with correct escaping.
//!
//! ## Supported XML subset
//!
//! Elements, attributes, text, CDATA sections, comments, processing
//! instructions, the XML declaration, numeric and the five predefined
//! entity references. `DOCTYPE` declarations are recognised and skipped
//! (including bracketed internal subsets); custom entities are not
//! expanded. Namespaces are treated lexically (prefixes are part of the
//! name), matching the paper's treatment of tag names as opaque strings.
//!
//! ## Example
//!
//! ```
//! use staircase_xml::Document;
//!
//! let doc = Document::parse("<a><b>hi</b><c x='1'/></a>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.name(root), Some("a"));
//! assert_eq!(doc.children(root).count(), 2);
//! ```

#![warn(missing_docs)]

mod error;
mod escape;
mod reader;
mod stream;
mod tree;
mod writer;

pub use error::{Error, Result, TextPos};
pub use escape::{escape_attribute, escape_text, unescape};
pub use reader::{Attribute, Event, PullParser};
pub use stream::{canonicalize, EventWriter, WriteError};
pub use tree::{Document, NodeId, NodeKind};
pub use writer::{write_document, write_node, WriteOptions};
