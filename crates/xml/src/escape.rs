//! Entity escaping and unescaping for text and attribute values.

use std::borrow::Cow;

use crate::error::{Error, Result, TextPos};

/// Escapes `<`, `>` and `&` for use in element text content.
///
/// Returns a borrowed slice when no escaping is needed (the common case for
/// generated documents), avoiding an allocation per text node.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, |b| matches!(b, b'<' | b'>' | b'&'))
}

/// Escapes `<`, `>`, `&`, `"` and `'` for use in attribute values.
pub fn escape_attribute(text: &str) -> Cow<'_, str> {
    escape_with(text, |b| matches!(b, b'<' | b'>' | b'&' | b'"' | b'\''))
}

fn escape_with(text: &str, needs: impl Fn(u8) -> bool) -> Cow<'_, str> {
    let bytes = text.as_bytes();
    let Some(first) = bytes.iter().position(|&b| needs(b)) else {
        return Cow::Borrowed(text);
    };
    let mut out = String::with_capacity(text.len() + 8);
    out.push_str(&text[..first]);
    for &b in &bytes[first..] {
        match b {
            b'<' => out.push_str("&lt;"),
            b'>' => out.push_str("&gt;"),
            b'&' => out.push_str("&amp;"),
            b'"' if needs(b'"') => out.push_str("&quot;"),
            b'\'' if needs(b'\'') => out.push_str("&apos;"),
            _ => out.push(b as char),
        }
    }
    // Re-append multi-byte UTF-8 correctly: the loop above pushed raw bytes
    // as chars, which is wrong for non-ASCII. Redo properly when non-ASCII
    // content is present.
    if text.is_ascii() {
        Cow::Owned(out)
    } else {
        let mut out = String::with_capacity(text.len() + 8);
        for c in text.chars() {
            match c {
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '&' => out.push_str("&amp;"),
                '"' if needs(b'"') => out.push_str("&quot;"),
                '\'' if needs(b'\'') => out.push_str("&apos;"),
                _ => out.push(c),
            }
        }
        Cow::Owned(out)
    }
}

/// Expands the five predefined entities and numeric character references.
///
/// `input` is the raw slice between markup; `base` is its byte offset inside
/// the whole document and `doc` the whole document text (both used only for
/// error positions). Returns a borrowed slice when the input contains no
/// references.
pub fn unescape<'a>(input: &'a str, doc: &str, base: usize) -> Result<Cow<'a, str>> {
    if !input.contains('&') {
        return Ok(Cow::Borrowed(input));
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the longest reference-free run in one go.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&input[start..i]);
            continue;
        }
        let semi = input[i..]
            .find(';')
            .ok_or(Error::InvalidReference(TextPos::from_offset(doc, base + i)))?;
        let entity = &input[i + 1..i + semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let err = || Error::InvalidReference(TextPos::from_offset(doc, base + i));
                let code = if let Some(hex) = entity.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).map_err(|_| err())?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().map_err(|_| err())?
                } else {
                    return Err(err());
                };
                out.push(char::from_u32(code).ok_or_else(err)?);
            }
        }
        i += semi + 1;
    }
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_passthrough_borrows() {
        assert!(matches!(escape_text("plain text"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escape_text_leaves_quotes() {
        assert_eq!(escape_text(r#"say "hi"'s"#), r#"say "hi"'s"#);
    }

    #[test]
    fn escape_attribute_quotes() {
        assert_eq!(escape_attribute(r#"a"b'c"#), "a&quot;b&apos;c");
    }

    #[test]
    fn escape_non_ascii() {
        assert_eq!(escape_text("töst<"), "töst&lt;");
        assert_eq!(escape_attribute("ö\"ö"), "ö&quot;ö");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        assert!(matches!(
            unescape("hello", "hello", 0).unwrap(),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;&gt;&amp;&quot;&apos;", "", 0).unwrap(),
            "<>&\"'"
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;", "", 0).unwrap(), "AB");
        assert_eq!(unescape("&#x1F600;", "", 0).unwrap(), "\u{1F600}");
    }

    #[test]
    fn unescape_rejects_unknown() {
        assert!(unescape("&nope;", "&nope;", 0).is_err());
        assert!(unescape("&#xZZ;", "&#xZZ;", 0).is_err());
        assert!(unescape("& unterminated", "& unterminated", 0).is_err());
        assert!(unescape("&#x110000;", "&#x110000;", 0).is_err());
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let original = r#"x < y && z > "w" 'v'"#;
        let escaped = escape_attribute(original);
        assert_eq!(unescape(&escaped, &escaped, 0).unwrap(), original);
    }
}
