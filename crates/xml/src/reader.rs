//! Streaming pull parser for the supported XML subset.
//!
//! The parser borrows from the input string and produces [`Event`]s one at a
//! time. It performs well-formedness checking (tag balance, attribute
//! uniqueness, single root) so downstream consumers — in particular the
//! XPath-accelerator loader — can trust the event stream blindly.

use std::borrow::Cow;

use crate::error::{Error, Result, TextPos};
use crate::escape::unescape;

/// A single attribute of a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name, exactly as written (prefixes included).
    pub name: &'a str,
    /// Attribute value with entity references expanded.
    pub value: Cow<'a, str>,
}

/// A parse event produced by [`PullParser::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<name attr="v">` or `<name/>` (see `self_closing`).
    StartTag {
        /// The element name.
        name: &'a str,
        /// Attributes in document order.
        attributes: Vec<Attribute<'a>>,
        /// `true` for `<name/>`; no matching [`Event::EndTag`] follows.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// The element name.
        name: &'a str,
    },
    /// Character data between tags, entities expanded. Whitespace-only runs
    /// between markup are reported too; callers that follow the paper's model
    /// (text nodes are leaves) may filter them.
    Text(Cow<'a, str>),
    /// `<![CDATA[ ... ]]>` content, verbatim.
    CData(&'a str),
    /// `<!-- ... -->` content, verbatim.
    Comment(&'a str),
    /// `<?target data?>`.
    ProcessingInstruction {
        /// The PI target.
        target: &'a str,
        /// Everything between the target and `?>`, trimmed of leading space.
        data: &'a str,
    },
    /// End of the document. Returned exactly once; the parser is exhausted.
    Eof,
}

/// A streaming XML pull parser over a `&str` input.
///
/// ```
/// use staircase_xml::{Event, PullParser};
///
/// let mut p = PullParser::new("<r><a/>text</r>");
/// assert!(matches!(p.next_event().unwrap(), Event::StartTag { name: "r", .. }));
/// assert!(matches!(p.next_event().unwrap(), Event::StartTag { name: "a", self_closing: true, .. }));
/// assert!(matches!(p.next_event().unwrap(), Event::Text(t) if t == "text"));
/// assert!(matches!(p.next_event().unwrap(), Event::EndTag { name: "r" }));
/// assert!(matches!(p.next_event().unwrap(), Event::Eof));
/// ```
pub struct PullParser<'a> {
    input: &'a str,
    pos: usize,
    /// Byte ranges of the names of currently open elements.
    stack: Vec<(usize, usize)>,
    seen_root: bool,
    done: bool,
}

impl<'a> PullParser<'a> {
    /// Creates a parser over `input`. An XML declaration and a `DOCTYPE`
    /// are consumed silently if present.
    pub fn new(input: &'a str) -> PullParser<'a> {
        PullParser {
            input,
            pos: 0,
            stack: Vec::new(),
            seen_root: false,
            done: false,
        }
    }

    /// Current byte offset into the input (useful for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err_pos(&self, offset: usize) -> TextPos {
        TextPos::from_offset(self.input, offset)
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        let b = self.bytes();
        while self.pos < b.len() && b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &'static str) -> Result<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(Error::UnexpectedToken {
                expected: s,
                pos: self.err_pos(self.pos),
            })
        }
    }

    /// Reads an XML name starting at the current position.
    fn read_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let b = self.bytes();
        if start >= b.len() || !is_name_start(self.input[start..].chars().next().unwrap_or('\0')) {
            return Err(Error::InvalidName(self.err_pos(start)));
        }
        let rest = &self.input[start..];
        let mut end = start;
        for c in rest.chars() {
            if (end == start && is_name_start(c)) || (end > start && is_name_char(c)) {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        self.pos = end;
        Ok(&self.input[start..end])
    }

    /// Returns the next event, or an error on malformed input. After
    /// [`Event::Eof`] every subsequent call returns `Eof` again.
    pub fn next_event(&mut self) -> Result<Event<'a>> {
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(Error::UnclosedElements(self.err_pos(self.pos)));
                }
                if !self.seen_root && !self.done {
                    return Err(Error::NoRootElement);
                }
                self.done = true;
                return Ok(Event::Eof);
            }
            if self.peek() == Some(b'<') {
                let next = self.bytes().get(self.pos + 1).copied();
                match next {
                    Some(b'?') => {
                        let ev = self.parse_pi()?;
                        // The XML declaration is swallowed; real PIs surface.
                        if let Some(ev) = ev {
                            return Ok(ev);
                        }
                    }
                    Some(b'!') => {
                        if self.starts_with("<!--") {
                            return self.parse_comment();
                        } else if self.starts_with("<![CDATA[") {
                            return self.parse_cdata();
                        } else if self.starts_with("<!DOCTYPE") {
                            self.skip_doctype()?;
                        } else {
                            return Err(Error::UnexpectedToken {
                                expected: "comment, CDATA, or DOCTYPE",
                                pos: self.err_pos(self.pos),
                            });
                        }
                    }
                    Some(b'/') => return self.parse_end_tag(),
                    _ => return self.parse_start_tag(),
                }
            } else {
                let ev = self.parse_text()?;
                if let Some(ev) = ev {
                    return Ok(ev);
                }
                // Whitespace outside the root: loop for the next construct.
            }
        }
    }

    fn parse_text(&mut self) -> Result<Option<Event<'a>>> {
        let start = self.pos;
        let b = self.bytes();
        let mut i = self.pos;
        while i < b.len() && b[i] != b'<' {
            if b[i] == b']' && self.input[i..].starts_with("]]>") {
                return Err(Error::CdataCloseInText(self.err_pos(i)));
            }
            i += 1;
        }
        self.pos = i;
        let raw = &self.input[start..i];
        if self.stack.is_empty() {
            // Outside the root only whitespace is allowed.
            if raw.bytes().all(|c| c.is_ascii_whitespace()) {
                return Ok(None);
            }
            return Err(Error::ExtraRootContent(self.err_pos(start)));
        }
        let text = unescape(raw, self.input, start)?;
        Ok(Some(Event::Text(text)))
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>> {
        let tag_start = self.pos;
        self.expect("<")?;
        let name_start = self.pos;
        let name = self.read_name()?;
        let name_end = self.pos;
        let mut attributes = Vec::new();
        loop {
            let before = self.pos;
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    if self.stack.is_empty() {
                        if self.seen_root {
                            return Err(Error::ExtraRootContent(self.err_pos(tag_start)));
                        }
                        self.seen_root = true;
                    }
                    self.stack.push((name_start, name_end));
                    return Ok(Event::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    if self.stack.is_empty() {
                        if self.seen_root {
                            return Err(Error::ExtraRootContent(self.err_pos(tag_start)));
                        }
                        self.seen_root = true;
                    }
                    return Ok(Event::StartTag {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    if self.pos == before {
                        return Err(Error::UnexpectedToken {
                            expected: "whitespace before attribute",
                            pos: self.err_pos(self.pos),
                        });
                    }
                    let attr = self.parse_attribute()?;
                    if attributes
                        .iter()
                        .any(|a: &Attribute<'_>| a.name == attr.name)
                    {
                        return Err(Error::DuplicateAttribute {
                            name: attr.name.to_string(),
                            pos: self.err_pos(before),
                        });
                    }
                    attributes.push(attr);
                }
                None => return Err(Error::UnexpectedEof(self.err_pos(self.pos))),
            }
        }
    }

    fn parse_attribute(&mut self) -> Result<Attribute<'a>> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(Error::UnexpectedToken {
                    expected: "quoted attribute value",
                    pos: self.err_pos(self.pos),
                })
            }
        };
        self.pos += 1;
        let val_start = self.pos;
        let b = self.bytes();
        let mut i = self.pos;
        while i < b.len() && b[i] != quote {
            if b[i] == b'<' {
                return Err(Error::UnexpectedToken {
                    expected: "attribute value without '<'",
                    pos: self.err_pos(i),
                });
            }
            i += 1;
        }
        if i >= b.len() {
            return Err(Error::UnexpectedEof(self.err_pos(i)));
        }
        let raw = &self.input[val_start..i];
        self.pos = i + 1;
        let value = unescape(raw, self.input, val_start)?;
        Ok(Attribute { name, value })
    }

    fn parse_end_tag(&mut self) -> Result<Event<'a>> {
        let tag_start = self.pos;
        self.expect("</")?;
        let name = self.read_name()?;
        self.skip_whitespace();
        self.expect(">")?;
        match self.stack.pop() {
            Some((s, e)) => {
                let open = &self.input[s..e];
                if open != name {
                    return Err(Error::MismatchedTag {
                        expected: open.to_string(),
                        found: name.to_string(),
                        pos: self.err_pos(tag_start),
                    });
                }
            }
            None => return Err(Error::UnexpectedClosingTag(self.err_pos(tag_start))),
        }
        Ok(Event::EndTag { name })
    }

    fn parse_comment(&mut self) -> Result<Event<'a>> {
        let start = self.pos;
        self.expect("<!--")?;
        let body_start = self.pos;
        match self.input[self.pos..].find("--") {
            Some(rel) => {
                let dashes = self.pos + rel;
                if !self.input[dashes..].starts_with("-->") {
                    return Err(Error::MalformedComment(self.err_pos(dashes)));
                }
                self.pos = dashes + 3;
                Ok(Event::Comment(&self.input[body_start..dashes]))
            }
            None => Err(Error::UnexpectedEof(self.err_pos(start))),
        }
    }

    fn parse_cdata(&mut self) -> Result<Event<'a>> {
        let start = self.pos;
        self.expect("<![CDATA[")?;
        let body_start = self.pos;
        match self.input[self.pos..].find("]]>") {
            Some(rel) => {
                let end = self.pos + rel;
                self.pos = end + 3;
                if self.stack.is_empty() {
                    return Err(Error::ExtraRootContent(self.err_pos(start)));
                }
                Ok(Event::CData(&self.input[body_start..end]))
            }
            None => Err(Error::UnexpectedEof(self.err_pos(start))),
        }
    }

    /// Parses `<?...?>`; returns `None` for the XML declaration.
    fn parse_pi(&mut self) -> Result<Option<Event<'a>>> {
        let start = self.pos;
        self.expect("<?")?;
        let target = self.read_name()?;
        let data_start = self.pos;
        match self.input[self.pos..].find("?>") {
            Some(rel) => {
                let end = self.pos + rel;
                self.pos = end + 2; // consume "?>"
                let data = self.input[data_start..end].trim_start();
                if target.eq_ignore_ascii_case("xml") {
                    if start != 0 {
                        return Err(Error::UnexpectedToken {
                            expected: "XML declaration only at document start",
                            pos: self.err_pos(start),
                        });
                    }
                    return Ok(None);
                }
                Ok(Some(Event::ProcessingInstruction { target, data }))
            }
            None => Err(Error::UnexpectedEof(self.err_pos(start))),
        }
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<()> {
        let start = self.pos;
        self.expect("<!DOCTYPE")?;
        let b = self.bytes();
        let mut depth = 0i32;
        let mut in_subset = false;
        while self.pos < b.len() {
            match b[self.pos] {
                b'[' => {
                    in_subset = true;
                    depth += 1;
                }
                b']' => depth -= 1,
                b'>' if !in_subset || depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(Error::UnexpectedEof(self.err_pos(start)))
    }
}

/// Iterator adapter: yields events until `Eof` (exclusive) or the first error.
impl<'a> Iterator for PullParser<'a> {
    type Item = Result<Event<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_event() {
            Ok(Event::Eof) => None,
            Ok(ev) => Some(Ok(ev)),
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// `true` if `c` may start an XML name (simplified XML 1.0 classes).
pub(crate) fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic()
        || c == '_'
        || c == ':'
        || ('\u{C0}'..='\u{2FF}').contains(&c)
        || ('\u{370}'..='\u{1FFF}').contains(&c)
        || ('\u{2C00}'..='\u{D7FF}').contains(&c)
        || c > '\u{F8FF}'
}

/// `true` if `c` may continue an XML name.
pub(crate) fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.' || c == '\u{B7}'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event<'_>> {
        PullParser::new(input).collect::<Result<Vec<_>>>().unwrap()
    }

    fn parse_err(input: &str) -> Error {
        PullParser::new(input)
            .collect::<Result<Vec<_>>>()
            .expect_err("expected parse failure")
    }

    #[test]
    fn minimal_document() {
        let ev = events("<a/>");
        assert_eq!(ev.len(), 1);
        assert!(matches!(
            &ev[0],
            Event::StartTag {
                name: "a",
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn nested_elements_and_text() {
        let ev = events("<a><b>hi</b></a>");
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[2], Event::Text(t) if t == "hi"));
    }

    #[test]
    fn attributes_parsed_in_order() {
        let ev = events(r#"<a x="1" y='2'/>"#);
        let Event::StartTag { attributes, .. } = &ev[0] else {
            panic!()
        };
        assert_eq!(attributes.len(), 2);
        assert_eq!(attributes[0].name, "x");
        assert_eq!(attributes[0].value, "1");
        assert_eq!(attributes[1].name, "y");
        assert_eq!(attributes[1].value, "2");
    }

    #[test]
    fn attribute_entities_expanded() {
        let ev = events(r#"<a x="a&amp;b&#33;"/>"#);
        let Event::StartTag { attributes, .. } = &ev[0] else {
            panic!()
        };
        assert_eq!(attributes[0].value, "a&b!");
    }

    #[test]
    fn text_entities_expanded() {
        let ev = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert!(matches!(&ev[1], Event::Text(t) if t == "1 < 2 && 3 > 2"));
    }

    #[test]
    fn comment_and_pi() {
        let ev = events("<a><!-- note --><?php echo ?></a>");
        assert!(matches!(&ev[1], Event::Comment(" note ")));
        assert!(
            matches!(&ev[2], Event::ProcessingInstruction { target: "php", data } if *data == "echo ")
        );
    }

    #[test]
    fn cdata_verbatim() {
        let ev = events("<a><![CDATA[<not> & markup]]></a>");
        assert!(matches!(&ev[1], Event::CData("<not> & markup")));
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let ev = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE site SYSTEM \"auction.dtd\">\n<site/>");
        assert_eq!(ev.len(), 1);
        assert!(matches!(&ev[0], Event::StartTag { name: "site", .. }));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let ev = events("<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r/>");
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn mismatched_tag_reported() {
        assert!(matches!(
            parse_err("<a><b></a></b>"),
            Error::MismatchedTag { .. }
        ));
    }

    #[test]
    fn unclosed_elements_reported() {
        assert!(matches!(parse_err("<a><b>"), Error::UnclosedElements(_)));
    }

    #[test]
    fn stray_end_tag_reported() {
        assert!(matches!(
            parse_err("<a/></a>"),
            Error::UnexpectedClosingTag(_) | Error::ExtraRootContent(_)
        ));
    }

    #[test]
    fn two_roots_rejected() {
        assert!(matches!(parse_err("<a/><b/>"), Error::ExtraRootContent(_)));
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(matches!(parse_err("<a/>junk"), Error::ExtraRootContent(_)));
    }

    #[test]
    fn whitespace_outside_root_ok() {
        assert_eq!(events("  <a/>\n ").len(), 1);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse_err(""), Error::NoRootElement));
        assert!(matches!(parse_err("   \n"), Error::NoRootElement));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(
            parse_err("<a x='1' x='2'/>"),
            Error::DuplicateAttribute { .. }
        ));
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(matches!(
            parse_err("<a>&unknown;</a>"),
            Error::InvalidReference(_)
        ));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        assert!(matches!(
            parse_err("<a><!-- x -- y --></a>"),
            Error::MalformedComment(_)
        ));
    }

    #[test]
    fn cdata_close_in_text_rejected() {
        assert!(matches!(
            parse_err("<a>oops ]]> here</a>"),
            Error::CdataCloseInText(_)
        ));
    }

    #[test]
    fn unicode_names_accepted() {
        let ev = events("<données étiquette='ü'/>");
        assert!(matches!(
            &ev[0],
            Event::StartTag {
                name: "données",
                ..
            }
        ));
    }

    #[test]
    fn depth_tracking() {
        let mut p = PullParser::new("<a><b/></a>");
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1); // self-closing does not change depth
        p.next_event().unwrap();
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn attribute_value_with_angle_rejected() {
        assert!(matches!(
            parse_err("<a x='<'/>"),
            Error::UnexpectedToken { .. }
        ));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut it = PullParser::new("<a><b></a>");
        let mut saw_err = false;
        for ev in &mut it {
            if ev.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
    }
}
