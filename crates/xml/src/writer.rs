//! Serialization of [`Document`] trees back to XML text.

use crate::escape::{escape_attribute, escape_text};
use crate::tree::{Document, NodeId, NodeKind};

/// Options controlling serialization.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
    /// Indent width for pretty-printing; `None` emits compact output.
    ///
    /// Pretty-printing inserts whitespace between markup and is therefore
    /// only loss-free for documents without mixed content.
    pub indent: Option<usize>,
    /// Collapse childless elements to `<e/>`.
    pub self_close_empty: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            declaration: false,
            indent: None,
            self_close_empty: true,
        }
    }
}

/// Serializes a whole document into `out`.
pub fn write_document(doc: &Document, out: &mut String, opts: &WriteOptions) {
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    for child in doc.children(doc.document_node()) {
        write_node_at(doc, child, out, opts, 0);
    }
    if opts.indent.is_some() && !out.ends_with('\n') {
        out.push('\n');
    }
}

/// Serializes the subtree rooted at `id` into `out`.
pub fn write_node(doc: &Document, id: NodeId, out: &mut String, opts: &WriteOptions) {
    write_node_at(doc, id, out, opts, 0);
}

fn write_node_at(doc: &Document, id: NodeId, out: &mut String, opts: &WriteOptions, depth: usize) {
    let indent = |out: &mut String, depth: usize| {
        if let Some(w) = opts.indent {
            if !out.is_empty() {
                out.push('\n');
            }
            for _ in 0..depth * w {
                out.push(' ');
            }
        }
    };
    match doc.kind(id) {
        NodeKind::Document => {
            for c in doc.children(id) {
                write_node_at(doc, c, out, opts, depth);
            }
        }
        NodeKind::Element { name, attributes } => {
            indent(out, depth);
            out.push('<');
            out.push_str(name);
            for (k, v) in attributes {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attribute(v));
                out.push('"');
            }
            let mut children = doc.children(id).peekable();
            if children.peek().is_none() && opts.self_close_empty {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let only_text = doc
                .children(id)
                .all(|c| matches!(doc.kind(c), NodeKind::Text(_)));
            for c in children {
                if only_text {
                    // Keep text inline even when pretty-printing.
                    if let NodeKind::Text(t) = doc.kind(c) {
                        out.push_str(&escape_text(t));
                    }
                } else {
                    write_node_at(doc, c, out, opts, depth + 1);
                }
            }
            if !only_text {
                indent(out, depth);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(t) => {
            out.push_str(&escape_text(t));
        }
        NodeKind::Comment(c) => {
            indent(out, depth);
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Pi { target, data } => {
            indent(out, depth);
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &str) -> String {
        Document::parse(input).unwrap().to_xml()
    }

    #[test]
    fn compact_roundtrip() {
        assert_eq!(roundtrip("<a><b>x</b><c/></a>"), "<a><b>x</b><c/></a>");
    }

    #[test]
    fn attributes_escaped() {
        let doc = Document::parse(r#"<a x="a&amp;b"/>"#).unwrap();
        assert_eq!(doc.to_xml(), r#"<a x="a&amp;b"/>"#);
    }

    #[test]
    fn text_escaped() {
        assert_eq!(roundtrip("<a>1 &lt; 2</a>"), "<a>1 &lt; 2</a>");
    }

    #[test]
    fn declaration_emitted() {
        let doc = Document::parse("<a/>").unwrap();
        let mut out = String::new();
        write_document(
            &doc,
            &mut out,
            &WriteOptions {
                declaration: true,
                ..WriteOptions::default()
            },
        );
        assert!(out.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn pretty_print_indents() {
        let doc = Document::parse("<a><b><c/></b></a>").unwrap();
        let mut out = String::new();
        write_document(
            &doc,
            &mut out,
            &WriteOptions {
                indent: Some(2),
                ..WriteOptions::default()
            },
        );
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn pretty_print_keeps_text_inline() {
        let doc = Document::parse("<a><b>hello</b></a>").unwrap();
        let mut out = String::new();
        write_document(
            &doc,
            &mut out,
            &WriteOptions {
                indent: Some(2),
                ..WriteOptions::default()
            },
        );
        assert_eq!(out, "<a>\n  <b>hello</b>\n</a>\n");
    }

    #[test]
    fn no_self_close_option() {
        let doc = Document::parse("<a/>").unwrap();
        let mut out = String::new();
        write_document(
            &doc,
            &mut out,
            &WriteOptions {
                self_close_empty: false,
                ..WriteOptions::default()
            },
        );
        assert_eq!(out, "<a></a>");
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        assert_eq!(
            roundtrip("<a><!--hey--><?pi data?></a>"),
            "<a><!--hey--><?pi data?></a>"
        );
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let input =
            r#"<site><people><person id="p0"><name>A &amp; B</name></person></people></site>"#;
        let once = roundtrip(input);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}
