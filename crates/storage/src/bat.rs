//! Binary association tables (BATs) with a void head.

use crate::column::VoidColumn;

/// A binary association table whose head is a [`VoidColumn`] and whose tail
/// is a dense, typed column.
///
/// This is the storage shape of every column of the paper's `doc` table:
/// `pre` (head, virtual) against `post`/`level`/`kind`/`tag` (tail). All
/// accesses by head value are positional; sequential scans over the tail
/// read a contiguous `&[T]`, the access pattern §4.3 depends on for its
/// bandwidth analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bat<T> {
    head: VoidColumn,
    tail: Vec<T>,
}

impl<T: Copy> Bat<T> {
    /// Builds a BAT from a tail column; head values start at `seq`.
    pub fn from_tail(seq: u32, tail: Vec<T>) -> Bat<T> {
        assert!(tail.len() <= u32::MAX as usize, "BAT exceeds 2^32 rows");
        Bat {
            head: VoidColumn::new(seq, tail.len() as u32),
            tail,
        }
    }

    /// An empty BAT with head sequence starting at `seq`.
    pub fn new(seq: u32) -> Bat<T> {
        Bat::from_tail(seq, Vec::new())
    }

    /// Pre-allocates an empty BAT expecting `capacity` rows.
    pub fn with_capacity(seq: u32, capacity: usize) -> Bat<T> {
        Bat {
            head: VoidColumn::new(seq, 0),
            tail: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// `true` when the BAT holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// The head column.
    #[inline]
    pub fn head(&self) -> VoidColumn {
        self.head
    }

    /// The tail column as a contiguous slice.
    #[inline]
    pub fn tail(&self) -> &[T] {
        &self.tail
    }

    /// Tail value at `position`.
    #[inline]
    pub fn tail_at(&self, position: usize) -> T {
        self.tail[position]
    }

    /// Tail value for head value `head` (positional lookup), `None` if the
    /// head value is outside the sequence.
    #[inline]
    pub fn lookup(&self, head: u32) -> Option<T> {
        self.head.position_of(head).map(|p| self.tail[p])
    }

    /// Appends a row; the head value is implicit.
    #[inline]
    pub fn append(&mut self, value: T) {
        self.tail.push(value);
        self.head = VoidColumn::new(self.head.seq(), self.tail.len() as u32);
    }

    /// Iterates `(head, tail)` pairs in head order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.head.iter().zip(self.tail.iter().copied())
    }

    /// A sub-slice of the tail for head range `[from, to)` (clamped).
    pub fn slice(&self, from: u32, to: u32) -> &[T] {
        let lo = self.head.position_of(from).unwrap_or_else(|| {
            if from < self.head.seq() {
                0
            } else {
                self.len()
            }
        });
        let hi = if to <= from {
            lo
        } else {
            self.head
                .position_of(to.saturating_sub(1))
                .map(|p| p + 1)
                .unwrap_or_else(|| if to <= self.head.seq() { 0 } else { self.len() })
        };
        &self.tail[lo.min(self.len())..hi.min(self.len()).max(lo.min(self.len()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let bat = Bat::from_tail(0, vec![9u32, 1, 0, 2, 8]);
        assert_eq!(bat.len(), 5);
        assert_eq!(bat.lookup(0), Some(9));
        assert_eq!(bat.lookup(4), Some(8));
        assert_eq!(bat.lookup(5), None);
    }

    #[test]
    fn nonzero_seq_lookup() {
        let bat = Bat::from_tail(100, vec![7u32, 8]);
        assert_eq!(bat.lookup(100), Some(7));
        assert_eq!(bat.lookup(101), Some(8));
        assert_eq!(bat.lookup(0), None);
    }

    #[test]
    fn append_extends_head() {
        let mut bat = Bat::<u32>::new(5);
        bat.append(42);
        bat.append(43);
        assert_eq!(bat.len(), 2);
        assert_eq!(bat.lookup(6), Some(43));
        assert_eq!(bat.head().len(), 2);
    }

    #[test]
    fn iter_pairs() {
        let bat = Bat::from_tail(2, vec![10u32, 20]);
        let pairs: Vec<_> = bat.iter().collect();
        assert_eq!(pairs, [(2, 10), (3, 20)]);
    }

    #[test]
    fn slice_clamps() {
        let bat = Bat::from_tail(10, vec![0u32, 1, 2, 3, 4]);
        assert_eq!(bat.slice(11, 14), &[1, 2, 3]);
        assert_eq!(bat.slice(0, 12), &[0, 1]);
        assert_eq!(bat.slice(13, 99), &[3, 4]);
        assert_eq!(bat.slice(99, 100), &[] as &[u32]);
        assert_eq!(bat.slice(12, 12), &[] as &[u32]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let bat = Bat::<u8>::with_capacity(0, 1024);
        assert!(bat.is_empty());
    }
}
