//! A bulk-loaded B+-tree with range scans.
//!
//! The tree-unaware baseline of the paper (Figure 3) evaluates axis steps
//! with index range scans over a B-tree on concatenated `(pre, post[, tag])`
//! keys. This module provides that index: built once at document-loading
//! time from sorted data, then read-only — exactly the usage pattern of the
//! paper ("a single B+-tree — built at document loading time — suffices").
//!
//! The implementation is a classic static B+-tree: leaves hold sorted runs
//! of `(key, value)` pairs and are chained left-to-right; inner nodes hold
//! separator keys. Because the input is bulk-loaded, all nodes except the
//! right spine are full, giving the shallow fan-out real disk-era B-trees
//! have.

/// Keys per leaf / fan-out per inner node. 64 keeps a node within a few
/// cache lines while still giving height ≤ 4 for 10⁸ keys.
const NODE_CAPACITY: usize = 64;

/// A read-only B+-tree mapping `K` to `V`.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    /// Leaf storage: keys and values, concatenated leaf by leaf.
    keys: Vec<K>,
    values: Vec<V>,
    /// Inner levels, bottom-up. `levels[0]` separates leaves. Each level
    /// stores the *first key* of every node of the level below.
    levels: Vec<Vec<K>>,
    /// Counts how many leaf/inner nodes were inspected by queries; reported
    /// by the baseline experiments as "index pages touched". Atomic so a
    /// read-only tree can be shared across threads (sessions are `Sync`).
    #[doc(hidden)]
    pub nodes_touched: std::sync::atomic::AtomicU64,
}

impl<K: Clone, V: Clone> Clone for BPlusTree<K, V> {
    /// Clones the index data; the touched-node counter starts fresh.
    fn clone(&self) -> Self {
        BPlusTree {
            keys: self.keys.clone(),
            values: self.values.clone(),
            levels: self.levels.clone(),
            nodes_touched: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl<K: Ord + Copy, V: Copy> BPlusTree<K, V> {
    /// Bulk-loads the tree from `pairs`, which must be sorted by key
    /// (duplicate keys are allowed and preserved in input order).
    pub fn bulk_load(pairs: &[(K, V)]) -> BPlusTree<K, V> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "input must be sorted"
        );
        let keys: Vec<K> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<V> = pairs.iter().map(|p| p.1).collect();
        let mut levels: Vec<Vec<K>> = Vec::new();
        // Build separator levels until one node spans everything.
        let mut node_count = keys.len().div_ceil(NODE_CAPACITY);
        let mut current: Vec<K> = keys.iter().step_by(NODE_CAPACITY).copied().collect();
        while node_count > 1 {
            levels.push(current.clone());
            node_count = current.len().div_ceil(NODE_CAPACITY);
            current = current.iter().step_by(NODE_CAPACITY).copied().collect();
        }
        BPlusTree {
            keys,
            values,
            levels,
            nodes_touched: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Height of the tree in levels (leaves count as 1; 0 when empty).
    pub fn height(&self) -> usize {
        if self.keys.is_empty() {
            0
        } else {
            self.levels.len() + 1
        }
    }

    fn touch(&self, n: u64) {
        self.nodes_touched
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Resets the touched-node statistic.
    pub fn reset_stats(&self) {
        self.nodes_touched
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Nodes inspected since the last [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> u64 {
        self.nodes_touched
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Index of the first pair with key `>= key`, via root-to-leaf descent.
    fn lower_bound(&self, key: &K) -> usize {
        // Walk separator levels top-down. Each step narrows to one node's
        // key range; `partition_point` within a node is the binary search a
        // real B-tree performs inside a page.
        let mut node = 0usize; // node index at current level
        for level in self.levels.iter().rev() {
            self.touch(1);
            let start = node * NODE_CAPACITY;
            let end = (start + NODE_CAPACITY).min(level.len());
            let within = level[start..end].partition_point(|k| k <= key);
            // Child node: within==0 means the key sorts before every
            // separator in this node; descend into the first child anyway.
            node = start + within.saturating_sub(1);
        }
        self.touch(1);
        let start = node * NODE_CAPACITY;
        let end = (start + NODE_CAPACITY).min(self.keys.len());
        let mut i = start + self.keys[start..end].partition_point(|k| k < key);
        // Duplicates may spill into earlier leaves; rewind to the first.
        while i > 0 && self.keys[i - 1] >= *key {
            i -= 1;
        }
        i
    }

    /// The first value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        let i = self.lower_bound(key);
        (i < self.keys.len() && self.keys[i] == *key).then(|| self.values[i])
    }

    /// Iterates all `(key, value)` pairs with `lo <= key <= hi` in key
    /// order. This is the *index range scan* of the baseline plans; the
    /// iterator touches one leaf per `NODE_CAPACITY` results.
    pub fn range(&self, lo: K, hi: K) -> RangeScan<'_, K, V> {
        let start = self.lower_bound(&lo);
        RangeScan {
            tree: self,
            pos: start,
            hi,
            counted: start / NODE_CAPACITY,
        }
    }

    /// Iterates all pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.keys.iter().copied().zip(self.values.iter().copied())
    }
}

/// Iterator over a key range of a [`BPlusTree`].
pub struct RangeScan<'t, K, V> {
    tree: &'t BPlusTree<K, V>,
    pos: usize,
    hi: K,
    counted: usize,
}

impl<K: Ord + Copy, V: Copy> Iterator for RangeScan<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        if self.pos >= self.tree.keys.len() {
            return None;
        }
        let k = self.tree.keys[self.pos];
        if k > self.hi {
            return None;
        }
        let leaf = self.pos / NODE_CAPACITY;
        if leaf != self.counted {
            self.tree.touch(1);
            self.counted = leaf;
        }
        let v = self.tree.values[self.pos];
        self.pos += 1;
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(n: u32) -> BPlusTree<u32, u32> {
        let pairs: Vec<(u32, u32)> = (0..n).map(|i| (i * 2, i)).collect();
        BPlusTree::bulk_load(&pairs)
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::<u32, u32>::bulk_load(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.get(&5), None);
        assert_eq!(t.range(0, 100).count(), 0);
    }

    #[test]
    fn point_lookups() {
        let t = tree_of(10_000);
        assert_eq!(t.get(&0), Some(0));
        assert_eq!(t.get(&19_998), Some(9_999));
        assert_eq!(t.get(&2_000), Some(1_000));
        assert_eq!(t.get(&1), None); // odd keys absent
        assert_eq!(t.get(&20_000), None);
    }

    #[test]
    fn range_scan_inclusive() {
        let t = tree_of(1_000);
        let hits: Vec<_> = t.range(10, 20).map(|(k, _)| k).collect();
        assert_eq!(hits, [10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn range_scan_empty_ranges() {
        let t = tree_of(100);
        assert_eq!(t.range(1, 1).count(), 0);
        assert_eq!(t.range(500, 400).count(), 0);
        assert_eq!(t.range(10_000, 20_000).count(), 0);
    }

    #[test]
    fn range_scan_full() {
        let t = tree_of(5_000);
        assert_eq!(t.range(0, u32::MAX).count(), 5_000);
    }

    #[test]
    fn duplicates_preserved() {
        let pairs = vec![(1u32, 10u32), (2, 20), (2, 21), (2, 22), (3, 30)];
        let t = BPlusTree::bulk_load(&pairs);
        let dups: Vec<_> = t.range(2, 2).map(|(_, v)| v).collect();
        assert_eq!(dups, [20, 21, 22]);
    }

    #[test]
    fn duplicates_across_leaf_boundary() {
        // 200 copies of the same key straddle several leaves.
        let mut pairs: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        pairs.extend((0..200).map(|i| (100u32, 1000 + i)));
        pairs.extend((101..150).map(|i| (i, i)));
        let t = BPlusTree::bulk_load(&pairs);
        assert_eq!(t.range(100, 100).count(), 200);
        assert_eq!(t.get(&100), Some(1000));
    }

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(tree_of(10).height(), 1);
        assert!(tree_of(100).height() >= 2);
        let t = tree_of(100_000);
        assert!(t.height() <= 4, "height {} too deep", t.height());
    }

    #[test]
    fn stats_count_nodes() {
        let t = tree_of(100_000);
        t.reset_stats();
        let _ = t.get(&50_000);
        let descent = t.stats();
        assert!(descent as usize >= t.height(), "descent {descent} < height");
        t.reset_stats();
        let n = t.range(0, 40_000).count() as u64;
        assert!(
            t.stats() < n,
            "range scan should touch far fewer nodes than results"
        );
    }

    #[test]
    fn tuple_keys_sort_lexicographically() {
        // The baseline uses concatenated (pre, post) keys; tuples give the
        // same ordering.
        let pairs = vec![((0u32, 9u32), 0u32), ((1, 1), 1), ((1, 5), 2), ((2, 0), 3)];
        let t = BPlusTree::bulk_load(&pairs);
        let hits: Vec<_> = t.range((1, 0), (1, u32::MAX)).map(|(_, v)| v).collect();
        assert_eq!(hits, [1, 2]);
    }

    #[test]
    fn iter_returns_everything_in_order() {
        let t = tree_of(1_000);
        let keys: Vec<_> = t.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 1_000);
    }
}
