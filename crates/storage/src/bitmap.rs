//! Per-tag bitmaps over the pre-rank axis.
//!
//! A [`TagBitmap`] holds **one bit per pre rank**: bit `v` is set iff
//! node `v` is an element carrying the bitmap's tag. A name test over
//! a contiguous scan window then degenerates to word-aligned bit
//! arithmetic — mask the boundary words, popcount to *count* matches,
//! or walk set bits to *materialize* them — instead of a per-node
//! branch over the kind and tag columns. At 64 positions per `u64`
//! the bitmap for a document costs `n / 8` bytes per distinct tag,
//! which is why callers build them lazily per tag on first touch
//! (like the pre-sorted tag fragments they are cached alongside) and
//! let the cost model decide when the window is large enough to
//! amortize the build.

/// A bitmap with one bit per pre rank: set ⇔ the node is an element
/// with the bitmap's tag.
#[derive(Debug, Clone)]
pub struct TagBitmap {
    /// Bit `v` lives at `words[v / 64]`, bit `v % 64` (LSB-first).
    words: Vec<u64>,
    /// Number of valid bits (= document length in nodes).
    len: usize,
    /// Total set bits (= the tag's element count), precomputed at build.
    ones: usize,
}

impl TagBitmap {
    /// Builds the bitmap with one pass over the parallel `kinds`/`tags`
    /// columns: bit `v` is set iff `kinds[v] == element && tags[v] ==
    /// tag`. The accumulation is branch-free — each position
    /// contributes one shifted boolean to its word.
    pub fn build(kinds: &[u8], element: u8, tags: &[u32], tag: u32) -> TagBitmap {
        debug_assert_eq!(kinds.len(), tags.len());
        let len = kinds.len();
        let mut words = vec![0u64; len.div_ceil(64)];
        let mut ones = 0usize;
        for (w, (kc, tc)) in words.iter_mut().zip(kinds.chunks(64).zip(tags.chunks(64))) {
            let mut word = 0u64;
            for (l, (&k, &t)) in kc.iter().zip(tc).enumerate() {
                word |= u64::from((k == element) & (t == tag)) << l;
            }
            ones += word.count_ones() as usize;
            *w = word;
        }
        TagBitmap { words, len, ones }
    }

    /// Number of addressable bits (= nodes in the document).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap covers no positions at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total set bits: the tag's element count.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Membership test for one pre rank.
    #[inline]
    pub fn get(&self, v: usize) -> bool {
        (self.words[v / 64] >> (v % 64)) & 1 != 0
    }

    /// The raw word array (word `i` covers positions `64 i .. 64 i +
    /// 64`, LSB-first) — for callers that AND windows themselves.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bitmap word covering positions `[base, base + 64)` of the
    /// window `[from, to)`: out-of-window lanes are masked off, so
    /// boundary words need no special casing at the call site.
    #[inline]
    fn window_word(&self, base: usize, from: usize, to: usize) -> u64 {
        let mut word = self.words[base / 64];
        if from > base {
            word &= !0u64 << (from - base);
        }
        if to < base + 64 {
            word &= (1u64 << (to - base)) - 1;
        }
        word
    }

    /// Counts set bits inside `[from, to)`: one masked popcount per
    /// word, no per-position work.
    pub fn count_window(&self, from: usize, to: usize) -> usize {
        let to = to.min(self.len);
        if from >= to {
            return 0;
        }
        let mut base = from - from % 64;
        let mut ones = 0usize;
        while base < to {
            ones += self.window_word(base, from, to).count_ones() as usize;
            base += 64;
        }
        ones
    }

    /// Pushes every set position inside `[from, to)`, ascending: the
    /// word-at-a-time name test over a scan window. Work is one masked
    /// load per word plus one `trailing_zeros` per **match**.
    pub fn select_window(&self, from: usize, to: usize, out: &mut Vec<u32>) {
        let to = to.min(self.len);
        if from >= to {
            return;
        }
        let mut base = from - from % 64;
        while base < to {
            let mut word = self.window_word(base, from, to);
            while word != 0 {
                out.push(base as u32 + word.trailing_zeros());
                word &= word - 1;
            }
            base += 64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize) -> (Vec<u8>, Vec<u32>) {
        // Deterministic mixed columns: kind cycles 0..5, tag cycles 0..7.
        let kinds: Vec<u8> = (0..n).map(|i| (i * 7 % 5) as u8).collect();
        let tags: Vec<u32> = (0..n).map(|i| (i * 13 % 7) as u32).collect();
        (kinds, tags)
    }

    #[test]
    fn build_matches_scalar_membership() {
        for n in [0usize, 1, 63, 64, 65, 200, 513] {
            let (kinds, tags) = fixture(n);
            let bm = TagBitmap::build(&kinds, 0, &tags, 3);
            assert_eq!(bm.len(), n);
            let mut ones = 0;
            for v in 0..n {
                let want = kinds[v] == 0 && tags[v] == 3;
                assert_eq!(bm.get(v), want, "n {n} v {v}");
                ones += usize::from(want);
            }
            assert_eq!(bm.ones(), ones);
        }
    }

    #[test]
    fn window_count_and_select_agree_with_scalar() {
        let (kinds, tags) = fixture(300);
        let bm = TagBitmap::build(&kinds, 0, &tags, 3);
        for from in [0usize, 1, 7, 63, 64, 65, 100, 299, 300] {
            for len in [0usize, 1, 5, 63, 64, 65, 128, 300] {
                let to = (from + len).min(300);
                let want: Vec<u32> = (from..to.max(from))
                    .filter(|&v| bm.get(v))
                    .map(|v| v as u32)
                    .collect();
                let mut got = Vec::new();
                bm.select_window(from, to, &mut got);
                assert_eq!(got, want, "from {from} to {to}");
                assert_eq!(bm.count_window(from, to), want.len());
            }
        }
    }

    #[test]
    fn out_of_range_windows_clamp() {
        let (kinds, tags) = fixture(70);
        let bm = TagBitmap::build(&kinds, 0, &tags, 1);
        assert_eq!(bm.count_window(70, 900), 0);
        let mut out = Vec::new();
        bm.select_window(65, 900, &mut out);
        assert!(out.iter().all(|&v| (65..70).contains(&(v as usize))));
    }
}
