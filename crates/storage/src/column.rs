//! The `void` (virtual oid) column type.

/// A *virtual oid* column: the contiguous sequence `seq, seq+1, …,
/// seq+count-1` of which only the offset and length are stored.
///
/// Monet uses this type for any dense, duplicate-free, ascending identifier
/// column. In the staircase-join encoding the preorder ranks form exactly
/// such a sequence, which (a) halves the storage footprint of the `doc`
/// table and (b) turns every pre-rank lookup into a positional array access
/// — both facts the paper's §4.1 relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoidColumn {
    seq: u32,
    count: u32,
}

impl VoidColumn {
    /// A void column `seq .. seq+count`.
    pub fn new(seq: u32, count: u32) -> VoidColumn {
        VoidColumn { seq, count }
    }

    /// First value of the sequence.
    #[inline]
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// `true` when the column holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at `position` (`None` out of bounds).
    #[inline]
    pub fn get(&self, position: usize) -> Option<u32> {
        (position < self.count as usize).then(|| self.seq + position as u32)
    }

    /// The position of `value` inside the sequence (`None` if absent).
    ///
    /// This is the *positional lookup* that makes pre-rank → record access
    /// O(1) without any index structure.
    #[inline]
    pub fn position_of(&self, value: u32) -> Option<usize> {
        (value >= self.seq && value < self.seq + self.count).then(|| (value - self.seq) as usize)
    }

    /// Iterates the sequence values.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> {
        self.seq..self.seq + self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sequence() {
        let v = VoidColumn::new(10, 4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(0), Some(10));
        assert_eq!(v.get(3), Some(13));
        assert_eq!(v.get(4), None);
    }

    #[test]
    fn positional_lookup() {
        let v = VoidColumn::new(100, 50);
        assert_eq!(v.position_of(100), Some(0));
        assert_eq!(v.position_of(149), Some(49));
        assert_eq!(v.position_of(150), None);
        assert_eq!(v.position_of(99), None);
    }

    #[test]
    fn empty_column() {
        let v = VoidColumn::new(0, 0);
        assert!(v.is_empty());
        assert_eq!(v.get(0), None);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn iter_matches_get() {
        let v = VoidColumn::new(7, 5);
        let via_iter: Vec<_> = v.iter().collect();
        let via_get: Vec<_> = (0..v.len()).map(|i| v.get(i).unwrap()).collect();
        assert_eq!(via_iter, via_get);
    }
}
