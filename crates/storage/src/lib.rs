//! # staircase-storage
//!
//! A miniature Monet-style main-memory column engine — the storage substrate
//! the staircase-join paper (Grust, van Keulen, Teubner, VLDB 2003, §4)
//! assumes. It provides:
//!
//! * [`VoidColumn`] — Monet's `void` (*virtual oid*) column type: a
//!   contiguous integer sequence `o, o+1, o+2, …` of which only the offset
//!   is stored. The preorder ranks of the `doc` table are stored this way,
//!   so "only the postorder ranks of 4 byte each" are scanned (§4.2).
//! * [`Bat`] — a binary association table with a void head and a dense,
//!   typed tail; positional lookups are array indexing.
//! * [`BPlusTree`] — a bulk-loaded B+-tree with range scans, used by the
//!   tree-unaware baseline to emulate the concatenated-key
//!   `(pre, post, tag)` index of the paper's Figure 3 plan.
//! * [`scan`] — sequential scan/copy kernels with the unrolled
//!   (Duff's-device-inspired) copy loop of §4.3, shared with the staircase
//!   join's copy phase.
//! * [`TagBitmap`] — one bit per pre rank, set for elements carrying a
//!   given tag: turns a name test over a scan window into word-aligned
//!   bit arithmetic (mask + popcount / select) instead of a per-node
//!   branch. Built lazily per tag and cached alongside the tag
//!   fragments upstairs.

#![warn(missing_docs)]

mod bat;
mod bitmap;
mod btree;
mod column;
pub mod scan;

pub use bat::Bat;
pub use bitmap::TagBitmap;
pub use btree::BPlusTree;
pub use column::VoidColumn;
