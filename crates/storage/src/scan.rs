//! Sequential scan and copy kernels.
//!
//! §4.2/§4.3 of the paper split the staircase-join inner loop into a
//! comparison-free *copy phase* (bounded below by Equation 1) and a short
//! *scan phase* (bounded above by the document height). These kernels are
//! the copy/scan primitives both the join and the bandwidth experiment
//! (EXPERIMENTS.md, E12) use:
//!
//! * [`append_run`] — plain extend-from-slice copy.
//! * [`append_run_unrolled`] — manually 8-way unrolled copy loop, the
//!   Duff's-device flavour the paper reports boosted bandwidth from
//!   719 MB/s to 805 MB/s on their Pentium 4.
//! * [`scan_while_less`] / [`scan_while_greater`] — the θ-bounded scan of
//!   `scanpartition` (Algorithm 3): copy values while the predicate holds,
//!   stop at the first violation.

/// Appends `src` to `dst` (the baseline copy kernel).
#[inline]
pub fn append_run<T: Copy>(dst: &mut Vec<T>, src: &[T]) {
    dst.extend_from_slice(src);
}

/// Appends `src` to `dst` with an 8-way unrolled main loop.
///
/// `extend_from_slice` already lowers to `memcpy`; the point of this kernel
/// is to mirror the paper's hand-unrolled loop so the bandwidth experiment
/// can compare both variants, and to keep the remainder handling ("Duff's
/// device") explicit.
#[inline]
pub fn append_run_unrolled<T: Copy>(dst: &mut Vec<T>, src: &[T]) {
    dst.reserve(src.len());
    let mut chunks = src.chunks_exact(8);
    for c in &mut chunks {
        // Eight independent pushes per iteration: the reservation above
        // guarantees no reallocation happens mid-run.
        dst.push(c[0]);
        dst.push(c[1]);
        dst.push(c[2]);
        dst.push(c[3]);
        dst.push(c[4]);
        dst.push(c[5]);
        dst.push(c[6]);
        dst.push(c[7]);
    }
    dst.extend_from_slice(chunks.remainder());
}

/// Scans `src` left to right, appending `base + i` for every position `i`
/// whose value is `< bound`, stopping at the first value `>= bound`.
///
/// Returns `(appended, scanned)`: how many positions were appended and how
/// many were inspected (`scanned - appended ∈ {0, 1}`). This is the literal
/// inner loop of Algorithm 3 (`scanpartition_desc` with skipping): the
/// first node outside the descendant boundary proves the rest of the
/// partition is empty (a type-Z region, Figure 7(b)).
#[inline]
pub fn scan_while_less(dst: &mut Vec<u32>, src: &[u32], base: u32, bound: u32) -> (usize, usize) {
    for (i, &v) in src.iter().enumerate() {
        if v < bound {
            dst.push(base + i as u32);
        } else {
            return (i, i + 1);
        }
    }
    (src.len(), src.len())
}

/// Like [`scan_while_less`] but keeps values `> bound` and *continues past*
/// violations (the `ancestor` variant has no early-out without extra
/// knowledge; see Algorithm 2). Returns the number appended.
#[inline]
pub fn scan_while_greater(dst: &mut Vec<u32>, src: &[u32], base: u32, bound: u32) -> usize {
    let before = dst.len();
    for (i, &v) in src.iter().enumerate() {
        if v > bound {
            dst.push(base + i as u32);
        }
    }
    dst.len() - before
}

/// Appends the head values `base .. base + n` to `dst` (the copy phase of
/// Algorithm 4: the first `post(c) − pre(c)` nodes after a context node are
/// guaranteed descendants, no comparison needed).
#[inline]
pub fn append_sequence(dst: &mut Vec<u32>, base: u32, n: usize) {
    dst.reserve(n);
    dst.extend(base..base + n as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrolled_matches_plain() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let src: Vec<u32> = (0..n as u32).collect();
            let mut a = vec![99u32];
            let mut b = vec![99u32];
            append_run(&mut a, &src);
            append_run_unrolled(&mut b, &src);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn scan_while_less_stops_at_violation() {
        let mut out = Vec::new();
        let (app, scanned) = scan_while_less(&mut out, &[1, 2, 3, 9, 1, 1], 100, 5);
        assert_eq!(out, [100, 101, 102]);
        assert_eq!(app, 3);
        assert_eq!(scanned, 4); // the violating node was inspected
    }

    #[test]
    fn scan_while_less_exhausts_clean_run() {
        let mut out = Vec::new();
        let (app, scanned) = scan_while_less(&mut out, &[1, 2, 3], 0, 10);
        assert_eq!(app, 3);
        assert_eq!(scanned, 3);
        assert_eq!(out, [0, 1, 2]);
    }

    #[test]
    fn scan_while_less_empty() {
        let mut out = Vec::new();
        assert_eq!(scan_while_less(&mut out, &[], 0, 10), (0, 0));
        assert!(out.is_empty());
    }

    #[test]
    fn scan_while_greater_keeps_scanning() {
        let mut out = Vec::new();
        let n = scan_while_greater(&mut out, &[9, 1, 8, 0, 7], 10, 5);
        assert_eq!(out, [10, 12, 14]);
        assert_eq!(n, 3);
    }

    #[test]
    fn append_sequence_range() {
        let mut out = vec![5u32];
        append_sequence(&mut out, 10, 3);
        assert_eq!(out, [5, 10, 11, 12]);
        append_sequence(&mut out, 0, 0);
        assert_eq!(out.len(), 4);
    }
}
