//! XPath abstract syntax.

use staircase_accel::Axis;

/// A union expression: one or more location paths joined with `|`.
/// The result is the set union in document order (XPath semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionExpr {
    /// The branches, evaluated independently from the same context.
    pub branches: Vec<Path>,
}

/// A location path: a sequence of steps, optionally absolute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// `true` for paths starting with `/` (context = document root).
    pub absolute: bool,
    /// The steps, applied left to right.
    pub steps: Vec<Step>,
}

impl Path {
    /// A relative path from steps.
    pub fn relative(steps: Vec<Step>) -> Path {
        Path {
            absolute: false,
            steps,
        }
    }

    /// An absolute path from steps.
    pub fn absolute(steps: Vec<Step>) -> Path {
        Path {
            absolute: true,
            steps,
        }
    }
}

/// One location step: `axis::nodetest[pred]…`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis to traverse.
    pub axis: Axis,
    /// The node test applied to every node reached.
    pub test: NodeTest,
    /// Zero or more existential predicates.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// A step without predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Step {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

/// A node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `node()` — any node the axis yields.
    AnyNode,
    /// `*` — any element (or any attribute, on the attribute axis).
    AnyPrincipal,
    /// A name test: elements (or attributes) with this exact name.
    Name(String),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()`, optionally with a target.
    Pi(Option<String>),
}

/// A step predicate. Only existential path predicates are supported —
/// `[p]` keeps a node iff the relative path `p` selects at least one node
/// from it (the shape the paper's Q2 rewrite uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `[path]`.
    Exists(Path),
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 || self.absolute {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            let Predicate::Exists(path) = p;
            write!(f, "[{path}]")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for NodeTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeTest::AnyNode => write!(f, "node()"),
            NodeTest::AnyPrincipal => write!(f, "*"),
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Comment => write!(f, "comment()"),
            NodeTest::Pi(None) => write!(f, "processing-instruction()"),
            NodeTest::Pi(Some(t)) => write!(f, "processing-instruction({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_simple_paths() {
        let p = Path::absolute(vec![
            Step::new(Axis::Descendant, NodeTest::Name("profile".into())),
            Step::new(Axis::Descendant, NodeTest::Name("education".into())),
        ]);
        assert_eq!(p.to_string(), "/descendant::profile/descendant::education");
    }

    #[test]
    fn display_predicates() {
        let inner = Path::relative(vec![Step::new(
            Axis::Descendant,
            NodeTest::Name("increase".into()),
        )]);
        let mut step = Step::new(Axis::Descendant, NodeTest::Name("bidder".into()));
        step.predicates.push(Predicate::Exists(inner));
        let p = Path::absolute(vec![step]);
        assert_eq!(p.to_string(), "/descendant::bidder[descendant::increase]");
    }

    #[test]
    fn display_node_tests() {
        assert_eq!(NodeTest::AnyNode.to_string(), "node()");
        assert_eq!(NodeTest::AnyPrincipal.to_string(), "*");
        assert_eq!(NodeTest::Text.to_string(), "text()");
        assert_eq!(
            NodeTest::Pi(Some("php".into())).to_string(),
            "processing-instruction(php)"
        );
    }
}
