//! The query-path error type.
//!
//! Everything that can go wrong between "here is some XML / an encoded
//! plane / an XPath string" and "here is a result sequence" is reported
//! through [`Error`]; no public API on the [`crate::Session`] query path
//! panics.

use staircase_accel::{Axis, DecodeError};

use crate::parser::ParseError;

/// Any failure on the query path: loading a document, parsing an
/// expression, configuring an engine, or evaluating a step.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The XPath expression did not parse.
    Parse(ParseError),
    /// The XML text did not parse.
    Xml(staircase_xml::Error),
    /// A persisted (`.scj`) document did not decode.
    Decode(DecodeError),
    /// An axis outside the staircase join's partitioning set was handed
    /// to a partitioning-only entry point.
    UnsupportedAxis(Axis),
    /// An [`crate::Engine`] builder was given an inconsistent
    /// configuration.
    InvalidEngine(String),
    /// A caller-supplied evaluation context names a node outside the
    /// session's document (e.g. a pre rank taken from a different or
    /// stale document).
    ContextOutOfRange {
        /// The offending preorder rank.
        pre: staircase_accel::Pre,
        /// The document's node count.
        len: usize,
    },
    /// Reading a document from disk failed.
    Io(std::io::Error),
    /// A governed query ran past its wall-clock deadline
    /// ([`staircase_core::governor::Budget::with_deadline`]) and was
    /// stopped cooperatively.
    DeadlineExceeded,
    /// A governed query touched more nodes than its cost ceiling
    /// ([`staircase_core::governor::Budget::with_max_touched`]) allows.
    BudgetExhausted,
    /// The query's [`staircase_core::governor::Budget`] was cancelled
    /// (client CANCEL, disconnect, or programmatic
    /// [`staircase_core::governor::Budget::cancel`]).
    Cancelled,
    /// A lane or pool task panicked during execution. The panic was
    /// isolated to this query; the session, its worker pool, and any
    /// sibling queries of the same batch pass unaffected by it remain
    /// fully usable.
    Internal(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Xml(e) => write!(f, "XML parse error: {e}"),
            Error::Decode(e) => write!(f, "encoded document error: {e}"),
            Error::UnsupportedAxis(axis) => {
                write!(f, "axis {axis} is not a partitioning axis")
            }
            Error::InvalidEngine(reason) => write!(f, "invalid engine configuration: {reason}"),
            Error::ContextOutOfRange { pre, len } => {
                write!(
                    f,
                    "context node {pre} is outside the document ({len} nodes)"
                )
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::DeadlineExceeded => write!(f, "query deadline exceeded"),
            Error::BudgetExhausted => write!(f, "query cost budget exhausted"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Internal(detail) => write!(f, "internal execution failure: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Xml(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::UnsupportedAxis(_)
            | Error::InvalidEngine(_)
            | Error::ContextOutOfRange { .. }
            | Error::DeadlineExceeded
            | Error::BudgetExhausted
            | Error::Cancelled
            | Error::Internal(_) => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<staircase_xml::Error> for Error {
    fn from(e: staircase_xml::Error) -> Error {
        Error::Xml(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Error {
        Error::Decode(e)
    }
}

impl From<staircase_core::UnsupportedAxis> for Error {
    fn from(e: staircase_core::UnsupportedAxis) -> Error {
        Error::UnsupportedAxis(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}
