//! Hand-rolled recursive-descent parser for the XPath subset.

use staircase_accel::Axis;

use crate::ast::{NodeTest, Path, Predicate, Step, UnionExpr};

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the expression.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an XPath expression into a [`Path`].
pub fn parse(input: &str) -> Result<Path, ParseError> {
    let mut p = Parser { input, pos: 0 };
    let path = p.path()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    if path.steps.is_empty() {
        return Err(p.err("empty path"));
    }
    Ok(path)
}

/// Parses an XPath union expression (`path | path | …`); a single path is
/// a one-branch union.
pub fn parse_union(input: &str) -> Result<UnionExpr, ParseError> {
    let mut p = Parser { input, pos: 0 };
    let mut branches = Vec::new();
    loop {
        let path = p.path()?;
        if path.steps.is_empty() {
            return Err(p.err("empty path in union"));
        }
        branches.push(path);
        if !p.eat("|") {
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(UnionExpr { branches })
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek(&mut self, token: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(token)
    }

    fn name(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for c in rest.chars() {
            let ok = if end == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
            };
            if ok {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return None;
        }
        let name = &rest[..end];
        self.pos += end;
        Some(name)
    }

    fn path(&mut self) -> Result<Path, ParseError> {
        let mut steps = Vec::new();
        let absolute = self.peek("/");
        // Leading '//' abbreviates /descendant-or-self::node()/.
        if self.eat("//") {
            steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
        } else if self.eat("/") {
            self.skip_ws();
            // A bare "/" (no steps) — let the caller decide if that is
            // acceptable (top-level parse rejects empty paths).
            if self.pos >= self.input.len() || self.peek("]") {
                return Ok(Path { absolute, steps });
            }
        }
        loop {
            steps.push(self.step()?);
            if self.eat("//") {
                steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
                continue;
            }
            if self.eat("/") {
                continue; // another step is now required
            }
            break;
        }
        Ok(Path { absolute, steps })
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        self.skip_ws();
        // Abbreviations.
        if self.eat("..") {
            return Ok(Step::new(Axis::Parent, NodeTest::AnyNode));
        }
        if self.peek(".") && !self.rest().starts_with("..") {
            self.eat(".");
            return Ok(Step::new(Axis::SelfAxis, NodeTest::AnyNode));
        }
        if self.eat("@") {
            let test = if self.eat("*") {
                NodeTest::AnyPrincipal
            } else {
                let n = self
                    .name()
                    .ok_or_else(|| self.err("attribute name expected"))?;
                NodeTest::Name(n.to_string())
            };
            let mut step = Step::new(Axis::Attribute, test);
            step.predicates = self.predicates()?;
            return Ok(step);
        }

        // Optional explicit axis.
        let checkpoint = self.pos;
        let axis = if let Some(name) = self.name() {
            if self.eat("::") {
                Axis::parse(name).ok_or_else(|| self.err(format!("unknown axis '{name}'")))?
            } else {
                self.pos = checkpoint; // it was a node test, not an axis
                Axis::Child
            }
        } else {
            Axis::Child
        };

        let test = self.node_test()?;
        let mut step = Step::new(axis, test);
        step.predicates = self.predicates()?;
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NodeTest::AnyPrincipal);
        }
        let name = self.name().ok_or_else(|| self.err("node test expected"))?;
        if self.eat("(") {
            let test = match name {
                "node" => NodeTest::AnyNode,
                "text" => NodeTest::Text,
                "comment" => NodeTest::Comment,
                "processing-instruction" => {
                    let target = self.name().map(str::to_string);
                    NodeTest::Pi(target)
                }
                other => return Err(self.err(format!("unknown node test '{other}()'"))),
            };
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(test);
        }
        Ok(NodeTest::Name(name.to_string()))
    }

    fn predicates(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = Vec::new();
        while self.eat("[") {
            self.skip_ws();
            if self.rest().starts_with(|c: char| c.is_ascii_digit()) {
                return Err(self.err(
                    "positional predicates are not supported (only existential path predicates)",
                ));
            }
            let inner = self.path()?;
            if inner.steps.is_empty() {
                return Err(self.err("empty predicate"));
            }
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
            preds.push(Predicate::Exists(inner));
        }
        Ok(preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let p = parse("/descendant::profile/descendant::education").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[0].test, NodeTest::Name("profile".into()));
        assert_eq!(p.steps[1].test, NodeTest::Name("education".into()));
    }

    #[test]
    fn parses_q2() {
        let p = parse("/descendant::increase/ancestor::bidder").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Ancestor);
    }

    #[test]
    fn parses_q2_rewrite_with_predicate() {
        let p = parse("/descendant::bidder[descendant::increase]").unwrap();
        assert_eq!(p.steps.len(), 1);
        let Predicate::Exists(inner) = &p.steps[0].predicates[0];
        assert_eq!(inner.steps[0].test, NodeTest::Name("increase".into()));
        assert!(!inner.absolute);
    }

    #[test]
    fn default_axis_is_child() {
        let p = parse("site/people/person").unwrap();
        assert!(!p.absolute);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn double_slash_abbreviation() {
        let p = parse("//bidder//increase").unwrap();
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::AnyNode);
        assert_eq!(p.steps[1].axis, Axis::Child);
        assert_eq!(p.steps[2].axis, Axis::DescendantOrSelf);
    }

    #[test]
    fn dot_and_dotdot() {
        let p = parse("./..").unwrap();
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[1].axis, Axis::Parent);
    }

    #[test]
    fn attribute_abbreviation() {
        let p = parse("person/@id").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("id".into()));
        let p = parse("person/@*").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::AnyPrincipal);
    }

    #[test]
    fn node_test_functions() {
        let p = parse("descendant::node()").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::AnyNode);
        let p = parse("child::text()").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Text);
        let p = parse("descendant::comment()").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Comment);
        let p = parse("descendant::processing-instruction(php)").unwrap();
        assert_eq!(p.steps[0].test, NodeTest::Pi(Some("php".into())));
    }

    #[test]
    fn all_axes_parse() {
        for axis in Axis::ALL {
            let expr = format!("{}::node()", axis.name());
            let p = parse(&expr).unwrap_or_else(|e| panic!("{expr}: {e}"));
            assert_eq!(p.steps[0].axis, axis, "{expr}");
        }
    }

    #[test]
    fn nested_predicates() {
        let p = parse("//open_auction[bidder[descendant::increase]]").unwrap();
        let Predicate::Exists(outer) = &p.steps[1].predicates[0];
        let Predicate::Exists(inner) = &outer.steps[0].predicates[0];
        assert_eq!(inner.steps[0].test, NodeTest::Name("increase".into()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("/").is_err());
        assert!(parse("foo/").is_err());
        assert!(parse("foo[1]").is_err(), "positional predicates rejected");
        assert!(parse("bogus::node()").is_err());
        assert!(parse("foo[bar").is_err());
        assert!(parse("foo()").is_err());
        assert!(parse("foo bar").is_err());
        assert!(parse("descendant::node(").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let p = parse("  /descendant::profile / descendant::education ").unwrap();
        assert_eq!(p.steps.len(), 2);
    }
}
