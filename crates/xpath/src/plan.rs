//! Physical plans: the typed IR between parsing and execution.
//!
//! [`plan_union`] lowers a parsed [`UnionExpr`] into a [`PhysicalPlan`]:
//! per union branch, a pipeline of [`PlannedStep`]s, each carrying the
//! chosen join operator ([`StepOp`]), the node-test operator
//! ([`TestOp`]), the lowered predicate operators ([`PredOp`]), and the
//! cost model's estimates ([`StepEstimate`]). The evaluator
//! ([`crate::eval`]) is a pure interpreter of this IR; the batch layer
//! ([`crate::batch`]) groups lanes by the *planned operator*, so neither
//! re-derives engine decisions at run time.
//!
//! Fixed engines are trivial planning policies — every step lowers to
//! the operator that engine always uses, exactly reproducing the
//! pre-split dispatch (asserted by the cross-engine equivalence tests).
//! [`Engine::auto`] is the interesting policy: for every partitioning
//! step it prices the candidate operators with
//! [`staircase_core::cost::DocStats`] — plain staircase join, prebuilt
//! tag fragment (§6), and the Figure-3 SQL plan — and keeps the
//! cheapest, the way worst-case-optimal join systems pick per-variable
//! strategies from cardinality bounds.

use std::fmt;
use std::sync::Arc;

use staircase_accel::{Axis, Doc};
use staircase_core::cost::{DocStats, RuntimeStats, TwigLegCost};
use staircase_core::{TwigEdge, Variant};

use crate::ast::{NodeTest, Path, Predicate, Step, UnionExpr};
use crate::engine::{Engine, EngineKind};

// ── Shared axis classification (used by eval and batch too) ─────────────

/// The four partitioning axes, as a closed enum so axis dispatch needs no
/// unreachable arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PartAxis {
    Descendant,
    Ancestor,
    Following,
    Preceding,
}

/// The two axes with a fragment (on-list) join and a multi-context
/// (batched) join form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VertAxis {
    Descendant,
    Ancestor,
}

/// The partitioning axis evaluated by `axis` (or-self variants map to
/// their base axis; the self-merge is layered on top by the evaluator).
pub(crate) fn part_axis_of(axis: Axis) -> Option<PartAxis> {
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf => Some(PartAxis::Descendant),
        Axis::Ancestor | Axis::AncestorOrSelf => Some(PartAxis::Ancestor),
        Axis::Following => Some(PartAxis::Following),
        Axis::Preceding => Some(PartAxis::Preceding),
        _ => None,
    }
}

/// The vertical axis evaluated by `axis`, if any.
pub(crate) fn vert_axis_of(axis: Axis) -> Option<VertAxis> {
    match part_axis_of(axis)? {
        PartAxis::Descendant => Some(VertAxis::Descendant),
        PartAxis::Ancestor => Some(VertAxis::Ancestor),
        _ => None,
    }
}

pub(crate) fn axis_of(paxis: PartAxis) -> Axis {
    match paxis {
        PartAxis::Descendant => Axis::Descendant,
        PartAxis::Ancestor => Axis::Ancestor,
        PartAxis::Following => Axis::Following,
        PartAxis::Preceding => Axis::Preceding,
    }
}

// ── The IR ──────────────────────────────────────────────────────────────

/// A fully lowered union expression: one [`PathPlan`] per branch.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    pub(crate) branches: Vec<PathPlan>,
    /// Planned under [`Engine::adaptive`](crate::Engine::adaptive): the
    /// lane executor re-prices every pending step at step boundaries
    /// from the *observed* frontier cardinality
    /// ([`staircase_core::cost::RuntimeStats`]) and may switch its
    /// operator ([`replan_step`]).
    pub(crate) adaptive: bool,
}

/// A lowered location path: a pipeline of planned steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPlan {
    pub(crate) absolute: bool,
    pub(crate) steps: Vec<PlannedStep>,
}

/// One lowered step: the chosen join operator, the node-test operator,
/// the predicate operators, and the cost model's estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    pub(crate) axis: Axis,
    pub(crate) test: NodeTest,
    pub(crate) op: StepOp,
    pub(crate) test_op: TestOp,
    pub(crate) predicates: Vec<PredOp>,
    pub(crate) estimate: StepEstimate,
    /// Parallelism hint: the cost model judged this step's estimated
    /// work large enough to amortize fanning morsels out across the
    /// session's worker pool (see
    /// [`staircase_core::cost::DocStats::fanout_worthwhile`]).
    pub(crate) fanout: bool,
    /// Set by the adaptive executor when the runtime re-pricing pass
    /// switched this step's operator away from the planned one; the
    /// planner itself always emits `false`. Rendered as `[replan]`.
    pub(crate) replanned: bool,
    /// Rendered source step (axis, test, predicates) for traces.
    pub(crate) rendered: String,
}

/// The join operator chosen for one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOp {
    /// Staircase join over the whole plane (vertical axes).
    Staircase {
        /// Skipping refinement.
        variant: Variant,
    },
    /// On-list staircase join over a per-tag node list. `prescan` means
    /// the list is produced by a query-time selection scan (§4.4
    /// name-test pushdown) instead of the prebuilt [`staircase_core::TagIndex`].
    Fragment {
        /// Query-time selection scan instead of the prebuilt index.
        prescan: bool,
    },
    /// Partitioned parallel staircase join (vertical axes).
    Parallel {
        /// Skipping refinement.
        variant: Variant,
        /// Worker count.
        threads: usize,
    },
    /// Horizontal staircase scan: pruning collapses the context to one
    /// node and `following`/`preceding` become one region copy.
    Horiz,
    /// Per-context region queries + duplicate elimination (§3.1).
    Naive,
    /// Tree-unaware B-tree plan (Figure 3).
    Sql {
        /// Paper line-7 window predicate.
        eq1_window: bool,
        /// Filter by tag during the index scan.
        early_nametest: bool,
    },
    /// Engine-independent structural axis (`self`, `child`, `parent`,
    /// `attribute`, the sibling axes).
    Structural,
    /// Worst-case-optimal twig region: a run of vertical name-test steps
    /// whose predicates are themselves vertical existential paths, fused
    /// into one multiway leapfrog intersection over the per-tag
    /// fragments ([`staircase_core::twig_match`]). The step binds the
    /// *last* spine leg only, in document order; no intermediate step
    /// result is ever materialized.
    Twig(Arc<TwigSpec>),
}

/// The fused twig region evaluated by [`StepOp::Twig`]: the spine legs
/// (tag plus containment edge from the previous leg) and, per leg, the
/// existential chains hanging off it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigSpec {
    /// Spine legs in path order; the last leg is the output binding.
    pub(crate) spine: Vec<TwigSpecLeg>,
}

/// One spine leg of a fused twig region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TwigSpecLeg {
    /// Containment edge from the previous leg (for the first leg: from
    /// the context).
    pub(crate) edge: TwigEdge,
    /// The leg's tag name.
    pub(crate) name: String,
    /// Existential predicate chains below this leg, outermost step
    /// first; every chain is non-empty.
    pub(crate) chains: Vec<Vec<(TwigEdge, String)>>,
}

impl TwigSpec {
    /// The root-to-leaf paths of the pattern tree, rendered with `>` for
    /// descendant edges and `.` for child edges (`a>b`, `a>c.d`).
    fn leaf_paths(&self) -> Vec<String> {
        let sep = |e: TwigEdge| if e == TwigEdge::Child { '.' } else { '>' };
        let mut prefix = String::new();
        let mut paths = Vec::new();
        for (i, leg) in self.spine.iter().enumerate() {
            if i > 0 {
                prefix.push(sep(leg.edge));
            }
            prefix.push_str(&leg.name);
            for chain in &leg.chains {
                let mut p = prefix.clone();
                for (edge, name) in chain {
                    p.push(sep(*edge));
                    p.push_str(name);
                }
                paths.push(p);
            }
        }
        // The spine itself is a leaf path unless the output leg's chains
        // already extend it.
        if self.spine.last().is_none_or(|l| l.chains.is_empty()) {
            paths.push(prefix);
        }
        paths
    }
}

impl fmt::Display for TwigSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "twig[{}]", self.leaf_paths().join(", "))
    }
}

/// How the step's node test is evaluated.
///
/// Fusion is a property of the join operator — fragment joins and SQL's
/// early name test produce exactly the tested nodes, everything else
/// needs a filter pass — so this field is *derived* from [`StepOp`] by
/// the planner (the only constructor of plans) and recorded here for
/// `EXPLAIN` output and plan inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOp {
    /// The join already yields exactly the tested nodes (fragment joins,
    /// SQL's early name test): no separate pass.
    Fused,
    /// A filter pass over the join's base result.
    ApplyTest,
}

/// The axes a semijoin predicate probe supports (§3.3's empty-region
/// argument: the first list node in the candidate's region decides the
/// predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemijoinAxis {
    /// `[descendant::t]`.
    Descendant,
    /// `[child::t]` (also the abbreviated `[t]`).
    Child,
    /// `[ancestor::t]`.
    Ancestor,
}

/// A lowered step predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// One semijoin probe per candidate against a per-tag node list;
    /// `prebuilt` selects the cached fragment index over a query-time
    /// selection scan.
    Semijoin {
        /// Probe direction.
        axis: SemijoinAxis,
        /// The predicate's tag name.
        name: String,
        /// Probe the prebuilt [`staircase_core::TagIndex`] fragment.
        prebuilt: bool,
    },
    /// Nested-loop fallback: evaluate the lowered predicate path from
    /// each candidate and keep candidates with non-empty results.
    Filter(PathPlan),
}

/// Cost-model estimates for one planned step, in the cost model's unit
/// (expected nodes / index entries touched) plus expected output
/// cardinality. Estimates assume evaluation from the document root —
/// the session's default — and are heuristics, not bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// Expected nodes / index entries touched by this step.
    pub cost: f64,
    /// Expected result cardinality after tests and predicates.
    pub rows: f64,
}

impl PhysicalPlan {
    /// The per-branch plans (one per `|` branch of the union).
    pub fn branches(&self) -> &[PathPlan] {
        &self.branches
    }

    /// Total planned steps across all branches.
    pub fn step_count(&self) -> usize {
        self.branches.iter().map(|b| b.steps.len()).sum()
    }

    /// Sum of the per-step cost estimates.
    pub fn estimated_cost(&self) -> f64 {
        self.branches
            .iter()
            .flat_map(|b| &b.steps)
            .map(|s| s.estimate.cost)
            .sum()
    }

    /// Was this plan lowered for [`Engine::adaptive`](crate::Engine::adaptive)?
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Does executing this plan require the prebuilt tag-fragment index?
    ///
    /// Adaptive plans always resolve the index: a runtime switch to a
    /// fragment join must find it in hand. The index is first-touch
    /// lazy ([`staircase_core::TagIndex::lazy`]), so resolving it for a
    /// plan that never switches builds nothing.
    pub(crate) fn needs_tag_index(&self) -> bool {
        self.adaptive || self.branches.iter().any(path_needs_tags)
    }

    /// Does executing this plan require the SQL engine's B-tree?
    pub(crate) fn needs_sql_engine(&self) -> bool {
        self.branches.iter().any(path_needs_sql)
    }
}

fn path_needs_tags(path: &PathPlan) -> bool {
    path.steps.iter().any(|s| {
        matches!(s.op, StepOp::Fragment { prescan: false } | StepOp::Twig(_))
            || s.predicates.iter().any(|p| match p {
                PredOp::Semijoin { prebuilt, .. } => *prebuilt,
                PredOp::Filter(sub) => path_needs_tags(sub),
            })
    })
}

fn path_needs_sql(path: &PathPlan) -> bool {
    path.steps.iter().any(|s| {
        matches!(s.op, StepOp::Sql { .. })
            || s.predicates.iter().any(|p| match p {
                PredOp::Filter(sub) => path_needs_sql(sub),
                PredOp::Semijoin { .. } => false,
            })
    })
}

impl PathPlan {
    /// The planned steps, in evaluation order.
    pub fn steps(&self) -> &[PlannedStep] {
        &self.steps
    }
}

/// The multi-context ("lane") executor a planned step is served by.
///
/// Batchability is a **declared property of the planned operator**:
/// every [`StepOp`] either provides a multi-context form — dispatched by
/// the lane executor so K lanes whose current steps agree on this key
/// share one pass — or names [`LaneForm::PerLane`], the sequential
/// fallback. Grouping therefore never re-derives engine decisions at
/// run time, and the planner can reason about which steps of a batch
/// will share passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneForm<'s> {
    /// Plain staircase join over the whole plane:
    /// [`staircase_core::descendant_many`] / [`staircase_core::ancestor_many`].
    Staircase(VertAxis, Variant),
    /// On-list (fragment) join over a shared per-tag node list:
    /// [`staircase_core::descendant_on_list_many`] /
    /// [`staircase_core::ancestor_on_list_many`]. Lanes naming the same
    /// tag share both the list resolution and the merged cursor.
    Fragment {
        /// Join direction.
        vert: VertAxis,
        /// The name test's tag (fused into the join), borrowed from the
        /// step — deriving the lane form allocates nothing.
        name: &'s str,
        /// Query-time selection scan instead of the prebuilt index.
        prescan: bool,
    },
    /// Horizontal scan: [`staircase_core::following_many`] /
    /// [`staircase_core::preceding_many`] (one suffix/prefix pass for
    /// the whole group).
    Horiz(HorizAxis),
    /// No multi-context form: the lane falls back to the sequential
    /// plan interpreter for this step.
    PerLane,
}

/// The two horizontal axes, as their own enum so a horizontal lane form
/// cannot name a vertical axis by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HorizAxis {
    Following,
    Preceding,
}

impl HorizAxis {
    pub(crate) fn axis(self) -> Axis {
        match self {
            HorizAxis::Following => Axis::Following,
            HorizAxis::Preceding => Axis::Preceding,
        }
    }
}

impl PlannedStep {
    /// The chosen join operator.
    pub fn operator(&self) -> &StepOp {
        &self.op
    }

    /// The declared multi-context form of this step (see [`LaneForm`]).
    ///
    /// Semijoin predicates do not block lane execution — the executor
    /// probes them group-wise through the `*_in_many` operators — but a
    /// nested-loop [`PredOp::Filter`] recurses into full path
    /// evaluation, so it forces the sequential fallback.
    pub(crate) fn lane_form(&self) -> LaneForm<'_> {
        if self
            .predicates
            .iter()
            .any(|p| matches!(p, PredOp::Filter(_)))
        {
            return LaneForm::PerLane;
        }
        let Some(paxis) = part_axis_of(self.axis) else {
            return LaneForm::PerLane; // structural axes
        };
        match (&self.op, vert_axis_of(self.axis)) {
            (StepOp::Staircase { variant }, Some(vert)) => LaneForm::Staircase(vert, *variant),
            (StepOp::Fragment { prescan }, Some(vert)) => match &self.test {
                NodeTest::Name(name) => LaneForm::Fragment {
                    vert,
                    name,
                    prescan: *prescan,
                },
                // The planner only emits fragment joins for name tests;
                // a hand-built plan without one falls back (exactly as
                // the sequential interpreter does).
                _ => LaneForm::PerLane,
            },
            // The horizontal scan ignores the variant (pruning collapses
            // the context to one node), so Staircase-planned horizontal
            // steps batch too.
            (StepOp::Staircase { .. } | StepOp::Horiz, None) => match paxis {
                PartAxis::Following => LaneForm::Horiz(HorizAxis::Following),
                PartAxis::Preceding => LaneForm::Horiz(HorizAxis::Preceding),
                // vert_axis_of returned None, so paxis is horizontal;
                // stay total without asserting it.
                PartAxis::Descendant | PartAxis::Ancestor => LaneForm::PerLane,
            },
            _ => LaneForm::PerLane,
        }
    }

    /// Does this step provide a multi-context (batched) form?
    ///
    /// When `true`, [`crate::Session::run_many`] serves every lane whose
    /// current step shares this step's lane form from **one** pass;
    /// when `false`, the step is the per-lane residue (nested-loop
    /// predicates, structural axes, and the naive/SQL/parallel
    /// operators, which have no multi-context form).
    pub fn batchable(&self) -> bool {
        self.lane_form() != LaneForm::PerLane
    }

    /// How the node test is applied.
    pub fn test_operator(&self) -> TestOp {
        self.test_op
    }

    /// The lowered predicate operators.
    pub fn predicate_operators(&self) -> &[PredOp] {
        &self.predicates
    }

    /// The cost model's estimates for this step.
    pub fn estimate(&self) -> StepEstimate {
        self.estimate
    }

    /// The planner's parallelism hint: `true` when this step's estimated
    /// work amortizes fanning morsels out across the session's worker
    /// pool. The executor only splits a hinted step (and only on a pool
    /// wider than one); un-hinted steps stay sequential so small queries
    /// never pay worker handoff. `xq --explain` marks hinted steps
    /// `[par]`.
    pub fn fanout(&self) -> bool {
        self.fanout
    }

    /// The axis this step traverses.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The source step as written (`descendant::bidder[increase]`).
    pub fn source(&self) -> &str {
        &self.rendered
    }
}

// ── Rendering (one line per step; `xq --explain`) ───────────────────────

impl fmt::Display for StepOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepOp::Staircase { variant } => write!(f, "staircase({variant:?})"),
            StepOp::Fragment { prescan: false } => write!(f, "fragment"),
            StepOp::Fragment { prescan: true } => write!(f, "fragment(prescan)"),
            StepOp::Parallel { variant, threads } => {
                write!(f, "parallel({variant:?}, {threads} threads)")
            }
            StepOp::Horiz => write!(f, "horiz-scan"),
            StepOp::Naive => write!(f, "naive"),
            StepOp::Sql {
                eq1_window,
                early_nametest,
            } => {
                write!(f, "sql(")?;
                match (eq1_window, early_nametest) {
                    (false, false) => write!(f, "plain")?,
                    (true, false) => write!(f, "eq1-window")?,
                    (false, true) => write!(f, "early-nametest")?,
                    (true, true) => write!(f, "eq1-window, early-nametest")?,
                }
                write!(f, ")")
            }
            StepOp::Structural => write!(f, "structural"),
            StepOp::Twig(spec) => write!(f, "{spec}"),
        }
    }
}

impl fmt::Display for PlannedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ops = self.op.to_string();
        if self.test_op == TestOp::ApplyTest && !matches!(self.test, NodeTest::AnyNode) {
            // The residual node test runs through the chunked 64-lane
            // bitmask kernels (`staircase_core::mask`), with large name
            // tests upgraded to per-tag bitmap probes at run time.
            ops.push_str(" + apply-test [mask]");
        }
        for pred in &self.predicates {
            match pred {
                PredOp::Semijoin { name, .. } => {
                    ops.push_str(" + semijoin[");
                    ops.push_str(name);
                    ops.push(']');
                }
                PredOp::Filter(_) => ops.push_str(" + filter-pred"),
            }
        }
        if self.batchable() {
            // This step has a multi-context form: in a batch, lanes that
            // agree on it share one pass.
            ops.push_str(" [lane]");
        }
        if self.fanout {
            // Estimated work amortizes the worker pool: on a session
            // with threads > 1 this step's execution fans out.
            ops.push_str(" [par]");
        }
        if self.replanned {
            // The adaptive executor switched this operator at a step
            // boundary, against the observed frontier cardinality.
            ops.push_str(" [replan]");
        }
        write!(
            f,
            "step {:<36} op {:<44} est cost {:>12.0}  est rows {:>9.0}",
            self.rendered, ops, self.estimate.cost, self.estimate.rows
        )
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let many = self.branches.len() > 1;
        for (i, branch) in self.branches.iter().enumerate() {
            if many {
                writeln!(f, "branch {}:", i + 1)?;
            }
            for step in &branch.steps {
                writeln!(f, "{step}")?;
            }
        }
        Ok(())
    }
}

// ── The planner ─────────────────────────────────────────────────────────

/// The planning policy behind an [`Engine`].
#[derive(Debug, Clone, Copy)]
enum Policy {
    Fixed(EngineKind),
    Auto,
    /// [`Engine::twig`]: fuse **every** eligible twig region; steps
    /// outside a region run as §6 fragment joins.
    Twig,
}

/// Planner configuration: the policy plus the session-calibrated cost
/// factors (currently the fitted twig-seek multiplier).
#[derive(Debug, Clone, Copy)]
struct Planner {
    policy: Policy,
    /// Session-fitted multiplier on the twig frontier cost
    /// ([`staircase_core::cost::Calibrator::twig_seek_factor`]): 1.0
    /// until twig steps have actually run and reported their seeks.
    twig_seek: f64,
}

/// Lowers a parsed union expression into a physical plan for `engine`.
/// `twig_seek` is the session calibrator's fitted twig-seek factor
/// (pass 1.0 for an uncalibrated plan).
pub(crate) fn plan_union(
    expr: &UnionExpr,
    doc: &Doc,
    stats: &DocStats,
    engine: Engine,
    twig_seek: f64,
) -> PhysicalPlan {
    let policy = match engine.kind {
        // Adaptive plans start from exactly the static auto plan; the
        // divergence is at run time, where the executor re-prices
        // pending steps from observed cardinalities.
        EngineKind::Auto | EngineKind::Adaptive => Policy::Auto,
        EngineKind::Twig => Policy::Twig,
        kind => Policy::Fixed(kind),
    };
    let pl = Planner { policy, twig_seek };
    PhysicalPlan {
        branches: expr
            .branches
            .iter()
            .map(|p| plan_path(p, doc, stats, pl, 1.0, true))
            .collect(),
        adaptive: engine.is_adaptive(),
    }
}

/// Lowers one location path. `in_rows`/`at_root` seed the cardinality
/// propagation: the session evaluates from the document root, so both
/// absolute and relative paths start with one context node.
fn plan_path(
    path: &Path,
    doc: &Doc,
    stats: &DocStats,
    pl: Planner,
    in_rows: f64,
    at_root: bool,
) -> PathPlan {
    let mut rows = in_rows;
    let mut root = at_root;
    let mut steps = Vec::with_capacity(path.steps.len());
    let mut i = 0;
    while i < path.steps.len() {
        // Twig-capable policies look for a region starting here; the
        // auto policy additionally demands that the cost model predict a
        // step-at-a-time intermediate blowup above the leapfrog frontier
        // cost before fusing.
        if matches!(pl.policy, Policy::Twig | Policy::Auto) {
            if let Some(spec) = twig_region(&path.steps[i..]) {
                let len = spec.spine.len();
                if let Some((planned, out_rows)) =
                    plan_twig(spec, &path.steps[i..i + len], doc, stats, pl, rows, root)
                {
                    rows = out_rows;
                    root = false;
                    steps.push(planned);
                    i += len;
                    continue;
                }
            }
        }
        let (planned, out_rows) = plan_step(&path.steps[i], doc, stats, pl, rows, root);
        rows = out_rows;
        root = false;
        steps.push(planned);
        i += 1;
    }
    PathPlan {
        absolute: path.absolute,
        steps,
    }
}

// ── Twig-region recognition and lowering ────────────────────────────────

/// Recognizes the maximal *twig region* starting at `steps[0]`: a run of
/// at least two vertical name-test steps — the first on the descendant
/// axis, later ones descendant or child — whose predicates are all
/// relative vertical existential paths (descendant/child name-test steps
/// with no nested predicates). Returns `None` when no region starts
/// here; single eligible steps stay on the step-at-a-time operators,
/// which already touch no more than the twig would.
fn twig_region(steps: &[Step]) -> Option<TwigSpec> {
    let mut spine = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match twig_leg(step, i == 0) {
            Some(leg) => spine.push(leg),
            None => break,
        }
    }
    if spine.len() < 2 {
        return None;
    }
    Some(TwigSpec { spine })
}

/// One step's twig-leg form, if it has one.
fn twig_leg(step: &Step, first: bool) -> Option<TwigSpecLeg> {
    let edge = match step.axis {
        Axis::Descendant => TwigEdge::Descendant,
        // A child-axis *first* leg would need the structural child
        // dispatch; regions start on the partitioning descendant axis so
        // the fused step replaces a partitioning join.
        Axis::Child if !first => TwigEdge::Child,
        _ => return None,
    };
    let NodeTest::Name(name) = &step.test else {
        return None;
    };
    let mut chains = Vec::with_capacity(step.predicates.len());
    for pred in &step.predicates {
        let Predicate::Exists(path) = pred;
        chains.push(vertical_chain(path)?);
    }
    Some(TwigSpecLeg {
        edge,
        name: name.clone(),
        chains,
    })
}

/// A predicate path's chain form: relative, non-empty, every step a
/// predicate-free descendant/child name test.
fn vertical_chain(path: &Path) -> Option<Vec<(TwigEdge, String)>> {
    if path.absolute || path.steps.is_empty() {
        return None;
    }
    let mut chain = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        if !step.predicates.is_empty() {
            return None;
        }
        let edge = match step.axis {
            Axis::Descendant => TwigEdge::Descendant,
            Axis::Child => TwigEdge::Child,
            _ => return None,
        };
        let NodeTest::Name(name) = &step.test else {
            return None;
        };
        chain.push((edge, name.clone()));
    }
    Some(chain)
}

/// Lowers a recognized region to one fused [`StepOp::Twig`] step.
/// Returns `None` when the policy is [`Policy::Auto`] and the cost model
/// prices the step-at-a-time intermediates *below* the leapfrog frontier
/// — stepping through a uniform document is cheaper than running one
/// cursor per leg, so auto declines the fusion there.
fn plan_twig(
    spec: TwigSpec,
    source: &[Step],
    doc: &Doc,
    stats: &DocStats,
    pl: Planner,
    in_rows: f64,
    at_root: bool,
) -> Option<(PlannedStep, f64)> {
    let legs: Vec<TwigLegCost> = spec
        .spine
        .iter()
        .map(|leg| TwigLegCost {
            fragment: stats.fragment_size(doc, doc.tag_id(&leg.name)),
            child_edge: leg.edge == TwigEdge::Child,
            chains: leg
                .chains
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|(_, n)| stats.fragment_size(doc, doc.tag_id(n)))
                        .collect()
                })
                .collect(),
        })
        .collect();
    // The calibrated frontier: the session's fitted seek factor scales
    // the static prediction, so a session whose twig steps kept seeking
    // more (or less) than predicted shifts later twig-vs-step picks.
    let frontier = stats.twig_frontier_cost(in_rows, &legs) * pl.twig_seek;
    if matches!(pl.policy, Policy::Auto)
        && stats.step_blowup_estimate(in_rows, at_root, &legs) <= frontier
    {
        return None;
    }
    // Output cardinality: the step plan's final rows, so downstream
    // estimates are unchanged by splicing the twig in.
    let rows = twig_rows_estimate(stats, in_rows, at_root, &legs);
    let rendered = source
        .iter()
        .map(Step::to_string)
        .collect::<Vec<_>>()
        .join("/");
    let test = NodeTest::Name(spec.spine[spec.spine.len() - 1].name.clone());
    let planned = PlannedStep {
        // The fused step replaces the region's first (descendant-axis)
        // step in the pipeline; the evaluator dispatches it through the
        // partitioning path like any descendant step.
        axis: Axis::Descendant,
        test,
        op: StepOp::Twig(Arc::new(spec)),
        test_op: TestOp::Fused,
        predicates: Vec::new(),
        estimate: StepEstimate {
            cost: frontier,
            rows,
        },
        fanout: false,
        replanned: false,
        rendered,
    };
    Some((planned, rows))
}

/// The step plan's output-cardinality recursion over a region (the
/// `rows` half of [`DocStats::step_blowup_estimate`]), so the fused step
/// reports the same expected rows the step pipeline would.
fn twig_rows_estimate(stats: &DocStats, in_rows: f64, at_root: bool, legs: &[TwigLegCost]) -> f64 {
    let n = (stats.nodes() as f64).max(1.0);
    let mut rows = in_rows.max(1.0);
    for (i, leg) in legs.iter().enumerate() {
        let f = leg.fragment as f64;
        let reach = if leg.child_edge {
            stats.structural_cost(Axis::Child, rows)
        } else {
            stats.descendant_window(rows, at_root && i == 0)
        };
        let out = (reach * f / n).min(f);
        rows = out / 2.0f64.powi(leg.chains.len() as i32);
    }
    rows
}

/// Fraction of window nodes surviving `test` (rough: name tests use the
/// per-tag fragment size, `*` the element fraction, the rare non-element
/// kind tests an arbitrary sliver).
fn test_selectivity(test: &NodeTest, doc: &Doc, stats: &DocStats) -> f64 {
    match test {
        NodeTest::AnyNode => 1.0,
        NodeTest::AnyPrincipal => stats.selectivity(stats.elements()),
        NodeTest::Name(name) => stats.selectivity(stats.fragment_size(doc, doc.tag_id(name))),
        NodeTest::Text | NodeTest::Comment | NodeTest::Pi(_) => {
            let rest = stats.nodes().saturating_sub(stats.elements());
            stats.selectivity(rest) / 2.0
        }
    }
}

/// Lowers one step under `policy`; returns the planned step and the
/// estimated output cardinality feeding the next step.
fn plan_step(
    step: &Step,
    doc: &Doc,
    stats: &DocStats,
    pl: Planner,
    in_rows: f64,
    at_root: bool,
) -> (PlannedStep, f64) {
    let sel = test_selectivity(&step.test, doc, stats);
    let fragment = match &step.test {
        NodeTest::Name(name) => stats.fragment_size(doc, doc.tag_id(name)),
        _ => 0,
    };

    let (op, test_op, mut cost, mut rows) = match part_axis_of(step.axis) {
        Some(paxis) => plan_partitioning(
            step, paxis, pl.policy, stats, sel, fragment, in_rows, at_root,
        ),
        None => {
            // Structural axes are engine-independent.
            let cost = stats.structural_cost(step.axis, in_rows);
            (StepOp::Structural, TestOp::ApplyTest, cost, cost * sel)
        }
    };

    // Or-self merges the surviving context nodes back in.
    if matches!(step.axis, Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
        rows += in_rows * sel;
    }

    let mut predicates = Vec::with_capacity(step.predicates.len());
    for pred in &step.predicates {
        let Predicate::Exists(path) = pred;
        let lowered = plan_predicate(path, doc, stats, pl);
        match &lowered {
            PredOp::Semijoin { name, prebuilt, .. } => {
                let f = stats.fragment_size(doc, doc.tag_id(name));
                cost += stats.semijoin_cost(rows, f, !prebuilt);
            }
            PredOp::Filter(sub) => {
                let per_candidate: f64 = sub.steps.iter().map(|s| s.estimate.cost).sum();
                cost += rows * per_candidate.max(1.0);
            }
        }
        // The classic existential-predicate guess: half the candidates
        // survive.
        rows /= 2.0;
        predicates.push(lowered);
    }

    let planned = PlannedStep {
        axis: step.axis,
        test: step.test.clone(),
        op,
        test_op,
        predicates,
        estimate: StepEstimate { cost, rows },
        fanout: stats.fanout_worthwhile(cost),
        replanned: false,
        rendered: step.to_string(),
    };
    (planned, rows)
}

/// Lowers a partitioning-axis step: the policy picks the join operator,
/// the cost model prices it (and, for [`Engine::auto`], the candidates).
#[allow(clippy::too_many_arguments)]
fn plan_partitioning(
    step: &Step,
    paxis: PartAxis,
    policy: Policy,
    stats: &DocStats,
    sel: f64,
    fragment: usize,
    in_rows: f64,
    at_root: bool,
) -> (StepOp, TestOp, f64, f64) {
    let is_name = matches!(step.test, NodeTest::Name(_));
    let vert = vert_axis_of(step.axis);
    let desc = matches!(paxis, PartAxis::Descendant);
    let horiz = vert.is_none();

    // Window estimates the candidates are priced from.
    let window = match paxis {
        PartAxis::Descendant => stats.descendant_window(in_rows, at_root),
        PartAxis::Ancestor => stats.ancestor_window(in_rows),
        PartAxis::Following | PartAxis::Preceding => stats.nodes() as f64 / 2.0,
    };
    let unpruned = if horiz {
        window
    } else {
        stats.unpruned_window(in_rows, desc, at_root)
    };
    let base_rows = window * sel;

    let price = |op: &StepOp| -> f64 {
        match *op {
            StepOp::Staircase { variant } => {
                stats.staircase_cost(variant, in_rows, window) + stats.apply_test_cost(window)
            }
            // An empty fragment makes the step provably empty: the
            // prescan variant skips the selection scan entirely when the
            // name is absent, so only the per-partition probes remain.
            StepOp::Fragment { prescan: true } if fragment == 0 => in_rows,
            StepOp::Fragment { prescan } => stats.fragment_cost(fragment, in_rows, window, prescan),
            StepOp::Parallel { variant, threads } => {
                stats.parallel_cost(variant, in_rows, window, threads)
                    + stats.apply_test_cost(window)
            }
            StepOp::Horiz => stats.horiz_cost() + stats.apply_test_cost(window),
            StepOp::Naive => stats.naive_cost(unpruned) + stats.apply_test_cost(unpruned),
            StepOp::Sql {
                eq1_window,
                early_nametest,
            } => {
                let scan = stats.sql_cost(in_rows, unpruned, eq1_window);
                if early_nametest && is_name {
                    scan
                } else {
                    scan + stats.apply_test_cost(unpruned)
                }
            }
            StepOp::Structural => f64::INFINITY,
            // Twig steps are priced at region level (`plan_twig`), never
            // as per-step candidates.
            StepOp::Twig(_) => f64::INFINITY,
        }
    };

    let op = match policy {
        Policy::Fixed(kind) => fixed_op(kind, is_name, vert.is_some(), horiz),
        // Steps outside a fused region run as §6 fragment joins under
        // the twig engine.
        Policy::Twig => fixed_op(
            EngineKind::Fragmented {
                variant: Variant::EstimationSkipping,
            },
            is_name,
            vert.is_some(),
            horiz,
        ),
        Policy::Auto => {
            if horiz {
                StepOp::Horiz
            } else if is_name && fragment == 0 {
                // No element carries this name: the result is provably
                // empty. The prescan fragment join gets there without
                // forcing the prebuilt index to be built (the empty-name
                // selection scan is free).
                StepOp::Fragment { prescan: true }
            } else {
                // Candidate set for vertical axes: plain staircase join,
                // prebuilt fragment (name tests only), and the SQL plan.
                // First-cheapest wins; ties keep the earlier (more
                // robust) candidate.
                let mut candidates = vec![StepOp::Staircase {
                    variant: Variant::EstimationSkipping,
                }];
                if is_name {
                    candidates.push(StepOp::Fragment { prescan: false });
                }
                candidates.push(StepOp::Sql {
                    eq1_window: true,
                    early_nametest: true,
                });
                let mut best = candidates[0].clone();
                let mut best_cost = price(&candidates[0]);
                for cand in &candidates[1..] {
                    let c = price(cand);
                    if c < best_cost {
                        best = cand.clone();
                        best_cost = c;
                    }
                }
                best
            }
        }
    };

    let test_op = match op {
        StepOp::Fragment { .. } => TestOp::Fused,
        StepOp::Sql { early_nametest, .. } if early_nametest && is_name => TestOp::Fused,
        _ => TestOp::ApplyTest,
    };
    let cost = price(&op);
    (op, test_op, cost, base_rows)
}

/// The operator a fixed engine always uses for a partitioning step —
/// exactly the pre-split dispatch of the monolithic evaluator.
fn fixed_op(kind: EngineKind, is_name: bool, vertical: bool, horiz: bool) -> StepOp {
    match kind {
        EngineKind::Staircase { variant, pushdown } => {
            if pushdown && is_name && vertical {
                StepOp::Fragment { prescan: true }
            } else if horiz {
                StepOp::Horiz
            } else {
                StepOp::Staircase { variant }
            }
        }
        EngineKind::Fragmented { variant } => {
            if is_name && vertical {
                StepOp::Fragment { prescan: false }
            } else if horiz {
                StepOp::Horiz
            } else {
                StepOp::Staircase { variant }
            }
        }
        EngineKind::Parallel { variant, threads } => {
            if horiz {
                // The horizontal scan is single-pass; the parallel engine
                // runs it serially (as before the split).
                StepOp::Horiz
            } else {
                StepOp::Parallel { variant, threads }
            }
        }
        EngineKind::Naive => StepOp::Naive,
        EngineKind::Sql {
            eq1_window,
            early_nametest,
        } => StepOp::Sql {
            eq1_window,
            early_nametest,
        },
        EngineKind::Auto => unreachable!("auto resolves to Policy::Auto"),
        EngineKind::Adaptive => unreachable!("adaptive resolves to Policy::Auto"),
        EngineKind::Twig => unreachable!("twig resolves to Policy::Twig"),
    }
}

/// Re-prices one pending step against the **observed** frontier
/// cardinality — [`Engine::adaptive`](crate::Engine::adaptive)'s loop
/// (a) — and returns the now-cheapest operator (with its fused-test
/// flag and re-priced cost) when the observed-cost ranking disagrees
/// with the planned pick.
///
/// Only vertical partitioning steps already carrying an operator from
/// the auto candidate set (plain staircase, prebuilt fragment, SQL) are
/// re-chosen: twig regions, horizontal scans, and structural axes have
/// no runtime alternative the overlay prices. `sql_available` gates the
/// SQL candidate as a switch *target* — the executor only resolves the
/// B-tree when the static plan asked for it, and a mid-query build
/// would cost more than it saves.
pub(crate) fn replan_step(
    step: &PlannedStep,
    doc: &Doc,
    rt: &RuntimeStats<'_>,
    sql_available: bool,
) -> Option<(StepOp, TestOp, f64)> {
    let vert = vert_axis_of(step.axis)?;
    if !matches!(
        step.op,
        StepOp::Staircase { .. } | StepOp::Fragment { .. } | StepOp::Sql { .. }
    ) {
        return None;
    }
    let stats = rt.base();
    let is_name = matches!(step.test, NodeTest::Name(_));
    let fragment = match &step.test {
        NodeTest::Name(name) => stats.fragment_size(doc, doc.tag_id(name)),
        _ => 0,
    };
    if is_name && fragment == 0 {
        // The result is provably empty; the planned operator already
        // gets there without building anything.
        return None;
    }
    // Replanning fires mid-path, after at least one step has run, so
    // the from-root window special case never applies.
    let desc = vert == VertAxis::Descendant;
    let window = if desc {
        rt.descendant_window(false)
    } else {
        rt.ancestor_window()
    };
    let unpruned = rt.unpruned_window(desc, false);
    let price = |op: &StepOp| -> f64 {
        match *op {
            StepOp::Staircase { variant } => {
                rt.staircase_cost(variant, window) + stats.apply_test_cost(window)
            }
            StepOp::Fragment { prescan } => rt.fragment_cost(fragment, window, prescan),
            StepOp::Sql {
                eq1_window,
                early_nametest,
            } => {
                let scan = rt.sql_cost(unpruned, eq1_window);
                if early_nametest && is_name {
                    scan
                } else {
                    scan + stats.apply_test_cost(unpruned)
                }
            }
            _ => f64::INFINITY,
        }
    };
    // The same candidate set (and tie-breaking order) as the static
    // auto policy, priced through the runtime overlay instead of the
    // Equation-1 cardinality guess.
    let mut candidates = vec![StepOp::Staircase {
        variant: Variant::EstimationSkipping,
    }];
    if is_name {
        candidates.push(StepOp::Fragment { prescan: false });
    }
    if sql_available || matches!(step.op, StepOp::Sql { .. }) {
        candidates.push(StepOp::Sql {
            eq1_window: true,
            early_nametest: true,
        });
    }
    let mut best = candidates[0].clone();
    let mut best_cost = price(&candidates[0]);
    for cand in &candidates[1..] {
        let c = price(cand);
        if c < best_cost {
            best = cand.clone();
            best_cost = c;
        }
    }
    if best == step.op {
        return None;
    }
    let test_op = match best {
        StepOp::Fragment { .. } => TestOp::Fused,
        StepOp::Sql { early_nametest, .. } if early_nametest && is_name => TestOp::Fused,
        _ => TestOp::ApplyTest,
    };
    Some((best, test_op, best_cost))
}

/// Lowers a predicate path: the semijoin fast path when the shape allows
/// and the policy's engine family supports it, the nested-loop filter
/// otherwise.
fn plan_predicate(path: &Path, doc: &Doc, stats: &DocStats, pl: Planner) -> PredOp {
    let semijoin_family = match pl.policy {
        Policy::Auto | Policy::Twig => true,
        Policy::Fixed(
            EngineKind::Staircase { .. }
            | EngineKind::Fragmented { .. }
            | EngineKind::Parallel { .. },
        ) => true,
        Policy::Fixed(_) => false,
    };
    if semijoin_family {
        if let Some((axis, name)) = semijoin_shape(path) {
            let prebuilt = matches!(
                pl.policy,
                Policy::Auto | Policy::Twig | Policy::Fixed(EngineKind::Fragmented { .. })
            );
            return PredOp::Semijoin {
                axis,
                name: name.to_string(),
                prebuilt,
            };
        }
    }
    PredOp::Filter(plan_path(path, doc, stats, pl, 1.0, false))
}

/// The §3.3 semijoin fast path applies to single-step, predicate-free,
/// relative name tests on the descendant/child/ancestor axes.
fn semijoin_shape(path: &Path) -> Option<(SemijoinAxis, &str)> {
    if path.absolute || path.steps.len() != 1 {
        return None;
    }
    let step = &path.steps[0];
    if !step.predicates.is_empty() {
        return None;
    }
    let NodeTest::Name(name) = &step.test else {
        return None;
    };
    let axis = match step.axis {
        Axis::Descendant => SemijoinAxis::Descendant,
        Axis::Child => SemijoinAxis::Child,
        Axis::Ancestor => SemijoinAxis::Ancestor,
        _ => return None,
    };
    Some((axis, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_union;

    fn fixture() -> (Doc, DocStats) {
        let doc = Doc::from_xml(
            "<site><a><b/><b/><c/></a><a><b/><rare/></a>\
             <a><b/><b/><b/><c/><c/></a></site>",
        )
        .unwrap();
        let stats = DocStats::from_doc(&doc);
        (doc, stats)
    }

    fn plan_for(expr: &str, engine: Engine) -> PhysicalPlan {
        let (doc, stats) = fixture();
        plan_union(&parse_union(expr).unwrap(), &doc, &stats, engine, 1.0)
    }

    fn ops(plan: &PhysicalPlan) -> Vec<StepOp> {
        plan.branches()
            .iter()
            .flat_map(|b| b.steps())
            .map(|s| s.operator().clone())
            .collect()
    }

    #[test]
    fn fixed_engines_are_trivial_policies() {
        let q = "/descendant::b/ancestor::node()/following::c";
        assert_eq!(
            ops(&plan_for(q, Engine::default())),
            [
                StepOp::Staircase {
                    variant: Variant::EstimationSkipping
                },
                StepOp::Staircase {
                    variant: Variant::EstimationSkipping
                },
                StepOp::Horiz,
            ]
        );
        assert_eq!(
            ops(&plan_for(q, Engine::naive())),
            [StepOp::Naive, StepOp::Naive, StepOp::Naive]
        );
        let sql = Engine::sql().eq1_window(true).build().unwrap();
        assert!(ops(&plan_for(q, sql)).iter().all(|op| matches!(
            op,
            StepOp::Sql {
                eq1_window: true,
                ..
            }
        )));
    }

    #[test]
    fn fragment_policies_follow_the_name_test() {
        let fragmented = Engine::staircase().fragmented(true).build().unwrap();
        let pushdown = Engine::staircase().pushdown(true).build().unwrap();
        // Name tests on vertical axes take the on-list join…
        assert_eq!(
            ops(&plan_for("/descendant::b", fragmented)),
            [StepOp::Fragment { prescan: false }]
        );
        assert_eq!(
            ops(&plan_for("/descendant::b", pushdown)),
            [StepOp::Fragment { prescan: true }]
        );
        // …while node() steps stay on the plain staircase join.
        assert_eq!(
            ops(&plan_for("/descendant::node()", fragmented)),
            [StepOp::Staircase {
                variant: Variant::EstimationSkipping
            }]
        );
    }

    #[test]
    fn auto_picks_fragments_for_selective_name_tests() {
        let plan = plan_for("/descendant::rare/ancestor::a", Engine::auto());
        assert_eq!(
            ops(&plan),
            [
                StepOp::Fragment { prescan: false },
                StepOp::Fragment { prescan: false }
            ]
        );
        // Fused name test: no separate filter pass.
        assert_eq!(plan.branches()[0].steps()[0].test_operator(), TestOp::Fused);
        assert!(plan.needs_tag_index());
        assert!(!plan.needs_sql_engine());
    }

    #[test]
    fn auto_keeps_the_staircase_join_for_unselective_steps() {
        let plan = plan_for("/descendant::node()/following::node()", Engine::auto());
        assert_eq!(
            ops(&plan),
            [
                StepOp::Staircase {
                    variant: Variant::EstimationSkipping
                },
                StepOp::Horiz,
            ]
        );
        assert!(!plan.needs_tag_index());
        assert!(!plan.needs_sql_engine());
    }

    #[test]
    fn semijoin_predicates_lower_by_family() {
        let q = "/descendant::a[b]";
        let auto = plan_for(q, Engine::auto());
        let steps = &auto.branches()[0].steps()[0];
        assert!(matches!(
            steps.predicate_operators()[0],
            PredOp::Semijoin {
                axis: SemijoinAxis::Child,
                prebuilt: true,
                ..
            }
        ));
        // The plain staircase engine probes a query-time scan list…
        let plain = plan_for(q, Engine::default());
        assert!(matches!(
            plain.branches()[0].steps()[0].predicate_operators()[0],
            PredOp::Semijoin {
                prebuilt: false,
                ..
            }
        ));
        assert!(!plain.needs_tag_index());
        // …and the SQL engine has no semijoin fast path at all.
        let sql = plan_for(q, Engine::sql().build().unwrap());
        assert!(matches!(
            sql.branches()[0].steps()[0].predicate_operators()[0],
            PredOp::Filter(_)
        ));
    }

    #[test]
    fn adaptive_plans_start_from_the_static_auto_plan() {
        for q in [
            "/descendant::b/ancestor::a",
            "/descendant::node()/following::node()",
            "//a[b]/descendant::c",
        ] {
            let auto = plan_for(q, Engine::auto());
            let adaptive = plan_for(q, Engine::adaptive());
            assert_eq!(ops(&auto), ops(&adaptive), "{q}");
            assert!(!auto.is_adaptive());
            assert!(adaptive.is_adaptive());
            // The runtime flag forces index resolution (lazy, so free
            // until a switch actually touches it).
            assert!(adaptive.needs_tag_index(), "{q}");
        }
    }

    #[test]
    fn replan_switches_when_the_observed_cardinality_explodes() {
        let (doc, stats) = fixture();
        // Auto plans //b as a fragment join on this fixture; pretend a
        // hand-planned staircase step instead and replan it with a tiny
        // observed context — the fragment join must win.
        let plan = plan_for("/descendant::b/descendant::b", Engine::adaptive());
        let step = &plan.branches()[0].steps()[1];
        let rt = RuntimeStats::new(&stats, 1.0);
        match step.operator() {
            StepOp::Fragment { .. } => {
                // Already the observed-cost winner at card 1: no switch.
                assert!(replan_step(step, &doc, &rt, false).is_none());
            }
            other => panic!("fixture surprise: {other}"),
        }
        // A staircase-planned step with a selective observed context
        // switches to the fragment join.
        let fixed = plan_for("/descendant::b/descendant::b", Engine::default());
        let stair = &fixed.branches()[0].steps()[1];
        let (op, test_op, cost) =
            replan_step(stair, &doc, &rt, false).expect("staircase should lose to the fragment");
        assert_eq!(op, StepOp::Fragment { prescan: false });
        assert_eq!(test_op, TestOp::Fused);
        assert!(cost.is_finite() && cost >= 0.0);
        // Horizontal and structural steps never replan.
        let horiz = plan_for("/following::b", Engine::default());
        assert!(replan_step(&horiz.branches()[0].steps()[0], &doc, &rt, true).is_none());
        let structural = plan_for("child::b", Engine::default());
        assert!(replan_step(&structural.branches()[0].steps()[0], &doc, &rt, true).is_none());
    }

    #[test]
    fn replan_never_builds_fragments_for_absent_names() {
        let (doc, stats) = fixture();
        let plan = plan_for("/descendant::zzz/descendant::zzz", Engine::default());
        let rt = RuntimeStats::new(&stats, 1.0);
        // An absent name is provably empty: whatever the planned
        // operator, switching could only force an index build.
        for step in plan.branches()[0].steps() {
            assert!(replan_step(step, &doc, &rt, true).is_none());
        }
    }

    #[test]
    fn replanned_steps_render_the_marker() {
        let plan = plan_for("/descendant::b", Engine::default());
        let mut step = plan.branches()[0].steps()[0].clone();
        assert!(!step.to_string().contains("[replan]"));
        step.replanned = true;
        assert!(step.to_string().contains("[replan]"), "{step}");
    }

    #[test]
    fn estimates_are_positive_and_ordered() {
        let (doc, stats) = fixture();
        let parsed = parse_union("/descendant::b").unwrap();
        let frag = plan_union(&parsed, &doc, &stats, Engine::auto(), 1.0);
        let naive = plan_union(&parsed, &doc, &stats, Engine::naive(), 1.0);
        assert!(frag.estimated_cost() > 0.0);
        assert!(
            frag.estimated_cost() < naive.estimated_cost(),
            "fragment {} !< naive {}",
            frag.estimated_cost(),
            naive.estimated_cost()
        );
    }

    #[test]
    fn display_prints_one_line_per_step() {
        let plan = plan_for("/descendant::b/ancestor::a", Engine::auto());
        let text = plan.to_string();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.contains("op "), "{line}");
            assert!(line.contains("est cost"), "{line}");
        }
        // Union plans label their branches.
        let union = plan_for("//b | //c", Engine::auto());
        assert!(union.to_string().contains("branch 2:"));
    }

    #[test]
    fn lane_forms_are_declared_per_operator() {
        let step = |expr: &str, engine: Engine| -> PlannedStep {
            plan_for(expr, engine).branches()[0].steps()[0].clone()
        };
        // Plain staircase joins and fragment joins have lane forms…
        assert_eq!(
            step("/descendant::node()", Engine::default()).lane_form(),
            LaneForm::Staircase(VertAxis::Descendant, Variant::EstimationSkipping)
        );
        let fragmented = Engine::staircase().fragmented(true).build().unwrap();
        assert_eq!(
            step("/ancestor::b", fragmented).lane_form(),
            LaneForm::Fragment {
                vert: VertAxis::Ancestor,
                name: "b",
                prescan: false
            }
        );
        // …as do horizontal scans…
        assert_eq!(
            step("/following::c", Engine::default()).lane_form(),
            LaneForm::Horiz(HorizAxis::Following)
        );
        // …and steps whose predicates lower to semijoins…
        assert!(step("/descendant::a[b]", Engine::default()).batchable());
        // …while nested-loop predicates, structural axes, and operators
        // without a multi-context form name the per-lane fallback.
        assert!(!step("/descendant::a[b/c]", Engine::default()).batchable());
        assert!(!step("child::b", Engine::default()).batchable());
        assert!(!step("/descendant::b", Engine::naive()).batchable());
        assert!(!step("/descendant::b", Engine::sql().build().unwrap()).batchable());
        let parallel = Engine::staircase().parallel(2).build().unwrap();
        assert!(!step("/descendant::b", parallel).batchable());
    }

    #[test]
    fn explain_marks_batchable_steps() {
        let text = plan_for("/descendant::b/child::c", Engine::default()).to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("[lane]"), "{text}");
        assert!(!lines[1].contains("[lane]"), "{text}");
    }

    #[test]
    fn explain_marks_masked_node_tests() {
        // A residual name test is applied through the mask kernels…
        let text = plan_for("/descendant::b/child::c", Engine::default()).to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("apply-test [mask]"), "{text}");
        assert!(lines[1].contains("apply-test [mask]"), "{text}");
        // …while fused tests (fragment join) and node() steps have no
        // residual filter to mask.
        let fragmented = Engine::staircase().fragmented(true).build().unwrap();
        let fused = plan_for("/descendant::b", fragmented).to_string();
        assert!(!fused.contains("[mask]"), "{fused}");
        let keep_all = plan_for("/descendant::node()", Engine::default()).to_string();
        assert!(!keep_all.contains("[mask]"), "{keep_all}");
    }

    #[test]
    fn twig_engine_fuses_eligible_regions() {
        // Two descendant name-test steps with vertical existential
        // predicates: one fused leapfrog step.
        let plan = plan_for("/descendant::a[b]/descendant::c", Engine::twig());
        let steps = plan.branches()[0].steps();
        assert_eq!(steps.len(), 1, "{plan}");
        let StepOp::Twig(spec) = steps[0].operator() else {
            panic!("expected a fused twig step, got {}", steps[0].operator());
        };
        assert_eq!(spec.spine.len(), 2);
        assert_eq!(spec.spine[0].name, "a");
        assert_eq!(spec.spine[0].chains, [[(TwigEdge::Child, "b".to_string())]]);
        assert_eq!(spec.spine[1].edge, TwigEdge::Descendant);
        // Fused output binding: no residual test or predicates.
        assert_eq!(steps[0].test_operator(), TestOp::Fused);
        assert!(steps[0].predicate_operators().is_empty());
        // The fused step needs the prebuilt fragments.
        assert!(plan.needs_tag_index());
    }

    #[test]
    fn twig_regions_stop_at_ineligible_steps() {
        // The ancestor step ends the region; the remaining steps run as
        // fragment joins under the twig engine.
        let plan = plan_for("/descendant::a/child::b/ancestor::c", Engine::twig());
        let planned_ops = ops(&plan);
        assert_eq!(planned_ops.len(), 2, "{plan}");
        assert!(matches!(planned_ops[0], StepOp::Twig(_)), "{plan}");
        assert_eq!(
            planned_ops[1],
            StepOp::Fragment { prescan: false },
            "{plan}"
        );
        // A lone eligible step is no region at all.
        let single = plan_for("/descendant::b", Engine::twig());
        assert_eq!(ops(&single), [StepOp::Fragment { prescan: false }]);
        // Positional ineligibility: a nested predicate blocks the chain.
        let nested = plan_for("/descendant::a[b[c]]/descendant::c", Engine::twig());
        assert!(
            !ops(&nested).iter().any(|op| matches!(op, StepOp::Twig(_))),
            "{nested}"
        );
    }

    #[test]
    fn twig_display_renders_leaf_paths() {
        let plan = plan_for(
            "/descendant::a[descendant::b]/descendant::c[child::d]",
            Engine::twig(),
        );
        let text = plan.to_string();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("twig[a>b, a>c.d]"), "{text}");
        // Chain-free spines render the spine itself.
        let bare = plan_for("/descendant::a/child::b", Engine::twig());
        assert!(bare.to_string().contains("twig[a.b]"), "{bare}");
    }

    #[test]
    fn auto_declines_twig_on_uniform_fixture() {
        // On the tiny uniform fixture the step plan's intermediates never
        // exceed the leapfrog frontier, so auto keeps stepping.
        let plan = plan_for("/descendant::a[b]/descendant::c", Engine::auto());
        assert!(
            !ops(&plan).iter().any(|op| matches!(op, StepOp::Twig(_))),
            "{plan}"
        );
    }

    #[test]
    fn twig_steps_are_per_lane() {
        let plan = plan_for("/descendant::a[b]/descendant::c", Engine::twig());
        let step = &plan.branches()[0].steps()[0];
        assert_eq!(step.lane_form(), LaneForm::PerLane);
        assert!(!step.batchable());
    }

    #[test]
    fn structural_axes_are_engine_independent() {
        for engine in [Engine::default(), Engine::naive(), Engine::auto()] {
            assert_eq!(
                ops(&plan_for("child::b/..", engine)),
                [StepOp::Structural, StepOp::Structural],
                "{engine:?}"
            );
        }
    }
}
