//! The sequential plan interpreter: the lane executor's per-lane
//! residue.
//!
//! Since the lane-native refactor, **all** evaluation enters through
//! the lane executor in [`crate::batch`] ([`Executor::run_plans`];
//! single-query `run` is the K = 1 batch). This module holds the
//! [`Executor`] itself — the document paired with whichever auxiliary
//! structures the plans at hand require, resolved by [`crate::Session`]
//! against its caches — plus the *sequential* step interpreter
//! ([`Executor::exec_step`]) that serves the genuinely unbatchable
//! residue: steps whose planned operator declares no multi-context form
//! (naive/SQL/parallel joins, structural axes) and nested-loop
//! predicate evaluation. It makes no engine decisions: every step
//! arrives as a [`PlannedStep`] whose operator was chosen by
//! [`crate::plan`] (trivially, for fixed engines; cost-based, for
//! [`crate::Engine::auto`]), and the interpreter merely dispatches on
//! it. Everything below the session's resolution step is total: no
//! panics, no `unwrap`.

use staircase_accel::{Axis, Context, Doc, NodeKind, Pre};
use staircase_baselines::{naive_step, SqlEngine, SqlPlanOptions};
use staircase_core::{
    ancestor, ancestor_on_list, ancestor_parallel, ancestor_parallel_on,
    cost::{Calibrator, DocStats},
    descendant, descendant_on_list, descendant_parallel, descendant_parallel_on, following,
    has_ancestor_in, has_child_in, has_descendant_in, mask, preceding, twig_match, ChainStep,
    ScratchPool, SpineLeg, TagBitmap, TagIndex, WorkerPool,
};

use crate::ast::NodeTest;
use crate::plan::{
    axis_of, PartAxis, PathPlan, PlannedStep, PredOp, SemijoinAxis, StepOp, TwigSpec, VertAxis,
};

/// Per-step trace of an evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Rendered step (`descendant::profile`).
    pub step: String,
    /// Rendered join operator that actually ran (`fragment`,
    /// `staircase(EstimationSkipping)`, …) — suffixed ` [replan]` when
    /// the adaptive executor switched it at a step boundary.
    pub op: String,
    /// Result size after node test and predicates.
    pub result_size: usize,
    /// Nodes/index entries the engine touched for this step.
    pub nodes_touched: u64,
    /// Tuples produced before duplicate elimination (naive/SQL engines;
    /// equals `result_size` for the staircase join, which never produces
    /// duplicates).
    pub tuples_produced: u64,
    /// Binary/galloping cursor repositionings (the leapfrog twig
    /// operator; zero for the scan-shaped joins).
    pub seeks: u64,
    /// The cost model's estimate for this step at the moment it ran
    /// (re-priced by the adaptive executor when it switched operators).
    pub est_cost: f64,
    /// Did the adaptive re-planner switch this step's operator before
    /// running it?
    pub replanned: bool,
}

impl StepTrace {
    /// The step's observed cost in the cost model's unit: nodes/index
    /// entries touched plus cursor seeks — the runtime quantity the
    /// estimate ([`StepTrace::est_cost`]) tries to predict.
    pub fn observed_cost(&self) -> f64 {
        (self.nodes_touched + self.seeks) as f64
    }
}

/// Evaluation statistics: one trace per step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalStats {
    /// Traces in evaluation order (predicate evaluations excluded).
    pub steps: Vec<StepTrace>,
}

impl EvalStats {
    /// Total nodes touched across steps.
    pub fn total_touched(&self) -> u64 {
        self.steps.iter().map(|s| s.nodes_touched).sum()
    }

    /// Total cursor seeks across steps (leapfrog twig steps; zero for
    /// plans without one).
    pub fn total_seeks(&self) -> u64 {
        self.steps.iter().map(|s| s.seeks).sum()
    }

    /// Total duplicates generated (and removed) across steps.
    pub fn total_duplicates(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.tuples_produced.saturating_sub(s.result_size as u64))
            .sum()
    }
}

/// The outcome of a path evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutput {
    /// Result node sequence (document order, duplicate-free).
    pub result: Context,
    /// Per-step statistics.
    pub stats: EvalStats,
}

/// The plan interpreter: a document plus exactly the auxiliary
/// structures the plan at hand requires (resolved by
/// [`crate::Session`]).
pub(crate) struct Executor<'a> {
    pub(crate) doc: &'a Doc,
    /// Prebuilt per-tag fragments; `Some` whenever the plan contains a
    /// prebuilt fragment join or semijoin.
    pub(crate) tags: Option<&'a TagIndex>,
    /// The SQL baseline's B-tree; `Some` whenever the plan contains an
    /// SQL step.
    pub(crate) sql: Option<&'a SqlEngine>,
    /// The session's persistent worker pool; width 1 means fully
    /// sequential execution (no handoff anywhere on the path).
    pub(crate) pool: &'a WorkerPool,
    /// The session's sharded scratch pools: concurrent rounds and
    /// queries each sweep out their own shard.
    pub(crate) scratch: &'a ScratchPool,
    /// The session's cached document statistics; at evaluation time
    /// they price the per-tag bitmap probe against the plain masked
    /// name-test filter.
    pub(crate) stats: &'a DocStats,
    /// The session-lifetime cost calibrator: every twig step reports
    /// its real seek count here, and the adaptive re-planner prices
    /// through the fitted factors.
    pub(crate) calibrator: &'a Calibrator,
}

impl<'a> Executor<'a> {
    /// Interprets one branch plan from an explicit context — the
    /// nested-loop predicate path ([`PredOp::Filter`] recurses into full
    /// path evaluation per candidate).
    pub(crate) fn run_branch(&self, branch: &PathPlan, context: &Context) -> EvalOutput {
        let mut ctx = if branch.absolute {
            Context::singleton(self.doc.root())
        } else {
            context.clone()
        };
        let mut stats = EvalStats::default();
        for step in &branch.steps {
            let (next, trace) = self.exec_step(&ctx, step);
            stats.steps.push(trace);
            ctx = next;
        }
        EvalOutput { result: ctx, stats }
    }

    /// Interprets one planned step (join, node test, predicates); also
    /// the per-lane fallback of the batch evaluator.
    pub(crate) fn exec_step(&self, ctx: &Context, step: &PlannedStep) -> (Context, StepTrace) {
        let (mut out, touched, produced, seeks) = self.exec_join_and_test(ctx, step);
        for pred in &step.predicates {
            out = self.exec_predicate(&out, pred);
        }
        let trace = StepTrace {
            step: step.rendered.clone(),
            op: rendered_op(step),
            result_size: out.len(),
            nodes_touched: touched,
            tuples_produced: produced.max(out.len() as u64),
            seeks,
            est_cost: step.estimate.cost,
            replanned: step.replanned,
        };
        (out, trace)
    }

    /// The prebuilt fragment index (resolved by the session whenever the
    /// plan calls for it; the scan fallback keeps this total even if a
    /// hand-built plan slips through without one).
    pub(crate) fn fragment_list(&self, name: &str) -> std::borrow::Cow<'a, [Pre]> {
        match self.tags {
            Some(idx) => std::borrow::Cow::Borrowed(idx.fragment_by_name(self.doc, name)),
            None => std::borrow::Cow::Owned(self.scan_list(name)),
        }
    }

    /// The fragment entries a windowed on-list join can actually use,
    /// resolved through the cracked index ([`TagIndex::fragment_window`])
    /// so a query over a narrow pre-range scans — and cracks — only
    /// that range instead of building the whole fragment.
    ///
    /// The window is result-safe by the join kernels' own reasoning:
    /// for the descendant join, list entries at or before a context
    /// node only trigger its Z-region break, and entries past every
    /// context subtree end are never reached; for the ancestor join,
    /// ancestors precede their context node in pre order, so `[0, max)`
    /// covers every probe.
    pub(crate) fn fragment_list_windowed(
        &self,
        name: &str,
        vert: VertAxis,
        contexts: &[&Context],
    ) -> std::borrow::Cow<'a, [Pre]> {
        let Some(idx) = self.tags else {
            return std::borrow::Cow::Owned(self.scan_list(name));
        };
        if contexts.iter().all(|c| c.is_empty()) {
            return std::borrow::Cow::Borrowed(&[]);
        }
        let post = self.doc.post_column();
        let (lo, hi) = match vert {
            VertAxis::Descendant => {
                // Descendants live strictly after their context node,
                // and a descendant's pre never exceeds `post(p) +
                // height` (pre(v) − post(v) = depth(v) − size(v), so
                // max descendant pre = post(p) + depth(p)).
                let lo = contexts
                    .iter()
                    .filter_map(|c| c.as_slice().first())
                    .map(|&p| p + 1)
                    .min()
                    .unwrap_or(0);
                let hi = contexts
                    .iter()
                    .flat_map(|c| c.as_slice())
                    .map(|&p| post[p as usize])
                    .max()
                    .unwrap_or(0)
                    .saturating_add(Pre::from(self.doc.height()))
                    .saturating_add(1)
                    .min(self.doc.len() as Pre);
                (lo, hi)
            }
            VertAxis::Ancestor => {
                // Ancestors precede their context node in pre order.
                let hi = contexts
                    .iter()
                    .filter_map(|c| c.as_slice().last())
                    .copied()
                    .max()
                    .unwrap_or(0);
                (0, hi)
            }
        };
        idx.fragment_window_by_name(self.doc, name, lo, hi)
    }

    /// `nametest(doc, name)` as a query-time selection scan.
    pub(crate) fn scan_list(&self, name: &str) -> Vec<Pre> {
        self.doc
            .tag_id(name)
            .map(|t| self.doc.elements_with_tag(t))
            .unwrap_or_default()
    }

    /// Applies the node test into `buf` (cleared first) through
    /// whichever masked filter the cost model picks: the cached
    /// per-tag bitmap — one word-aligned window select for gap-free
    /// candidate runs, one bit-probe per candidate otherwise — when
    /// [`DocStats::bitmap_worthwhile`] prices it (plus an amortized
    /// lazy build) below the gathered column loads, else the column
    /// mask kernels of [`apply_test_into`].
    pub(crate) fn test_into(&self, ctx: &Context, test: &NodeTest, axis: Axis, buf: &mut Vec<Pre>) {
        match self.bitmap_for(ctx, test, axis) {
            Some(bm) => {
                buf.clear();
                let cs = ctx.as_slice();
                // A gap-free run covers every position it spans, so
                // the name test degenerates to AND-ing word-aligned
                // bitmap slices: ~64 positions per load, zero words
                // skipped wholesale.
                let (first, last) = (cs[0], cs[cs.len() - 1]);
                if (last - first) as usize + 1 == cs.len() {
                    bm.select_window(first as usize, last as usize + 1, buf);
                } else {
                    mask::select_bitmap_candidates(bm, cs, buf);
                }
            }
            None => apply_test_into(self.doc, ctx, test, axis, buf),
        }
    }

    /// Applies the node test to an **owned** intermediate sequence:
    /// the survivors land in a buffer swept out of the session scratch
    /// pool and the input's allocation is recycled back into it, so
    /// steady-state filtering allocates nothing.
    fn test_pooled(&self, base: Context, test: &NodeTest, axis: Axis) -> Context {
        if matches!(test, NodeTest::AnyNode) {
            return base;
        }
        self.scratch.with(|s| {
            let mut buf = s.take();
            self.test_into(&base, test, axis, &mut buf);
            s.recycle(base);
            Context::from_sorted(buf)
        })
    }

    /// The cached per-tag bitmap serving `test` over `base`, when one
    /// is applicable — an element name test with the tag index already
    /// resolved for this plan — *and* the cost model prices the
    /// bit-probe filter below the gathered column loads.
    fn bitmap_for(&self, base: &Context, test: &NodeTest, axis: Axis) -> Option<&'a TagBitmap> {
        let NodeTest::Name(name) = test else {
            return None;
        };
        if base.is_empty() || axis == Axis::Attribute {
            return None; // the bitmap covers elements only
        }
        let tags = self.tags?;
        let tid = self.doc.tag_id(name)?;
        if !self
            .stats
            .bitmap_worthwhile(base.len() as f64, tags.bitmap_built(tid))
        {
            return None;
        }
        tags.bitmap(self.doc, tid)
    }

    /// Executes one lowered predicate against the candidate set.
    fn exec_predicate(&self, candidates: &Context, pred: &PredOp) -> Context {
        match pred {
            PredOp::Semijoin {
                axis,
                name,
                prebuilt,
            } => {
                let owned = if *prebuilt {
                    self.fragment_list(name)
                } else {
                    std::borrow::Cow::Owned(self.scan_list(name))
                };
                let list: &[Pre] = &owned;
                let (out, _) = match axis {
                    SemijoinAxis::Descendant => has_descendant_in(self.doc, candidates, list),
                    SemijoinAxis::Child => has_child_in(self.doc, candidates, list),
                    SemijoinAxis::Ancestor => has_ancestor_in(self.doc, candidates, list),
                };
                out
            }
            PredOp::Filter(sub) => Context::from_sorted(
                candidates
                    .iter()
                    .filter(|&v| {
                        !self
                            .run_branch(sub, &Context::singleton(v))
                            .result
                            .is_empty()
                    })
                    .collect::<Vec<Pre>>(),
            ),
        }
    }

    /// Executes the step's join operator and node test; returns
    /// (result, nodes touched, tuples produced before dedup, seeks).
    fn exec_join_and_test(&self, ctx: &Context, step: &PlannedStep) -> (Context, u64, u64, u64) {
        let doc = self.doc;
        match step.axis {
            Axis::Descendant => self.partitioning(ctx, PartAxis::Descendant, step),
            Axis::Ancestor => self.partitioning(ctx, PartAxis::Ancestor, step),
            Axis::Following => self.partitioning(ctx, PartAxis::Following, step),
            Axis::Preceding => self.partitioning(ctx, PartAxis::Preceding, step),
            Axis::DescendantOrSelf => {
                let (base, touched, produced, seeks) =
                    self.partitioning(ctx, PartAxis::Descendant, step);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced, seeks)
            }
            Axis::AncestorOrSelf => {
                let (base, touched, produced, seeks) =
                    self.partitioning(ctx, PartAxis::Ancestor, step);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced, seeks)
            }
            Axis::SelfAxis => {
                let out = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (out, ctx.len() as u64, 0, 0)
            }
            Axis::Parent => {
                let mut parents: Vec<Pre> = ctx
                    .iter()
                    .map(|c| doc.parent(c))
                    .filter(|&p| p != staircase_accel::NO_PARENT)
                    .collect();
                parents.sort_unstable();
                parents.dedup();
                let out = self.test_pooled(Context::from_sorted(parents), &step.test, Axis::Parent);
                (out, ctx.len() as u64, 0, 0)
            }
            Axis::Child => {
                // Per-context children via subtree jumps: O(Σ #children),
                // not O(|doc|). Nested context nodes can interleave their
                // child ranges, so sort afterwards (children sets are
                // disjoint — every node has one parent — so no dedup).
                let mut kids: Vec<Pre> = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    for child in doc.children(c) {
                        touched += 1;
                        if doc.kind(child) != NodeKind::Attribute {
                            kids.push(child);
                        }
                    }
                }
                kids.sort_unstable();
                let out = self.test_pooled(Context::from_sorted(kids), &step.test, Axis::Child);
                (out, touched, 0, 0)
            }
            Axis::Attribute => {
                let mut attrs = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    let mut v = c + 1;
                    while (v as usize) < doc.len() && doc.kind(v) == NodeKind::Attribute {
                        touched += 1;
                        if doc.parent(v) == c {
                            attrs.push(v);
                        }
                        v += 1;
                    }
                }
                let out =
                    self.test_pooled(Context::from_sorted(attrs), &step.test, Axis::Attribute);
                (out, touched, 0, 0)
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                // Per parent, the extremal context child bounds the sibling
                // range.
                use std::collections::HashMap;
                let mut extremal: HashMap<Pre, Pre> = HashMap::new();
                for c in ctx.iter() {
                    let p = doc.parent(c);
                    if p == staircase_accel::NO_PARENT {
                        continue;
                    }
                    let e = extremal.entry(p).or_insert(c);
                    if step.axis == Axis::FollowingSibling {
                        *e = (*e).min(c);
                    } else {
                        *e = (*e).max(c);
                    }
                }
                let mut sibs = Vec::new();
                let mut touched = 0u64;
                for v in doc.pres() {
                    touched += 1;
                    if doc.kind(v) == NodeKind::Attribute {
                        continue;
                    }
                    let p = doc.parent(v);
                    let Some(&e) = extremal.get(&p) else { continue };
                    let hit = if step.axis == Axis::FollowingSibling {
                        v > e
                    } else {
                        v < e
                    };
                    if hit {
                        sibs.push(v);
                    }
                }
                let out = self.test_pooled(Context::from_sorted(sibs), &step.test, step.axis);
                (out, touched, 0, 0)
            }
        }
    }

    /// Executes a partitioning-axis step with the planned operator.
    fn partitioning(
        &self,
        ctx: &Context,
        paxis: PartAxis,
        step: &PlannedStep,
    ) -> (Context, u64, u64, u64) {
        let doc = self.doc;
        match step.op {
            StepOp::Fragment { prescan } => {
                // The planner only emits fragment joins for name-tested
                // vertical steps; anything else falls through to the
                // plain join so a hand-built plan stays total.
                let (vert, name) = match (paxis, &step.test) {
                    (PartAxis::Descendant, NodeTest::Name(name)) => (VertAxis::Descendant, name),
                    (PartAxis::Ancestor, NodeTest::Name(name)) => (VertAxis::Ancestor, name),
                    _ => {
                        return self.plain_staircase(
                            ctx,
                            paxis,
                            step,
                            staircase_core::Variant::default(),
                        )
                    }
                };
                if prescan {
                    // nametest(doc, n) selection scan at query time; its
                    // cost is the whole plane (§4.4) — except for names
                    // absent from the dictionary, where no scan runs.
                    let scan_cost = if doc.tag_id(name).is_some() {
                        doc.len() as u64
                    } else {
                        0
                    };
                    let list = self.scan_list(name);
                    on_list_join(doc, vert, &list, ctx, scan_cost)
                } else {
                    let list = self.fragment_list_windowed(name, vert, &[ctx]);
                    on_list_join(doc, vert, &list, ctx, 0)
                }
            }
            StepOp::Staircase { variant } => self.plain_staircase(ctx, paxis, step, variant),
            // The horizontal scan ignores the variant: pruning collapses
            // the context to one node and the region is contiguous.
            StepOp::Horiz => {
                self.plain_staircase(ctx, paxis, step, staircase_core::Variant::default())
            }
            StepOp::Parallel { variant, threads } => {
                // On a session with a real pool the chunks run there (no
                // spawning); a width-1 session keeps the engine's original
                // spawn-per-call semantics so `parallel(n)` still means n
                // concurrent workers.
                let pooled = self.pool.width() > 1;
                let (base, stats) = match (paxis, pooled) {
                    (PartAxis::Descendant, true) => {
                        descendant_parallel_on(doc, ctx, variant, threads, self.pool)
                    }
                    (PartAxis::Descendant, false) => {
                        descendant_parallel(doc, ctx, variant, threads)
                    }
                    (PartAxis::Ancestor, true) => {
                        ancestor_parallel_on(doc, ctx, variant, threads, self.pool)
                    }
                    (PartAxis::Ancestor, false) => ancestor_parallel(doc, ctx, variant, threads),
                    (PartAxis::Following, _) => following(doc, ctx),
                    (PartAxis::Preceding, _) => preceding(doc, ctx),
                };
                let out = self.test_pooled(base, &step.test, axis_of(paxis));
                (out, stats.nodes_touched(), 0, 0)
            }
            StepOp::Naive | StepOp::Structural => {
                // Structural never reaches a partitioning axis from the
                // planner; route it through the naive region scan so a
                // hand-built plan still evaluates correctly.
                let (base, stats) = naive_step(doc, ctx, axis_of(paxis));
                let out = self.test_pooled(base, &step.test, axis_of(paxis));
                (out, stats.nodes_scanned, stats.tuples_produced, 0)
            }
            StepOp::Sql {
                eq1_window,
                early_nametest,
            } => {
                let pushed_tag = match (early_nametest, &step.test) {
                    (true, NodeTest::Name(name)) => doc.tag_id(name),
                    _ => None,
                };
                if early_nametest && matches!(step.test, NodeTest::Name(_)) && pushed_tag.is_none()
                {
                    // Name never occurs in the document: empty result.
                    return (Context::empty(), 0, 0, 0);
                }
                let Some(sql) = self.sql else {
                    // Resolution always provides the B-tree for SQL plans;
                    // stay total for hand-built plans.
                    let (base, stats) = naive_step(doc, ctx, axis_of(paxis));
                    let out = self.test_pooled(base, &step.test, axis_of(paxis));
                    return (out, stats.nodes_scanned, stats.tuples_produced, 0);
                };
                let opts = SqlPlanOptions {
                    eq1_window,
                    early_nametest: pushed_tag,
                };
                let (base, stats) = sql.axis_step(ctx, axis_of(paxis), opts);
                let out = if pushed_tag.is_some() {
                    base
                } else {
                    self.test_pooled(base, &step.test, axis_of(paxis))
                };
                (out, stats.index_entries_scanned, stats.tuples_produced, 0)
            }
            StepOp::Twig(ref spec) => {
                // The planner only emits twig steps on the descendant
                // axis; any other pairing (hand-built plan) falls back
                // to the plain join plus the step's residual test.
                if paxis != PartAxis::Descendant {
                    return self.plain_staircase(
                        ctx,
                        paxis,
                        step,
                        staircase_core::Variant::default(),
                    );
                }
                self.twig_step(ctx, spec, step.estimate.cost)
            }
        }
    }

    /// Executes a fused twig region: resolves one sorted list per spine
    /// leg and chain step (prebuilt fragments when the session provides
    /// the index, selection scans otherwise) and hands them to the
    /// multiway leapfrog intersection [`staircase_core::twig_match`].
    /// The result is the output (last) leg's binding in document order.
    fn twig_step(&self, ctx: &Context, spec: &TwigSpec, est_cost: f64) -> (Context, u64, u64, u64) {
        let mut leg_lists = Vec::with_capacity(spec.spine.len());
        let mut chain_lists = Vec::with_capacity(spec.spine.len());
        for leg in &spec.spine {
            leg_lists.push(self.fragment_list(&leg.name));
            let per_leg: Vec<Vec<std::borrow::Cow<'a, [Pre]>>> = leg
                .chains
                .iter()
                .map(|chain| chain.iter().map(|(_, n)| self.fragment_list(n)).collect())
                .collect();
            chain_lists.push(per_leg);
        }
        let spine: Vec<SpineLeg<'_>> = spec
            .spine
            .iter()
            .enumerate()
            .map(|(i, leg)| SpineLeg {
                edge: leg.edge,
                list: &leg_lists[i],
                chains: leg
                    .chains
                    .iter()
                    .enumerate()
                    .map(|(j, chain)| {
                        chain
                            .iter()
                            .enumerate()
                            .map(|(k, (edge, _))| ChainStep {
                                edge: *edge,
                                list: &chain_lists[i][j][k],
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        let (out, stats) = twig_match(self.doc, &spine, ctx);
        // Session-lifetime feedback: fold this step's *actual* seek
        // count against the frontier cost the planner predicted, so
        // later twig-vs-step decisions price from measured constants.
        self.calibrator.observe_twig(est_cost, stats.seeks);
        (out, stats.nodes_touched(), 0, stats.seeks)
    }

    /// The serial staircase join over the whole plane, plus node test.
    fn plain_staircase(
        &self,
        ctx: &Context,
        paxis: PartAxis,
        step: &PlannedStep,
        variant: staircase_core::Variant,
    ) -> (Context, u64, u64, u64) {
        let doc = self.doc;
        let (base, stats) = match paxis {
            PartAxis::Descendant => descendant(doc, ctx, variant),
            PartAxis::Ancestor => ancestor(doc, ctx, variant),
            PartAxis::Following => following(doc, ctx),
            PartAxis::Preceding => preceding(doc, ctx),
        };
        let out = self.test_pooled(base, &step.test, axis_of(paxis));
        (out, stats.nodes_touched(), 0, 0)
    }
}

/// The trace's rendered operator: the planned operator, suffixed with
/// the `[replan]` marker when the adaptive executor switched it.
pub(crate) fn rendered_op(step: &PlannedStep) -> String {
    if step.replanned {
        format!("{} [replan]", step.op)
    } else {
        step.op.to_string()
    }
}

/// The two vertical axes' on-list (fragment) join with its name-test
/// scan cost folded in.
fn on_list_join(
    doc: &Doc,
    vert: VertAxis,
    list: &[Pre],
    ctx: &Context,
    scan_cost: u64,
) -> (Context, u64, u64, u64) {
    let (out, stats) = match vert {
        VertAxis::Descendant => descendant_on_list(doc, list, ctx),
        VertAxis::Ancestor => ancestor_on_list(doc, list, ctx),
    };
    (out, stats.nodes_touched() + scan_cost, 0, 0)
}

/// The principal node kind of an axis (attributes for `attribute::`,
/// elements everywhere else).
fn principal_kind(axis: Axis) -> NodeKind {
    if axis == Axis::Attribute {
        NodeKind::Attribute
    } else {
        NodeKind::Element
    }
}

/// Applies a node test to a node sequence, appending the survivors to
/// `out` (cleared first). Every per-element predicate runs through the
/// chunked 64-lane mask kernels in [`staircase_core::mask`] — gathered
/// column loads, branch-free mask build, one select iteration per
/// survivor; only targeted processing-instruction tests (a string
/// compare per node) stay scalar.
pub(crate) fn apply_test_into(
    doc: &Doc,
    ctx: &Context,
    test: &NodeTest,
    axis: Axis,
    out: &mut Vec<Pre>,
) {
    out.clear();
    let kind = doc.kind_column();
    let cands = ctx.as_slice();
    match test {
        NodeTest::AnyNode => out.extend_from_slice(cands),
        // Name tests compare interned tag ids, not strings: one
        // dictionary lookup per step instead of one string comparison
        // per node.
        NodeTest::Name(name) => {
            let Some(tid) = doc.tag_id(name) else {
                return; // name absent from the document
            };
            mask::select_tag_candidates(
                kind,
                doc.tag_column(),
                principal_kind(axis) as u8,
                tid,
                cands,
                out,
            );
        }
        NodeTest::AnyPrincipal => {
            let keep = mask::KindSet::new().with(principal_kind(axis));
            mask::select_kind_candidates(kind, &keep, cands, out);
        }
        NodeTest::Text => {
            let keep = mask::KindSet::new().with(NodeKind::Text);
            mask::select_kind_candidates(kind, &keep, cands, out);
        }
        NodeTest::Comment => {
            let keep = mask::KindSet::new().with(NodeKind::Comment);
            mask::select_kind_candidates(kind, &keep, cands, out);
        }
        NodeTest::Pi(None) => {
            let keep = mask::KindSet::new().with(NodeKind::Pi);
            mask::select_kind_candidates(kind, &keep, cands, out);
        }
        NodeTest::Pi(Some(target)) => {
            out.extend(ctx.iter().filter(|&v| {
                doc.kind(v) == NodeKind::Pi && doc.tag_name(v) == Some(target.as_str())
            }))
        }
    }
}

/// Applies a node test to a node sequence into a fresh allocation; the
/// executor's hot paths go through [`Executor::test_pooled`] instead,
/// which draws the buffer from the session scratch pool.
pub(crate) fn apply_test(doc: &Doc, ctx: &Context, test: &NodeTest, axis: Axis) -> Context {
    // node() keeps everything: one memcpy instead of a per-node loop.
    if matches!(test, NodeTest::AnyNode) {
        return ctx.clone();
    }
    let mut out = Vec::new();
    apply_test_into(doc, ctx, test, axis, &mut out);
    Context::from_sorted(out)
}

/// Merges two sorted, duplicate-free sequences.
pub(crate) fn merge(a: &Context, b: &Context) -> Context {
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Context::from_sorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::session::Session;
    use staircase_accel::NodeKind;
    use staircase_core::Variant;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn auction_doc() -> Doc {
        Doc::from_xml(
            "<site><open_auctions>\
             <open_auction id='a0'><bidder><increase>1</increase></bidder>\
             <bidder><increase>2</increase></bidder></open_auction>\
             <open_auction id='a1'><bidder><date/></bidder></open_auction>\
             </open_auctions>\
             <people><person id='p0'><profile><education>College</education></profile></person>\
             <person id='p1'><profile/></person></people></site>",
        )
        .unwrap()
    }

    fn engines() -> [Engine; 8] {
        [
            Engine::staircase().variant(Variant::Basic).build().unwrap(),
            Engine::staircase()
                .variant(Variant::EstimationSkipping)
                .build()
                .unwrap(),
            Engine::staircase().pushdown(true).build().unwrap(),
            Engine::staircase().fragmented(true).build().unwrap(),
            Engine::staircase().parallel(3).build().unwrap(),
            Engine::naive(),
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()
                .unwrap(),
            Engine::auto(),
        ]
    }

    fn names(doc: &Doc, ctx: &Context) -> Vec<String> {
        ctx.iter()
            .map(|v| doc.tag_name(v).unwrap_or("#text").to_string())
            .collect()
    }

    #[test]
    fn q1_on_auction_doc_all_engines() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session
                .run("/descendant::profile/descendant::education", engine)
                .unwrap();
            assert_eq!(
                names(session.doc(), out.nodes()),
                ["education"],
                "{engine:?}"
            );
        }
    }

    #[test]
    fn q2_on_auction_doc_all_engines() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session
                .run("/descendant::increase/ancestor::bidder", engine)
                .unwrap();
            assert_eq!(out.len(), 2, "{engine:?}");
            assert_eq!(
                names(session.doc(), out.nodes()),
                ["bidder", "bidder"],
                "{engine:?}"
            );
        }
    }

    #[test]
    fn q2_rewrite_equivalence() {
        // §4.4: /descendant::increase/ancestor::bidder ≡
        // /descendant::bidder[descendant::increase].
        let session = Session::new(auction_doc());
        let direct = session
            .prepare("/descendant::increase/ancestor::bidder")
            .unwrap();
        let rewrite = session
            .prepare("/descendant::bidder[descendant::increase]")
            .unwrap();
        for engine in engines() {
            assert_eq!(
                direct.run(engine).nodes(),
                rewrite.run(engine).nodes(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn figure3_following_descendant() {
        let session = Session::new(figure1());
        // (c)/following/descendant — but the session's default context is
        // the root, so phrase it as a path from c.
        let query = session
            .prepare("following::node()/descendant::node()")
            .unwrap();
        let out = query
            .run_from(&Context::singleton(2), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "g", "h", "i", "j"]);
    }

    #[test]
    fn child_and_parent_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("child::node()")
            .unwrap()
            .run_from(&Context::singleton(4), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "i"]);
        let out = session
            .prepare("..")
            .unwrap()
            .run_from(&Context::singleton(5), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["e"]);
    }

    #[test]
    fn or_self_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("ancestor-or-self::node()")
            .unwrap()
            .run_from(&Context::singleton(6), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["a", "e", "f", "g"]);
        let out = session
            .prepare("descendant-or-self::node()")
            .unwrap()
            .run_from(&Context::singleton(5), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "g", "h"]);
    }

    #[test]
    fn sibling_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("following-sibling::node()")
            .unwrap()
            .run_from(&Context::singleton(1), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["d", "e"]);
        let out = session
            .prepare("preceding-sibling::node()")
            .unwrap()
            .run_from(&Context::singleton(4), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["b", "d"]);
    }

    #[test]
    fn attribute_axis_and_abbreviation() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::person/@id", Engine::default())
            .unwrap();
        assert_eq!(out.len(), 2);
        for v in &out {
            assert_eq!(session.doc().kind(v), NodeKind::Attribute);
            assert_eq!(session.doc().tag_name(v), Some("id"));
        }
    }

    #[test]
    fn double_slash_everything() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session.run("//bidder", engine).unwrap();
            assert_eq!(out.len(), 3, "{engine:?}");
        }
    }

    #[test]
    fn text_node_test() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/child::text()", Engine::default())
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(session.doc().content(out.nodes().as_slice()[0]), Some("1"));
    }

    #[test]
    fn star_matches_elements_only() {
        let session = Session::parse_xml("<a x='1'>text<b/><!--c--></a>").unwrap();
        let out = session.run("/descendant::*", Engine::default()).unwrap();
        assert_eq!(out.len(), 1); // only <b>
    }

    #[test]
    fn stats_track_steps() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/ancestor::bidder", Engine::default())
            .unwrap();
        assert_eq!(out.stats().steps.len(), 2);
        assert_eq!(out.stats().steps[0].step, "descendant::increase");
        assert!(out.stats().total_touched() > 0);
        // Staircase join never generates duplicates.
        assert_eq!(out.stats().total_duplicates(), 0);
    }

    #[test]
    fn naive_engine_reports_duplicates() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/ancestor::node()", Engine::naive())
            .unwrap();
        assert!(out.stats().total_duplicates() > 0);
    }

    #[test]
    fn unknown_name_yields_empty() {
        let session = Session::new(figure1());
        for engine in engines() {
            let out = session.run("/descendant::zzz", engine).unwrap();
            assert!(out.is_empty(), "{engine:?}");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let session = Session::new(figure1());
        assert!(session.run("///", Engine::default()).is_err());
        assert!(session.prepare("//[").is_err());
    }

    #[test]
    fn engines_agree_on_composite_query() {
        let session = Session::new(auction_doc());
        let query = session
            .prepare("//open_auction[bidder/increase]/@id")
            .unwrap();
        let reference = query.run(Engine::naive());
        assert_eq!(reference.len(), 1);
        for engine in engines() {
            let out = query.run(engine);
            assert_eq!(out.nodes(), reference.nodes(), "{engine:?}");
        }
    }

    #[test]
    fn auto_matches_default_on_every_fixture_query() {
        let session = Session::new(auction_doc());
        for query in [
            "/descendant::profile/descendant::education",
            "/descendant::increase/ancestor::bidder",
            "//open_auction[bidder/increase]/@id",
            "//bidder/following::node()",
            "/descendant::node()/preceding::increase",
        ] {
            let auto = session.run(query, Engine::auto()).unwrap();
            let fixed = session.run(query, Engine::default()).unwrap();
            assert_eq!(auto.nodes(), fixed.nodes(), "{query}");
        }
    }
}
