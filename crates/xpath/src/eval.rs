//! Path evaluation over pluggable axis-step engines.
//!
//! The evaluation core is [`EvalCx`], an internal context pairing a
//! document with a *resolved* engine — an engine whose auxiliary
//! structures (per-tag fragments, the SQL B-tree) have already been
//! built. [`crate::Session`] resolves engines against its lazily built,
//! cached structures. Everything below the resolution step is total: no
//! panics, no `unwrap`. Multi-query (batched) evaluation builds on the
//! same primitives in [`crate::batch`].

use staircase_accel::{Axis, Context, Doc, NodeKind, Pre};
use staircase_baselines::{naive_step, SqlEngine, SqlPlanOptions};
use staircase_core::{
    ancestor, ancestor_on_list, ancestor_parallel, descendant, descendant_on_list,
    descendant_parallel, following, has_ancestor_in, has_child_in, has_descendant_in, preceding,
    TagIndex, Variant,
};

use crate::ast::{NodeTest, Path, Predicate, Step, UnionExpr};

/// Per-step trace of an evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// Rendered step (`descendant::profile`).
    pub step: String,
    /// Result size after node test and predicates.
    pub result_size: usize,
    /// Nodes/index entries the engine touched for this step.
    pub nodes_touched: u64,
    /// Tuples produced before duplicate elimination (naive/SQL engines;
    /// equals `result_size` for the staircase join, which never produces
    /// duplicates).
    pub tuples_produced: u64,
}

/// Evaluation statistics: one trace per step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Traces in evaluation order (predicate evaluations excluded).
    pub steps: Vec<StepTrace>,
}

impl EvalStats {
    /// Total nodes touched across steps.
    pub fn total_touched(&self) -> u64 {
        self.steps.iter().map(|s| s.nodes_touched).sum()
    }

    /// Total duplicates generated (and removed) across steps.
    pub fn total_duplicates(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.tuples_produced.saturating_sub(s.result_size as u64))
            .sum()
    }
}

/// The outcome of a path evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutput {
    /// Result node sequence (document order, duplicate-free).
    pub result: Context,
    /// Per-step statistics.
    pub stats: EvalStats,
}

/// An engine whose auxiliary structures are in hand; produced by
/// [`crate::Session`] against its cached structures.
pub(crate) enum ResolvedEngine<'a> {
    /// Staircase join, optionally with query-time name-test pushdown.
    Staircase {
        /// Skipping refinement.
        variant: Variant,
        /// §4.4 Experiment 3 query-time pushdown.
        pushdown: bool,
    },
    /// Staircase join over prebuilt per-tag fragments (§6).
    Fragmented {
        /// Skipping refinement.
        variant: Variant,
        /// The fragments, built at document loading time.
        tags: &'a TagIndex,
    },
    /// Partitioned parallel staircase join; `threads >= 1` is guaranteed
    /// by the engine builder.
    Parallel {
        /// Skipping refinement.
        variant: Variant,
        /// Worker count.
        threads: usize,
    },
    /// Per-context region queries + duplicate elimination (§3.1).
    Naive,
    /// Tree-unaware B-tree plan (Figure 3).
    Sql {
        /// Paper line-7 window predicate.
        eq1_window: bool,
        /// Filter by tag during the index scan.
        early_nametest: bool,
        /// The prebuilt concatenated-key B-tree.
        sql: &'a SqlEngine,
    },
}

/// The four partitioning axes, as a closed enum so axis dispatch below
/// needs no unreachable arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PartAxis {
    Descendant,
    Ancestor,
    Following,
    Preceding,
}

/// The two axes with a fragment (on-list) join form.
#[derive(Debug, Clone, Copy)]
enum VertAxis {
    Descendant,
    Ancestor,
}

/// The internal evaluation context: document + resolved engine.
pub(crate) struct EvalCx<'a> {
    pub(crate) doc: &'a Doc,
    pub(crate) engine: ResolvedEngine<'a>,
}

impl<'a> EvalCx<'a> {
    /// Evaluates a union expression: each branch independently from
    /// `context`, results merged into document order (duplicate-free).
    pub(crate) fn evaluate_union(&self, expr: &UnionExpr, context: &Context) -> EvalOutput {
        let mut branches = expr.branches.iter().map(|p| self.evaluate_path(p, context));
        let Some(mut acc) = branches.next() else {
            // The parser guarantees at least one branch; an empty union is
            // harmlessly empty rather than a panic.
            return EvalOutput {
                result: Context::empty(),
                stats: EvalStats::default(),
            };
        };
        for out in branches {
            acc.result = merge(&acc.result, &out.result);
            acc.stats.steps.extend(out.stats.steps);
        }
        acc
    }

    /// Evaluates a parsed path from an explicit context.
    pub(crate) fn evaluate_path(&self, path: &Path, context: &Context) -> EvalOutput {
        let mut ctx = if path.absolute {
            Context::singleton(self.doc.root())
        } else {
            context.clone()
        };
        let mut stats = EvalStats::default();
        for step in &path.steps {
            let (next, trace) = self.eval_step(&ctx, step);
            stats.steps.push(trace);
            ctx = next;
        }
        EvalOutput { result: ctx, stats }
    }

    /// Evaluates one step (axis, node test, predicates) from `ctx`; also
    /// the per-query fallback of the batch evaluator.
    pub(crate) fn eval_step(&self, ctx: &Context, step: &Step) -> (Context, StepTrace) {
        let (mut out, touched, produced) = self.eval_axis_and_test(ctx, step);
        for pred in &step.predicates {
            let Predicate::Exists(path) = pred;
            out = match self.try_semijoin_predicate(&out, path) {
                Some(filtered) => filtered,
                None => Context::from_sorted(
                    out.iter()
                        .filter(|&v| {
                            !self
                                .evaluate_path(path, &Context::singleton(v))
                                .result
                                .is_empty()
                        })
                        .collect::<Vec<Pre>>(),
                ),
            };
        }
        let trace = StepTrace {
            step: step.to_string(),
            result_size: out.len(),
            nodes_touched: touched,
            tuples_produced: produced.max(out.len() as u64),
        };
        (out, trace)
    }

    /// The tag fragments, when the engine prebuilt them.
    fn fragments(&self) -> Option<&'a TagIndex> {
        match self.engine {
            ResolvedEngine::Fragmented { tags, .. } => Some(tags),
            _ => None,
        }
    }

    /// Fast path for simple existential predicates on staircase-family
    /// engines: `[descendant::t]`, `[child::t]` (also the abbreviated
    /// `[t]`) and `[ancestor::t]` become one semijoin probe per candidate
    /// instead of a full path evaluation (§3.3's empty-region argument:
    /// the first fragment node after `c` decides the predicate).
    fn try_semijoin_predicate(&self, candidates: &Context, path: &Path) -> Option<Context> {
        if !matches!(
            self.engine,
            ResolvedEngine::Staircase { .. }
                | ResolvedEngine::Fragmented { .. }
                | ResolvedEngine::Parallel { .. }
        ) {
            return None;
        }
        if path.absolute || path.steps.len() != 1 {
            return None;
        }
        let step = &path.steps[0];
        if !step.predicates.is_empty() {
            return None;
        }
        let NodeTest::Name(name) = &step.test else {
            return None;
        };
        let doc = self.doc;
        let owned;
        let list: &[Pre] = if let Some(idx) = self.fragments() {
            idx.fragment_by_name(doc, name)
        } else {
            owned = doc
                .tag_id(name)
                .map(|t| doc.elements_with_tag(t))
                .unwrap_or_default();
            &owned
        };
        let (out, _) = match step.axis {
            Axis::Descendant => has_descendant_in(doc, candidates, list),
            Axis::Child => has_child_in(doc, candidates, list),
            Axis::Ancestor => has_ancestor_in(doc, candidates, list),
            _ => return None,
        };
        Some(out)
    }

    /// Evaluates axis + node test; returns (result, nodes touched, tuples
    /// produced before dedup).
    fn eval_axis_and_test(&self, ctx: &Context, step: &Step) -> (Context, u64, u64) {
        let doc = self.doc;
        match step.axis {
            Axis::Descendant => self.partitioning_step(ctx, PartAxis::Descendant, &step.test),
            Axis::Ancestor => self.partitioning_step(ctx, PartAxis::Ancestor, &step.test),
            Axis::Following => self.partitioning_step(ctx, PartAxis::Following, &step.test),
            Axis::Preceding => self.partitioning_step(ctx, PartAxis::Preceding, &step.test),
            Axis::DescendantOrSelf => {
                let (base, touched, produced) =
                    self.partitioning_step(ctx, PartAxis::Descendant, &step.test);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced)
            }
            Axis::AncestorOrSelf => {
                let (base, touched, produced) =
                    self.partitioning_step(ctx, PartAxis::Ancestor, &step.test);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced)
            }
            Axis::SelfAxis => {
                let out = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (out, ctx.len() as u64, 0)
            }
            Axis::Parent => {
                let mut parents: Vec<Pre> = ctx
                    .iter()
                    .map(|c| doc.parent(c))
                    .filter(|&p| p != staircase_accel::NO_PARENT)
                    .collect();
                parents.sort_unstable();
                parents.dedup();
                let out = apply_test(
                    doc,
                    &Context::from_sorted(parents),
                    &step.test,
                    Axis::Parent,
                );
                (out, ctx.len() as u64, 0)
            }
            Axis::Child => {
                // Per-context children via subtree jumps: O(Σ #children),
                // not O(|doc|). Nested context nodes can interleave their
                // child ranges, so sort afterwards (children sets are
                // disjoint — every node has one parent — so no dedup).
                let mut kids: Vec<Pre> = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    for child in doc.children(c) {
                        touched += 1;
                        if doc.kind(child) != NodeKind::Attribute {
                            kids.push(child);
                        }
                    }
                }
                kids.sort_unstable();
                let out = apply_test(doc, &Context::from_sorted(kids), &step.test, Axis::Child);
                (out, touched, 0)
            }
            Axis::Attribute => {
                let mut attrs = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    let mut v = c + 1;
                    while (v as usize) < doc.len() && doc.kind(v) == NodeKind::Attribute {
                        touched += 1;
                        if doc.parent(v) == c {
                            attrs.push(v);
                        }
                        v += 1;
                    }
                }
                let out = apply_test(
                    doc,
                    &Context::from_sorted(attrs),
                    &step.test,
                    Axis::Attribute,
                );
                (out, touched, 0)
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                // Per parent, the extremal context child bounds the sibling
                // range.
                use std::collections::HashMap;
                let mut extremal: HashMap<Pre, Pre> = HashMap::new();
                for c in ctx.iter() {
                    let p = doc.parent(c);
                    if p == staircase_accel::NO_PARENT {
                        continue;
                    }
                    let e = extremal.entry(p).or_insert(c);
                    if step.axis == Axis::FollowingSibling {
                        *e = (*e).min(c);
                    } else {
                        *e = (*e).max(c);
                    }
                }
                let mut sibs = Vec::new();
                let mut touched = 0u64;
                for v in doc.pres() {
                    touched += 1;
                    if doc.kind(v) == NodeKind::Attribute {
                        continue;
                    }
                    let p = doc.parent(v);
                    let Some(&e) = extremal.get(&p) else { continue };
                    let hit = if step.axis == Axis::FollowingSibling {
                        v > e
                    } else {
                        v < e
                    };
                    if hit {
                        sibs.push(v);
                    }
                }
                let out = apply_test(doc, &Context::from_sorted(sibs), &step.test, step.axis);
                (out, touched, 0)
            }
        }
    }

    /// A name-tested descendant/ancestor step as an on-list (fragment)
    /// join, when the engine supports it: prebuilt fragments (§6) or a
    /// query-time name-test scan (§4.4 early nametest) — the join itself
    /// is identical.
    fn fragment_step(
        &self,
        ctx: &Context,
        vert: VertAxis,
        name: &str,
    ) -> Option<(Context, u64, u64)> {
        let doc = self.doc;
        match self.engine {
            ResolvedEngine::Fragmented { tags, .. } => Some(on_list_join(
                doc,
                vert,
                tags.fragment_by_name(doc, name),
                ctx,
                0,
            )),
            ResolvedEngine::Staircase { pushdown: true, .. } => {
                // nametest(doc, n) selection scan at query time.
                let list = doc
                    .tag_id(name)
                    .map(|t| doc.elements_with_tag(t))
                    .unwrap_or_default();
                Some(on_list_join(doc, vert, &list, ctx, doc.len() as u64))
            }
            _ => None,
        }
    }

    fn partitioning_step(
        &self,
        ctx: &Context,
        paxis: PartAxis,
        test: &NodeTest,
    ) -> (Context, u64, u64) {
        let doc = self.doc;
        // Fragment fast path: name tests on the two vertical axes.
        if let NodeTest::Name(name) = test {
            let vert = match paxis {
                PartAxis::Descendant => Some(VertAxis::Descendant),
                PartAxis::Ancestor => Some(VertAxis::Ancestor),
                _ => None,
            };
            if let Some(vert) = vert {
                if let Some(out) = self.fragment_step(ctx, vert, name) {
                    return out;
                }
            }
        }
        match self.engine {
            ResolvedEngine::Staircase { variant, .. }
            | ResolvedEngine::Fragmented { variant, .. } => {
                let (base, stats) = match paxis {
                    PartAxis::Descendant => descendant(doc, ctx, variant),
                    PartAxis::Ancestor => ancestor(doc, ctx, variant),
                    PartAxis::Following => following(doc, ctx),
                    PartAxis::Preceding => preceding(doc, ctx),
                };
                let out = apply_test(doc, &base, test, axis_of(paxis));
                (out, stats.nodes_touched(), 0)
            }
            ResolvedEngine::Parallel { variant, threads } => {
                let (base, stats) = match paxis {
                    PartAxis::Descendant => descendant_parallel(doc, ctx, variant, threads),
                    PartAxis::Ancestor => ancestor_parallel(doc, ctx, variant, threads),
                    PartAxis::Following => following(doc, ctx),
                    PartAxis::Preceding => preceding(doc, ctx),
                };
                let out = apply_test(doc, &base, test, axis_of(paxis));
                (out, stats.nodes_touched(), 0)
            }
            ResolvedEngine::Naive => {
                let (base, stats) = naive_step(doc, ctx, axis_of(paxis));
                let out = apply_test(doc, &base, test, axis_of(paxis));
                (out, stats.nodes_scanned, stats.tuples_produced)
            }
            ResolvedEngine::Sql {
                eq1_window,
                early_nametest,
                sql,
            } => {
                let pushed_tag = match (early_nametest, test) {
                    (true, NodeTest::Name(name)) => doc.tag_id(name),
                    _ => None,
                };
                if early_nametest && matches!(test, NodeTest::Name(_)) && pushed_tag.is_none() {
                    // Name never occurs in the document: empty result.
                    return (Context::empty(), 0, 0);
                }
                let opts = SqlPlanOptions {
                    eq1_window,
                    early_nametest: pushed_tag,
                };
                let (base, stats) = sql.axis_step(ctx, axis_of(paxis), opts);
                let out = if pushed_tag.is_some() {
                    base
                } else {
                    apply_test(doc, &base, test, axis_of(paxis))
                };
                (out, stats.index_entries_scanned, stats.tuples_produced)
            }
        }
    }
}

/// The on-list (fragment) join with its name-test scan cost folded in.
fn on_list_join(
    doc: &Doc,
    vert: VertAxis,
    list: &[Pre],
    ctx: &Context,
    scan_cost: u64,
) -> (Context, u64, u64) {
    let (out, stats) = match vert {
        VertAxis::Descendant => descendant_on_list(doc, list, ctx),
        VertAxis::Ancestor => ancestor_on_list(doc, list, ctx),
    };
    (out, stats.nodes_touched() + scan_cost, 0)
}

fn axis_of(paxis: PartAxis) -> Axis {
    match paxis {
        PartAxis::Descendant => Axis::Descendant,
        PartAxis::Ancestor => Axis::Ancestor,
        PartAxis::Following => Axis::Following,
        PartAxis::Preceding => Axis::Preceding,
    }
}

/// Applies a node test to a node sequence.
pub(crate) fn apply_test(doc: &Doc, ctx: &Context, test: &NodeTest, axis: Axis) -> Context {
    // Name tests compare interned tag ids, not strings: one dictionary
    // lookup per step instead of one string comparison per node.
    if let NodeTest::Name(name) = test {
        let want = if axis == Axis::Attribute {
            NodeKind::Attribute
        } else {
            NodeKind::Element
        };
        let Some(tid) = doc.tag_id(name) else {
            return Context::empty(); // name absent from the document
        };
        return Context::from_sorted(
            ctx.iter()
                .filter(|&v| doc.kind(v) == want && doc.tag(v) == tid)
                .collect(),
        );
    }
    let keep = |v: Pre| -> bool {
        let kind = doc.kind(v);
        match test {
            NodeTest::AnyNode => true,
            NodeTest::AnyPrincipal | NodeTest::Name(_) => {
                if axis == Axis::Attribute {
                    kind == NodeKind::Attribute
                } else {
                    kind == NodeKind::Element
                }
            }
            NodeTest::Text => kind == NodeKind::Text,
            NodeTest::Comment => kind == NodeKind::Comment,
            NodeTest::Pi(target) => {
                kind == NodeKind::Pi
                    && target
                        .as_ref()
                        .is_none_or(|t| doc.tag_name(v) == Some(t.as_str()))
            }
        }
    };
    Context::from_sorted(ctx.iter().filter(|&v| keep(v)).collect())
}

/// Merges two sorted, duplicate-free sequences.
pub(crate) fn merge(a: &Context, b: &Context) -> Context {
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Context::from_sorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::session::Session;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn auction_doc() -> Doc {
        Doc::from_xml(
            "<site><open_auctions>\
             <open_auction id='a0'><bidder><increase>1</increase></bidder>\
             <bidder><increase>2</increase></bidder></open_auction>\
             <open_auction id='a1'><bidder><date/></bidder></open_auction>\
             </open_auctions>\
             <people><person id='p0'><profile><education>College</education></profile></person>\
             <person id='p1'><profile/></person></people></site>",
        )
        .unwrap()
    }

    fn engines() -> [Engine; 7] {
        [
            Engine::staircase().variant(Variant::Basic).build().unwrap(),
            Engine::staircase()
                .variant(Variant::EstimationSkipping)
                .build()
                .unwrap(),
            Engine::staircase().pushdown(true).build().unwrap(),
            Engine::staircase().fragmented(true).build().unwrap(),
            Engine::staircase().parallel(3).build().unwrap(),
            Engine::naive(),
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()
                .unwrap(),
        ]
    }

    fn names(doc: &Doc, ctx: &Context) -> Vec<String> {
        ctx.iter()
            .map(|v| doc.tag_name(v).unwrap_or("#text").to_string())
            .collect()
    }

    #[test]
    fn q1_on_auction_doc_all_engines() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session
                .run("/descendant::profile/descendant::education", engine)
                .unwrap();
            assert_eq!(
                names(session.doc(), out.nodes()),
                ["education"],
                "{engine:?}"
            );
        }
    }

    #[test]
    fn q2_on_auction_doc_all_engines() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session
                .run("/descendant::increase/ancestor::bidder", engine)
                .unwrap();
            assert_eq!(out.len(), 2, "{engine:?}");
            assert_eq!(
                names(session.doc(), out.nodes()),
                ["bidder", "bidder"],
                "{engine:?}"
            );
        }
    }

    #[test]
    fn q2_rewrite_equivalence() {
        // §4.4: /descendant::increase/ancestor::bidder ≡
        // /descendant::bidder[descendant::increase].
        let session = Session::new(auction_doc());
        let direct = session
            .prepare("/descendant::increase/ancestor::bidder")
            .unwrap();
        let rewrite = session
            .prepare("/descendant::bidder[descendant::increase]")
            .unwrap();
        for engine in engines() {
            assert_eq!(
                direct.run(engine).nodes(),
                rewrite.run(engine).nodes(),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn figure3_following_descendant() {
        let session = Session::new(figure1());
        // (c)/following/descendant — but the session's default context is
        // the root, so phrase it as a path from c.
        let query = session
            .prepare("following::node()/descendant::node()")
            .unwrap();
        let out = query
            .run_from(&Context::singleton(2), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "g", "h", "i", "j"]);
    }

    #[test]
    fn child_and_parent_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("child::node()")
            .unwrap()
            .run_from(&Context::singleton(4), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "i"]);
        let out = session
            .prepare("..")
            .unwrap()
            .run_from(&Context::singleton(5), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["e"]);
    }

    #[test]
    fn or_self_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("ancestor-or-self::node()")
            .unwrap()
            .run_from(&Context::singleton(6), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["a", "e", "f", "g"]);
        let out = session
            .prepare("descendant-or-self::node()")
            .unwrap()
            .run_from(&Context::singleton(5), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["f", "g", "h"]);
    }

    #[test]
    fn sibling_axes() {
        let session = Session::new(figure1());
        let out = session
            .prepare("following-sibling::node()")
            .unwrap()
            .run_from(&Context::singleton(1), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["d", "e"]);
        let out = session
            .prepare("preceding-sibling::node()")
            .unwrap()
            .run_from(&Context::singleton(4), Engine::default())
            .unwrap();
        assert_eq!(names(session.doc(), out.nodes()), ["b", "d"]);
    }

    #[test]
    fn attribute_axis_and_abbreviation() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::person/@id", Engine::default())
            .unwrap();
        assert_eq!(out.len(), 2);
        for v in &out {
            assert_eq!(session.doc().kind(v), NodeKind::Attribute);
            assert_eq!(session.doc().tag_name(v), Some("id"));
        }
    }

    #[test]
    fn double_slash_everything() {
        let session = Session::new(auction_doc());
        for engine in engines() {
            let out = session.run("//bidder", engine).unwrap();
            assert_eq!(out.len(), 3, "{engine:?}");
        }
    }

    #[test]
    fn text_node_test() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/child::text()", Engine::default())
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(session.doc().content(out.nodes().as_slice()[0]), Some("1"));
    }

    #[test]
    fn star_matches_elements_only() {
        let session = Session::parse_xml("<a x='1'>text<b/><!--c--></a>").unwrap();
        let out = session.run("/descendant::*", Engine::default()).unwrap();
        assert_eq!(out.len(), 1); // only <b>
    }

    #[test]
    fn stats_track_steps() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/ancestor::bidder", Engine::default())
            .unwrap();
        assert_eq!(out.stats().steps.len(), 2);
        assert_eq!(out.stats().steps[0].step, "descendant::increase");
        assert!(out.stats().total_touched() > 0);
        // Staircase join never generates duplicates.
        assert_eq!(out.stats().total_duplicates(), 0);
    }

    #[test]
    fn naive_engine_reports_duplicates() {
        let session = Session::new(auction_doc());
        let out = session
            .run("/descendant::increase/ancestor::node()", Engine::naive())
            .unwrap();
        assert!(out.stats().total_duplicates() > 0);
    }

    #[test]
    fn unknown_name_yields_empty() {
        let session = Session::new(figure1());
        for engine in engines() {
            let out = session.run("/descendant::zzz", engine).unwrap();
            assert!(out.is_empty(), "{engine:?}");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let session = Session::new(figure1());
        assert!(session.run("///", Engine::default()).is_err());
        assert!(session.prepare("//[").is_err());
    }

    #[test]
    fn engines_agree_on_composite_query() {
        let session = Session::new(auction_doc());
        let query = session
            .prepare("//open_auction[bidder/increase]/@id")
            .unwrap();
        let reference = query.run(Engine::naive());
        assert_eq!(reference.len(), 1);
        for engine in engines() {
            let out = query.run(engine);
            assert_eq!(out.nodes(), reference.nodes(), "{engine:?}");
        }
    }
}
