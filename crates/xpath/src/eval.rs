//! Path evaluation over pluggable axis-step engines.

use staircase_accel::{Axis, Context, Doc, NodeKind, Pre};
use staircase_baselines::{naive_step, SqlEngine, SqlPlanOptions};
use staircase_core::{
    ancestor, ancestor_on_list, ancestor_parallel, descendant, descendant_on_list,
    descendant_parallel, following, has_ancestor_in, has_child_in, has_descendant_in, preceding,
    TagIndex, Variant,
};

use crate::ast::{NodeTest, Path, Predicate, Step, UnionExpr};
use crate::parser::{parse_union, ParseError};
#[cfg(test)]
use crate::parser::parse;

/// Which implementation evaluates the partitioning axis steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The staircase join (the paper's contribution).
    Staircase {
        /// Skipping refinement.
        variant: Variant,
        /// Push name tests through the join (§4.4 Experiment 3): the name
        /// test runs first, *at query time*, as a selection scan over the
        /// whole document; the join then walks only the selected nodes.
        pushdown: bool,
    },
    /// §6 tag-name fragmentation: like pushdown, but per-tag fragments are
    /// prebuilt at document-loading time, so a name-tested step touches
    /// only fragment nodes.
    Fragmented {
        /// Skipping refinement.
        variant: Variant,
    },
    /// Partitioned parallel staircase join (§3.2 / §6).
    StaircaseParallel {
        /// Skipping refinement.
        variant: Variant,
        /// Worker count.
        threads: usize,
    },
    /// Per-context region queries + duplicate elimination (§3.1).
    Naive,
    /// Tree-unaware B-tree plan (Figure 3, "IBM DB2 SQL").
    Sql {
        /// Apply the Equation-1 window predicate (paper line 7).
        eq1_window: bool,
        /// Filter by tag during the index scan.
        early_nametest: bool,
    },
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false }
    }
}

/// Per-step trace of an evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// Rendered step (`descendant::profile`).
    pub step: String,
    /// Result size after node test and predicates.
    pub result_size: usize,
    /// Nodes/index entries the engine touched for this step.
    pub nodes_touched: u64,
    /// Tuples produced before duplicate elimination (naive/SQL engines;
    /// equals `result_size` for the staircase join, which never produces
    /// duplicates).
    pub tuples_produced: u64,
}

/// Evaluation statistics: one trace per step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Traces in evaluation order (predicate evaluations excluded).
    pub steps: Vec<StepTrace>,
}

impl EvalStats {
    /// Total nodes touched across steps.
    pub fn total_touched(&self) -> u64 {
        self.steps.iter().map(|s| s.nodes_touched).sum()
    }

    /// Total duplicates generated (and removed) across steps.
    pub fn total_duplicates(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.tuples_produced.saturating_sub(s.result_size as u64))
            .sum()
    }
}

/// The outcome of a path evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutput {
    /// Result node sequence (document order, duplicate-free).
    pub result: Context,
    /// Per-step statistics.
    pub stats: EvalStats,
}

/// A reusable evaluator holding the engine's auxiliary structures
/// (tag index for pushdown, B-tree for the SQL engine).
pub struct Evaluator<'d> {
    doc: &'d Doc,
    engine: Engine,
    tag_index: Option<TagIndex>,
    sql: Option<SqlEngine>,
}

impl<'d> Evaluator<'d> {
    /// Builds an evaluator, constructing whatever the engine needs
    /// ("document loading time" work).
    pub fn new(doc: &'d Doc, engine: Engine) -> Evaluator<'d> {
        let tag_index = match engine {
            Engine::Fragmented { .. } => Some(TagIndex::build(doc)),
            _ => None,
        };
        let sql = match engine {
            Engine::Sql { .. } => Some(SqlEngine::build(doc)),
            _ => None,
        };
        Evaluator { doc, engine, tag_index, sql }
    }

    /// Parses and evaluates `expr` (context = document root). Union
    /// expressions (`a | b`) are supported.
    pub fn evaluate(&self, expr: &str) -> Result<EvalOutput, ParseError> {
        let union = parse_union(expr)?;
        Ok(self.evaluate_union(&union, &Context::singleton(self.doc.root())))
    }

    /// Evaluates a union expression: each branch independently from
    /// `context`, results merged into document order (duplicate-free).
    pub fn evaluate_union(&self, expr: &UnionExpr, context: &Context) -> EvalOutput {
        let mut outputs: Vec<EvalOutput> =
            expr.branches.iter().map(|p| self.evaluate_path(p, context)).collect();
        if outputs.len() == 1 {
            return outputs.pop().expect("one branch");
        }
        let mut result = Context::empty();
        let mut stats = EvalStats::default();
        for out in outputs {
            result = merge(&result, &out.result);
            stats.steps.extend(out.stats.steps);
        }
        EvalOutput { result, stats }
    }

    /// Evaluates a parsed path from an explicit context.
    pub fn evaluate_path(&self, path: &Path, context: &Context) -> EvalOutput {
        let mut ctx = if path.absolute {
            Context::singleton(self.doc.root())
        } else {
            context.clone()
        };
        let mut stats = EvalStats::default();
        for step in &path.steps {
            let (next, trace) = self.eval_step(&ctx, step);
            stats.steps.push(trace);
            ctx = next;
        }
        EvalOutput { result: ctx, stats }
    }

    fn eval_step(&self, ctx: &Context, step: &Step) -> (Context, StepTrace) {
        let (mut out, touched, produced) = self.eval_axis_and_test(ctx, step);
        for pred in &step.predicates {
            let Predicate::Exists(path) = pred;
            out = match self.try_semijoin_predicate(&out, path) {
                Some(filtered) => filtered,
                None => Context::from_sorted(
                    out.iter()
                        .filter(|&v| {
                            !self.evaluate_path(path, &Context::singleton(v)).result.is_empty()
                        })
                        .collect::<Vec<Pre>>(),
                ),
            };
        }
        let trace = StepTrace {
            step: step.to_string(),
            result_size: out.len(),
            nodes_touched: touched,
            tuples_produced: produced.max(out.len() as u64),
        };
        (out, trace)
    }

    /// Fast path for simple existential predicates on staircase-family
    /// engines: `[descendant::t]`, `[child::t]` (also the abbreviated
    /// `[t]`) and `[ancestor::t]` become one semijoin probe per candidate
    /// instead of a full path evaluation (§3.3's empty-region argument:
    /// the first fragment node after `c` decides the predicate).
    fn try_semijoin_predicate(&self, candidates: &Context, path: &Path) -> Option<Context> {
        if !matches!(
            self.engine,
            Engine::Staircase { .. } | Engine::Fragmented { .. } | Engine::StaircaseParallel { .. }
        ) {
            return None;
        }
        if path.absolute || path.steps.len() != 1 {
            return None;
        }
        let step = &path.steps[0];
        if !step.predicates.is_empty() {
            return None;
        }
        let NodeTest::Name(name) = &step.test else { return None };
        let doc = self.doc;
        let owned;
        let list: &[Pre] = if let Some(idx) = self.tag_index.as_ref() {
            idx.fragment_by_name(doc, name)
        } else {
            owned = doc.tag_id(name).map(|t| doc.elements_with_tag(t)).unwrap_or_default();
            &owned
        };
        let (out, _) = match step.axis {
            Axis::Descendant => has_descendant_in(doc, candidates, list),
            Axis::Child => has_child_in(doc, candidates, list),
            Axis::Ancestor => has_ancestor_in(doc, candidates, list),
            _ => return None,
        };
        Some(out)
    }

    /// Evaluates axis + node test; returns (result, nodes touched, tuples
    /// produced before dedup).
    fn eval_axis_and_test(&self, ctx: &Context, step: &Step) -> (Context, u64, u64) {
        let doc = self.doc;
        match step.axis {
            Axis::Descendant | Axis::Ancestor | Axis::Following | Axis::Preceding => {
                self.partitioning_step(ctx, step.axis, &step.test)
            }
            Axis::DescendantOrSelf => {
                let (base, touched, produced) =
                    self.partitioning_step(ctx, Axis::Descendant, &step.test);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced)
            }
            Axis::AncestorOrSelf => {
                let (base, touched, produced) =
                    self.partitioning_step(ctx, Axis::Ancestor, &step.test);
                let selves = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (merge(&base, &selves), touched, produced)
            }
            Axis::SelfAxis => {
                let out = apply_test(doc, ctx, &step.test, Axis::SelfAxis);
                (out, ctx.len() as u64, 0)
            }
            Axis::Parent => {
                let mut parents: Vec<Pre> = ctx
                    .iter()
                    .map(|c| doc.parent(c))
                    .filter(|&p| p != staircase_accel::NO_PARENT)
                    .collect();
                parents.sort_unstable();
                parents.dedup();
                let out =
                    apply_test(doc, &Context::from_sorted(parents), &step.test, Axis::Parent);
                (out, ctx.len() as u64, 0)
            }
            Axis::Child => {
                // Per-context children via subtree jumps: O(Σ #children),
                // not O(|doc|). Nested context nodes can interleave their
                // child ranges, so sort afterwards (children sets are
                // disjoint — every node has one parent — so no dedup).
                let mut kids: Vec<Pre> = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    for child in doc.children(c) {
                        touched += 1;
                        if doc.kind(child) != NodeKind::Attribute {
                            kids.push(child);
                        }
                    }
                }
                kids.sort_unstable();
                let out = apply_test(doc, &Context::from_sorted(kids), &step.test, Axis::Child);
                (out, touched, 0)
            }
            Axis::Attribute => {
                let mut attrs = Vec::new();
                let mut touched = 0u64;
                for c in ctx.iter() {
                    let mut v = c + 1;
                    while (v as usize) < doc.len() && doc.kind(v) == NodeKind::Attribute {
                        touched += 1;
                        if doc.parent(v) == c {
                            attrs.push(v);
                        }
                        v += 1;
                    }
                }
                let out =
                    apply_test(doc, &Context::from_sorted(attrs), &step.test, Axis::Attribute);
                (out, touched, 0)
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                // Per parent, the extremal context child bounds the sibling
                // range.
                use std::collections::HashMap;
                let mut extremal: HashMap<Pre, Pre> = HashMap::new();
                for c in ctx.iter() {
                    let p = doc.parent(c);
                    if p == staircase_accel::NO_PARENT {
                        continue;
                    }
                    let e = extremal.entry(p).or_insert(c);
                    if step.axis == Axis::FollowingSibling {
                        *e = (*e).min(c);
                    } else {
                        *e = (*e).max(c);
                    }
                }
                let mut sibs = Vec::new();
                let mut touched = 0u64;
                for v in doc.pres() {
                    touched += 1;
                    if doc.kind(v) == NodeKind::Attribute {
                        continue;
                    }
                    let p = doc.parent(v);
                    let Some(&e) = extremal.get(&p) else { continue };
                    let hit = if step.axis == Axis::FollowingSibling { v > e } else { v < e };
                    if hit {
                        sibs.push(v);
                    }
                }
                let out = apply_test(doc, &Context::from_sorted(sibs), &step.test, step.axis);
                (out, touched, 0)
            }
        }
    }

    fn partitioning_step(
        &self,
        ctx: &Context,
        axis: Axis,
        test: &NodeTest,
    ) -> (Context, u64, u64) {
        let doc = self.doc;
        match self.engine {
            Engine::Fragmented { .. } | Engine::Staircase { pushdown: true, .. }
                if matches!(test, NodeTest::Name(_))
                    && matches!(axis, Axis::Descendant | Axis::Ancestor) =>
            {
                let NodeTest::Name(name) = test else { unreachable!() };
                // Prebuilt fragment (§6) or query-time name-test scan
                // (§4.4 early nametest) — the join itself is identical.
                let (owned, scan_cost);
                let frag: &[Pre] = if let Some(idx) = self.tag_index.as_ref() {
                    scan_cost = 0u64;
                    owned = Vec::new();
                    let _ = &owned;
                    idx.fragment_by_name(doc, name)
                } else {
                    scan_cost = doc.len() as u64; // nametest(doc, n) scan
                    owned = match doc.tag_id(name) {
                        Some(t) => doc.elements_with_tag(t),
                        None => Vec::new(),
                    };
                    &owned
                };
                let (out, stats) = match axis {
                    Axis::Descendant => descendant_on_list(doc, frag, ctx),
                    Axis::Ancestor => ancestor_on_list(doc, frag, ctx),
                    _ => unreachable!(),
                };
                (out, stats.nodes_touched() + scan_cost, 0)
            }
            Engine::Staircase { variant, .. } | Engine::Fragmented { variant } => {
                let (base, stats) = match axis {
                    Axis::Descendant => descendant(doc, ctx, variant),
                    Axis::Ancestor => ancestor(doc, ctx, variant),
                    Axis::Following => following(doc, ctx),
                    Axis::Preceding => preceding(doc, ctx),
                    _ => unreachable!(),
                };
                let out = apply_test(doc, &base, test, axis);
                (out, stats.nodes_touched(), 0)
            }
            Engine::StaircaseParallel { variant, threads } => {
                let (base, stats) = match axis {
                    Axis::Descendant => descendant_parallel(doc, ctx, variant, threads),
                    Axis::Ancestor => ancestor_parallel(doc, ctx, variant, threads),
                    Axis::Following => following(doc, ctx),
                    Axis::Preceding => preceding(doc, ctx),
                    _ => unreachable!(),
                };
                let out = apply_test(doc, &base, test, axis);
                (out, stats.nodes_touched(), 0)
            }
            Engine::Naive => {
                let (base, stats) = naive_step(doc, ctx, axis);
                let out = apply_test(doc, &base, test, axis);
                (out, stats.nodes_scanned, stats.tuples_produced)
            }
            Engine::Sql { eq1_window, early_nametest } => {
                let sql = self.sql.as_ref().expect("SQL engine built in new()");
                let pushed_tag = match (early_nametest, test) {
                    (true, NodeTest::Name(name)) => doc.tag_id(name),
                    _ => None,
                };
                if early_nametest && matches!(test, NodeTest::Name(_)) && pushed_tag.is_none() {
                    // Name never occurs in the document: empty result.
                    return (Context::empty(), 0, 0);
                }
                let opts = SqlPlanOptions { eq1_window, early_nametest: pushed_tag };
                let (base, stats) = sql.axis_step(ctx, axis, opts);
                let out = if pushed_tag.is_some() {
                    base
                } else {
                    apply_test(doc, &base, test, axis)
                };
                (out, stats.index_entries_scanned, stats.tuples_produced)
            }
        }
    }
}

/// Applies a node test to a node sequence.
fn apply_test(doc: &Doc, ctx: &Context, test: &NodeTest, axis: Axis) -> Context {
    let keep = |v: Pre| -> bool {
        let kind = doc.kind(v);
        match test {
            NodeTest::AnyNode => true,
            NodeTest::AnyPrincipal => {
                if axis == Axis::Attribute {
                    kind == NodeKind::Attribute
                } else {
                    kind == NodeKind::Element
                }
            }
            NodeTest::Name(name) => {
                let want = if axis == Axis::Attribute {
                    NodeKind::Attribute
                } else {
                    NodeKind::Element
                };
                kind == want && doc.tag_name(v) == Some(name.as_str())
            }
            NodeTest::Text => kind == NodeKind::Text,
            NodeTest::Comment => kind == NodeKind::Comment,
            NodeTest::Pi(target) => {
                kind == NodeKind::Pi
                    && target.as_ref().is_none_or(|t| doc.tag_name(v) == Some(t.as_str()))
            }
        }
    };
    Context::from_sorted(ctx.iter().filter(|&v| keep(v)).collect())
}

/// Merges two sorted, duplicate-free sequences.
fn merge(a: &Context, b: &Context) -> Context {
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Context::from_sorted(out)
}

/// One-shot convenience: parse and evaluate `expr` over `doc` from the
/// document root.
pub fn evaluate(doc: &Doc, expr: &str, engine: Engine) -> Result<EvalOutput, ParseError> {
    Evaluator::new(doc, engine).evaluate(expr)
}

/// One-shot convenience for a pre-parsed path and explicit context.
pub fn evaluate_path(doc: &Doc, path: &Path, context: &Context, engine: Engine) -> EvalOutput {
    Evaluator::new(doc, engine).evaluate_path(path, context)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn auction_doc() -> Doc {
        Doc::from_xml(
            "<site><open_auctions>\
             <open_auction id='a0'><bidder><increase>1</increase></bidder>\
             <bidder><increase>2</increase></bidder></open_auction>\
             <open_auction id='a1'><bidder><date/></bidder></open_auction>\
             </open_auctions>\
             <people><person id='p0'><profile><education>College</education></profile></person>\
             <person id='p1'><profile/></person></people></site>",
        )
        .unwrap()
    }

    const ENGINES: [Engine; 7] = [
        Engine::Staircase { variant: Variant::Basic, pushdown: false },
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true },
        Engine::Fragmented { variant: Variant::EstimationSkipping },
        Engine::StaircaseParallel { variant: Variant::EstimationSkipping, threads: 3 },
        Engine::Naive,
        Engine::Sql { eq1_window: true, early_nametest: true },
    ];

    fn names(doc: &Doc, ctx: &Context) -> Vec<String> {
        ctx.iter().map(|v| doc.tag_name(v).unwrap_or("#text").to_string()).collect()
    }

    #[test]
    fn q1_on_auction_doc_all_engines() {
        let doc = auction_doc();
        for engine in ENGINES {
            let out =
                evaluate(&doc, "/descendant::profile/descendant::education", engine).unwrap();
            assert_eq!(names(&doc, &out.result), ["education"], "{engine:?}");
        }
    }

    #[test]
    fn q2_on_auction_doc_all_engines() {
        let doc = auction_doc();
        for engine in ENGINES {
            let out =
                evaluate(&doc, "/descendant::increase/ancestor::bidder", engine).unwrap();
            assert_eq!(out.result.len(), 2, "{engine:?}");
            assert_eq!(names(&doc, &out.result), ["bidder", "bidder"], "{engine:?}");
        }
    }

    #[test]
    fn q2_rewrite_equivalence() {
        // §4.4: /descendant::increase/ancestor::bidder ≡
        // /descendant::bidder[descendant::increase].
        let doc = auction_doc();
        for engine in ENGINES {
            let direct =
                evaluate(&doc, "/descendant::increase/ancestor::bidder", engine).unwrap();
            let rewrite =
                evaluate(&doc, "/descendant::bidder[descendant::increase]", engine).unwrap();
            assert_eq!(direct.result, rewrite.result, "{engine:?}");
        }
    }

    #[test]
    fn figure3_following_descendant() {
        let doc = figure1();
        // (c)/following/descendant — but via evaluator the context is the
        // root, so phrase it as a path from c.
        let eval = Evaluator::new(&doc, Engine::default());
        let path = parse("following::node()/descendant::node()").unwrap();
        let out = eval.evaluate_path(&path, &Context::singleton(2));
        assert_eq!(names(&doc, &out.result), ["f", "g", "h", "i", "j"]);
    }

    #[test]
    fn child_and_parent_axes() {
        let doc = figure1();
        let eval = Evaluator::new(&doc, Engine::default());
        let path = parse("child::node()").unwrap();
        let out = eval.evaluate_path(&path, &Context::singleton(4));
        assert_eq!(names(&doc, &out.result), ["f", "i"]);
        let path = parse("..").unwrap();
        let out = eval.evaluate_path(&path, &Context::singleton(5));
        assert_eq!(names(&doc, &out.result), ["e"]);
    }

    #[test]
    fn or_self_axes() {
        let doc = figure1();
        let eval = Evaluator::new(&doc, Engine::default());
        let path = parse("ancestor-or-self::node()").unwrap();
        let out = eval.evaluate_path(&path, &Context::singleton(6));
        assert_eq!(names(&doc, &out.result), ["a", "e", "f", "g"]);
        let path = parse("descendant-or-self::node()").unwrap();
        let out = eval.evaluate_path(&path, &Context::singleton(5));
        assert_eq!(names(&doc, &out.result), ["f", "g", "h"]);
    }

    #[test]
    fn sibling_axes() {
        let doc = figure1();
        let eval = Evaluator::new(&doc, Engine::default());
        let out = eval
            .evaluate_path(&parse("following-sibling::node()").unwrap(), &Context::singleton(1));
        assert_eq!(names(&doc, &out.result), ["d", "e"]);
        let out = eval
            .evaluate_path(&parse("preceding-sibling::node()").unwrap(), &Context::singleton(4));
        assert_eq!(names(&doc, &out.result), ["b", "d"]);
    }

    #[test]
    fn attribute_axis_and_abbreviation() {
        let doc = auction_doc();
        let out = evaluate(&doc, "/descendant::person/@id", Engine::default()).unwrap();
        assert_eq!(out.result.len(), 2);
        for v in out.result.iter() {
            assert_eq!(doc.kind(v), NodeKind::Attribute);
            assert_eq!(doc.tag_name(v), Some("id"));
        }
    }

    #[test]
    fn double_slash_everything() {
        let doc = auction_doc();
        for engine in ENGINES {
            let out = evaluate(&doc, "//bidder", engine).unwrap();
            assert_eq!(out.result.len(), 3, "{engine:?}");
        }
    }

    #[test]
    fn text_node_test() {
        let doc = auction_doc();
        let out = evaluate(&doc, "/descendant::increase/child::text()", Engine::default())
            .unwrap();
        assert_eq!(out.result.len(), 2);
        assert_eq!(doc.content(out.result.as_slice()[0]), Some("1"));
    }

    #[test]
    fn star_matches_elements_only() {
        let doc = Doc::from_xml("<a x='1'>text<b/><!--c--></a>").unwrap();
        let out = evaluate(&doc, "/descendant::*", Engine::default()).unwrap();
        assert_eq!(out.result.len(), 1); // only <b>
    }

    #[test]
    fn stats_track_steps() {
        let doc = auction_doc();
        let out =
            evaluate(&doc, "/descendant::increase/ancestor::bidder", Engine::default()).unwrap();
        assert_eq!(out.stats.steps.len(), 2);
        assert_eq!(out.stats.steps[0].step, "descendant::increase");
        assert!(out.stats.total_touched() > 0);
        // Staircase join never generates duplicates.
        assert_eq!(out.stats.total_duplicates(), 0);
    }

    #[test]
    fn naive_engine_reports_duplicates() {
        let doc = auction_doc();
        let out = evaluate(&doc, "/descendant::increase/ancestor::node()", Engine::Naive)
            .unwrap();
        assert!(out.stats.total_duplicates() > 0);
    }

    #[test]
    fn unknown_name_yields_empty() {
        let doc = figure1();
        for engine in ENGINES {
            let out = evaluate(&doc, "/descendant::zzz", engine).unwrap();
            assert!(out.result.is_empty(), "{engine:?}");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let doc = figure1();
        assert!(evaluate(&doc, "///", Engine::default()).is_err());
    }

    #[test]
    fn engines_agree_on_composite_query() {
        let doc = auction_doc();
        let expr = "//open_auction[bidder/increase]/@id";
        let reference = evaluate(&doc, expr, Engine::Naive).unwrap().result;
        assert_eq!(reference.len(), 1);
        for engine in ENGINES {
            let out = evaluate(&doc, expr, engine).unwrap();
            assert_eq!(out.result, reference, "{engine:?}");
        }
    }
}
