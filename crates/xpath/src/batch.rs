//! Batched multi-query evaluation: the engine room of
//! [`Session::run_many`](crate::Session::run_many).
//!
//! Every query in a batch arrives as a [`PhysicalPlan`] and is split
//! into *lanes* (one per union branch). Evaluation proceeds in rounds:
//! each round, every unfinished lane advances by exactly one step.
//! Since the plan/execute split, batchability is read straight off the
//! **planned operator** — a lane batches when its current step was
//! planned as a predicate-free plain staircase join
//! ([`StepOp::Staircase`]) on a vertical axis, whatever engine produced
//! the plan (so [`crate::Engine::auto`]'s staircase-planned steps batch
//! exactly like the fixed staircase engine's). Batchable lanes are
//! grouped by vertical axis and variant and dispatched through the
//! multi-context joins ([`descendant_many`]/[`ancestor_many`]), which
//! serve the whole group from **one** scan of the plane. Everything
//! else — fragment joins, SQL/naive/parallel operators, horizontal and
//! structural axes, steps with predicates — falls back to the ordinary
//! per-lane plan interpreter, so batch results are identical to
//! sequential results by construction on those paths and by the
//! multi-context join's per-lane equivalence on the batched ones.
//!
//! A [`Scratch`] pool lives for the duration of the batch: step results
//! and intermediate contexts recycle their allocations instead of
//! allocating per step.

use staircase_accel::{Axis, Context, NodeKind, TagId};
use staircase_core::{ancestor_many, descendant_many, Scratch, Variant};

use crate::eval::{apply_test, merge, EvalOutput, EvalStats, Executor, StepTrace};
use crate::plan::{vert_axis_of, PathPlan, PhysicalPlan, PlannedStep, StepOp, VertAxis};

/// One union branch of one query, advancing step by step.
struct Lane<'p> {
    /// Index of the owning query in the batch.
    query: usize,
    path: &'p PathPlan,
    /// Context after `step` steps.
    ctx: Context,
    /// Number of steps already evaluated.
    step: usize,
    stats: EvalStats,
}

impl<'p> Lane<'p> {
    fn pending(&self) -> Option<&'p PlannedStep> {
        self.path.steps().get(self.step)
    }
}

/// Is this planned step evaluable by the multi-context join, and on
/// which axis? `None` means "fall back to per-lane interpretation".
fn batchable(step: &PlannedStep) -> Option<(VertAxis, Variant)> {
    if !step.predicate_operators().is_empty() {
        // Predicates recurse into full path evaluation; keep them on the
        // sequential path.
        return None;
    }
    let vert = vert_axis_of(step.axis())?;
    match step.operator() {
        StepOp::Staircase { variant } => Some((vert, *variant)),
        // Fragment/parallel/naive/SQL operators evaluate per lane.
        _ => None,
    }
}

/// Evaluates many physical plans from one shared starting context,
/// sharing plane scans between queries wherever planned steps line up.
pub(crate) fn run_many_plans(
    ex: &Executor<'_>,
    plans: &[&PhysicalPlan],
    context: &Context,
) -> Vec<EvalOutput> {
    let mut scratch = Scratch::new();
    let mut lanes: Vec<Lane<'_>> = Vec::new();
    for (query, plan) in plans.iter().enumerate() {
        for path in plan.branches() {
            let ctx = if path.absolute {
                Context::singleton(ex.doc.root())
            } else {
                context.clone()
            };
            lanes.push(Lane {
                query,
                path,
                ctx,
                step: 0,
                stats: EvalStats::default(),
            });
        }
    }

    // Rounds: every unfinished lane advances one step per round; lanes
    // whose current steps share a batchable (axis, variant) group
    // advance together.
    loop {
        // Per (vertical axis, variant) groups; one engine per batch call
        // keeps the variant set tiny, but auto plans are free to mix.
        let mut groups: Vec<((VertAxis, Variant), Vec<usize>)> = Vec::new();
        let mut fallback: Vec<usize> = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            let Some(step) = lane.pending() else { continue };
            match batchable(step) {
                Some(key) => match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(i),
                    None => groups.push((key, vec![i])),
                },
                None => fallback.push(i),
            }
        }
        if groups.is_empty() && fallback.is_empty() {
            break;
        }

        for i in fallback {
            let lane = &mut lanes[i];
            let step = &lane.path.steps()[lane.step];
            let (next, trace) = ex.exec_step(&lane.ctx, step);
            lane.stats.steps.push(trace);
            scratch.recycle(std::mem::replace(&mut lane.ctx, next));
            lane.step += 1;
        }

        for ((vert, variant), group) in groups {
            // Dedup identical current contexts up front: the join runs
            // once per unique context and duplicates borrow the shared
            // base result instead of cloning it. The shared pass's cost
            // is attributed to the first lane that needed it.
            let mut uniq: Vec<usize> = Vec::new();
            let mut slot_of: Vec<usize> = Vec::with_capacity(group.len());
            for &i in &group {
                match uniq
                    .iter()
                    .position(|&u| lanes[u].ctx.as_slice() == lanes[i].ctx.as_slice())
                {
                    Some(s) => slot_of.push(s),
                    None => {
                        slot_of.push(uniq.len());
                        uniq.push(i);
                    }
                }
            }
            let joined = {
                let contexts: Vec<&Context> = uniq.iter().map(|&i| &lanes[i].ctx).collect();
                match vert {
                    VertAxis::Descendant => {
                        descendant_many(ex.doc, &contexts, variant, &mut scratch)
                    }
                    VertAxis::Ancestor => ancestor_many(ex.doc, &contexts, variant, &mut scratch),
                }
            };
            let axis = match vert {
                VertAxis::Descendant => Axis::Descendant,
                VertAxis::Ancestor => Axis::Ancestor,
            };
            // Fuse name tests over each shared base: one pass reading
            // `kind`/`tag` serves every lane filtering the same base by
            // tag, instead of one pass per lane.
            let mut fused: Vec<Option<Context>> = vec![None; group.len()];
            for (slot, (base, _)) in joined.iter().enumerate() {
                let named: Vec<(usize, TagId)> = group
                    .iter()
                    .enumerate()
                    .filter(|&(gi, _)| slot_of[gi] == slot)
                    .filter_map(|(gi, &i)| {
                        let step = &lanes[i].path.steps()[lanes[i].step];
                        if matches!(step.axis(), Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
                            return None; // or-self lanes merge selves later
                        }
                        let crate::ast::NodeTest::Name(name) = &step.test else {
                            return None;
                        };
                        // An absent name means an empty result.
                        let tid = ex.doc.tag_id(name).unwrap_or(staircase_accel::NO_TAG);
                        Some((gi, tid))
                    })
                    .collect();
                if named.len() < 2 {
                    continue; // a lone filter gains nothing from fusing
                }
                let mut bufs: Vec<Vec<_>> = named.iter().map(|_| scratch.take()).collect();
                let element = NodeKind::Element;
                for v in base.iter() {
                    if ex.doc.kind(v) != element {
                        continue;
                    }
                    let t = ex.doc.tag(v);
                    for (bi, &(_, tid)) in named.iter().enumerate() {
                        if tid == t {
                            bufs[bi].push(v);
                        }
                    }
                }
                for ((gi, _), buf) in named.into_iter().zip(bufs) {
                    fused[gi] = Some(Context::from_sorted(buf));
                }
            }
            let mut first_use = vec![true; uniq.len()];
            for (gi, &i) in group.iter().enumerate() {
                let (base, jstats) = &joined[slot_of[gi]];
                let lane = &mut lanes[i];
                let step = &lane.path.steps()[lane.step];
                let mut out = match fused[gi].take() {
                    Some(filtered) => filtered,
                    None => apply_test(ex.doc, base, &step.test, axis),
                };
                if matches!(step.axis(), Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
                    let selves = apply_test(ex.doc, &lane.ctx, &step.test, Axis::SelfAxis);
                    out = merge(&out, &selves);
                    scratch.recycle(selves);
                }
                let touched = if std::mem::take(&mut first_use[slot_of[gi]]) {
                    jstats.nodes_touched()
                } else {
                    0
                };
                lane.stats.steps.push(StepTrace {
                    step: step.source().to_string(),
                    result_size: out.len(),
                    nodes_touched: touched,
                    tuples_produced: out.len() as u64,
                });
                scratch.recycle(std::mem::replace(&mut lane.ctx, out));
                lane.step += 1;
            }
            for (base, _) in joined {
                scratch.recycle(base);
            }
        }
    }

    // Reassemble per-query outputs: branches merge in declaration order,
    // step traces concatenate in the same order as the sequential
    // interpreter.
    let mut outputs: Vec<Option<EvalOutput>> = plans.iter().map(|_| None).collect();
    for lane in lanes {
        let branch = EvalOutput {
            result: lane.ctx,
            stats: lane.stats,
        };
        match &mut outputs[lane.query] {
            slot @ None => *slot = Some(branch),
            Some(acc) => {
                acc.result = merge(&acc.result, &branch.result);
                acc.stats.steps.extend(branch.stats.steps);
            }
        }
    }
    outputs
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| EvalOutput {
                // The parser guarantees at least one branch; an empty
                // union is harmlessly empty rather than a panic.
                result: Context::empty(),
                stats: EvalStats::default(),
            })
        })
        .collect()
}
