//! The lane executor: multi-context execution as the **native form**.
//!
//! Every evaluation — [`Session::run`](crate::Session::run) included —
//! arrives here as a batch of [`PhysicalPlan`]s and is split into
//! *lanes* (one per union branch per query); single-query `run` is
//! simply the K = 1 batch. Evaluation proceeds in rounds: each round,
//! every unfinished lane advances by exactly one step, and lanes whose
//! current steps **declare the same lane form** ([`LaneForm`], a
//! property of the planned operator) advance together through the
//! multi-context operators of `staircase_core`:
//!
//! * [`LaneForm::Staircase`] → [`descendant_many`] / [`ancestor_many`]:
//!   one merged-boundary scan of the plane serves the whole group;
//! * [`LaneForm::Fragment`] → [`descendant_on_list_many`] /
//!   [`ancestor_on_list_many`]: lanes naming the same tag share the
//!   list resolution (prebuilt fragment or one query-time selection
//!   scan) and a single forward cursor over it;
//! * [`LaneForm::Horiz`] → [`following_many`] / [`preceding_many`]: the
//!   group's nested suffix/prefix regions come out of one filtered scan;
//! * semijoin predicates on any of the above are probed group-wise
//!   through [`has_descendant_in_many`] and friends, resolving each
//!   predicate's node list once per group.
//!
//! Only the genuinely unbatchable residue — nested-loop (filter)
//! predicates, structural axes, and the naive/SQL/parallel operators —
//! falls back to the sequential plan interpreter, one lane at a time
//! ([`Executor::exec_step`]).
//!
//! **Rounds are parallel.** On a session whose worker pool is wider
//! than one, a round's independent pieces — each lane-form group's
//! shared pass, plus every fallback lane — execute as concurrent pool
//! tasks (each sweeping out its own scratch shard), and a group whose
//! planned step carries the cost model's fanout hint additionally
//! splits its own pass into morsels (`staircase_core`'s `*_many_par`
//! kernels): contiguous chunks of the merged boundary list, disjoint
//! pre-ranges in the paper's Figure-8 sense, so per-worker results
//! concatenate in document order and per-worker statistics sum to the
//! sequential counters exactly. A width-1 session never touches the
//! pool — the sequential path is byte-for-byte the pre-pool executor.
//!
//! Because the grouping key is read straight off the plan, no engine
//! decision is re-derived at run time, and [`crate::Engine::auto`]'s
//! steps batch exactly like the fixed engines'. Statistics count
//! **incremental** cost: a position serving several lanes is attributed
//! to the first lane that needed it, so touched-node totals across a
//! batch equal the physical reads. A [`Scratch`] pool — owned by the
//! session, so it persists across batches — recycles result and context
//! allocations instead of paying for them per round.

//! ## Governed execution
//!
//! [`Executor::run_plans_governed`] threads an optional per-query
//! [`Budget`] through the rounds. Enforcement is **lane-local**:
//!
//! * before each round every governed lane's budget is checked, so an
//!   expired deadline or exhausted ceiling fails the query at a round
//!   boundary;
//! * a pass whose lanes all share *one* budget (always true for a
//!   governed single-query batch) runs with that budget installed
//!   ambiently ([`governor::enter`]), so the core kernels tick and the
//!   pass stops mid-scan with bounded overshoot;
//! * a pass mixing budgets (or mixing governed and ungoverned lanes)
//!   runs exactly as an ungoverned pass — sibling lanes stay node- and
//!   order-identical to an ungoverned run — and each governed lane is
//!   charged its incremental touches afterwards, so the overshoot is
//!   bounded by one round;
//! * every pass and fallback step runs under `catch_unwind`: a panic
//!   fails the affected queries with [`Error::Internal`] (a shared
//!   pass's blast radius is the queries of that pass; fallback lanes
//!   fail alone) and leaves the session, pool, and sibling queries
//!   usable.
//!
//! A failed query's remaining lanes are retired at the next round
//! boundary; its partial results are discarded, never returned.

use std::borrow::Cow;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use staircase_accel::{Axis, Context, NodeKind, Pre, TagId};
use staircase_core::cost::RuntimeStats;
use staircase_core::governor::{self, Budget};
use staircase_core::{
    ancestor_many, ancestor_many_par, ancestor_on_list_many, ancestor_on_list_many_par,
    descendant_many, descendant_many_par, descendant_on_list_many, descendant_on_list_many_par,
    faults, following_many, following_many_par, has_ancestor_in_many, has_ancestor_in_many_par,
    has_child_in_many, has_child_in_many_par, has_descendant_in_many, has_descendant_in_many_par,
    mask, preceding_many, preceding_many_par, Scratch, Variant,
};

use crate::ast::NodeTest;
use crate::error::Error;
use crate::eval::{merge, rendered_op, EvalOutput, EvalStats, Executor, StepTrace};
use crate::plan::{
    replan_step, HorizAxis, LaneForm, PhysicalPlan, PlannedStep, PredOp, SemijoinAxis, VertAxis,
};

/// Maps a budget trip to the typed error a governed query fails with.
pub(crate) fn trip_error(trip: governor::Trip) -> Error {
    match trip {
        governor::Trip::Deadline => Error::DeadlineExceeded,
        governor::Trip::Cost => Error::BudgetExhausted,
        governor::Trip::Cancelled => Error::Cancelled,
    }
}

/// Renders a caught panic payload for [`Error::Internal`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "execution task panicked".to_string()
    }
}

/// The one budget every lane of `group` shares, if they all share one:
/// the condition under which a pass may run with that budget installed
/// ambiently without governing (or mis-attributing charges to) a
/// sibling lane.
fn shared_budget(lanes: &[Lane<'_>], group: &[usize]) -> Option<Arc<Budget>> {
    let first = lanes[group[0]].budget.as_ref()?;
    group
        .iter()
        .all(|&i| {
            lanes[i]
                .budget
                .as_ref()
                .is_some_and(|b| Arc::ptr_eq(b, first))
        })
        .then(|| Arc::clone(first))
}

/// How far (multiplicatively, either direction) the observed frontier
/// cardinality must stray from the planner's estimate before the
/// adaptive executor re-prices the pending step. Below the factor the
/// static ranking stands and the lane advances with zero re-planning
/// overhead; the misleading workloads this exists for miss by orders of
/// magnitude.
const REPLAN_DISAGREE_FACTOR: f64 = 8.0;

/// One union branch of one query, advancing step by step.
struct Lane<'p> {
    /// Index of the owning query in the batch.
    query: usize,
    /// The steps this lane executes: borrowed from the plan until the
    /// adaptive re-planner first switches an operator, owned (a clone
    /// of the branch's steps) afterwards. Non-adaptive lanes never
    /// leave the borrowed state.
    steps: Cow<'p, [PlannedStep]>,
    /// Re-price the pending step from the observed frontier cardinality
    /// after every advance ([`crate::Engine::adaptive`]).
    adaptive: bool,
    /// Context after `step` steps.
    ctx: Context,
    /// Number of steps already evaluated.
    step: usize,
    stats: EvalStats,
    /// The owning query's budget, if it runs governed. Lanes of one
    /// query share the same `Arc`, so a trip on any lane fails them
    /// all; lanes of different queries never share one.
    budget: Option<Arc<Budget>>,
}

impl Lane<'_> {
    fn pending(&self) -> Option<&PlannedStep> {
        self.steps.get(self.step)
    }
}

/// A round's grouping key: [`LaneForm`] with the fragment name owned,
/// so the key survives adaptive lanes mutating their pending steps
/// between rounds (the borrowed form would pin `lanes` immutably).
#[derive(Clone, PartialEq, Eq)]
enum GroupKey {
    Staircase(VertAxis, Variant),
    Fragment {
        vert: VertAxis,
        name: String,
        prescan: bool,
    },
    Horiz(HorizAxis),
}

/// The owned grouping key of a lane form; `None` for the per-lane
/// fallback.
fn group_key(form: LaneForm<'_>) -> Option<GroupKey> {
    match form {
        LaneForm::Staircase(vert, variant) => Some(GroupKey::Staircase(vert, variant)),
        LaneForm::Fragment {
            vert,
            name,
            prescan,
        } => Some(GroupKey::Fragment {
            vert,
            name: name.to_string(),
            prescan,
        }),
        LaneForm::Horiz(haxis) => Some(GroupKey::Horiz(haxis)),
        LaneForm::PerLane => None,
    }
}

/// The outcome of one round task: a whole group's (result, incremental
/// touches) pairs, or a single fallback lane's step.
enum RoundOut {
    Group(Vec<(Context, u64)>),
    Lane(Context, StepTrace),
}

impl Executor<'_> {
    /// Applies a node test through the masked filters into a buffer
    /// taken from the round's scratch shard — the batch paths'
    /// residual filter, allocation-free at steady state.
    fn test_scratched(
        &self,
        ctx: &Context,
        test: &NodeTest,
        axis: Axis,
        scratch: &mut Scratch,
    ) -> Context {
        let mut buf = scratch.take();
        self.test_into(ctx, test, axis, &mut buf);
        Context::from_sorted(buf)
    }

    /// Evaluates many physical plans from one shared starting context —
    /// the single entry point for *all* plan evaluation (`run` is the
    /// K = 1 batch), sharing passes wherever planned steps agree on a
    /// lane form and fanning independent round pieces out across the
    /// session's worker pool.
    pub(crate) fn run_plans(&self, plans: &[&PhysicalPlan], context: &Context) -> Vec<EvalOutput> {
        let budgets: Vec<Option<Arc<Budget>>> = plans.iter().map(|_| None).collect();
        self.run_plans_governed(plans, context, &budgets)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("ungoverned evaluation failed: {e}")))
            .collect()
    }

    /// [`run_plans`](Self::run_plans) with an optional per-query
    /// [`Budget`]: `budgets[q]` governs every lane of query `q` (see the
    /// module docs for the enforcement points). A query that trips its
    /// budget — or whose lane panics — comes back as `Err` while its
    /// batch siblings complete normally.
    pub(crate) fn run_plans_governed(
        &self,
        plans: &[&PhysicalPlan],
        context: &Context,
        budgets: &[Option<Arc<Budget>>],
    ) -> Vec<Result<EvalOutput, Error>> {
        self.scratch
            .with(|scratch| self.run_plans_inner(plans, context, budgets, scratch))
    }

    fn run_plans_inner(
        &self,
        plans: &[&PhysicalPlan],
        context: &Context,
        budgets: &[Option<Arc<Budget>>],
        scratch: &mut Scratch,
    ) -> Vec<Result<EvalOutput, Error>> {
        let mut lanes: Vec<Lane<'_>> = Vec::new();
        for (query, plan) in plans.iter().enumerate() {
            for path in plan.branches() {
                let ctx = if path.absolute {
                    Context::singleton(self.doc.root())
                } else {
                    context.clone()
                };
                lanes.push(Lane {
                    query,
                    steps: Cow::Borrowed(path.steps()),
                    adaptive: plan.is_adaptive(),
                    ctx,
                    step: 0,
                    stats: EvalStats::default(),
                    budget: budgets[query].clone(),
                });
            }
        }
        // First governed failure per query; `Some` retires the query's
        // remaining lanes and turns into the `Err` arm on reassembly.
        let mut failed: Vec<Option<Error>> = plans.iter().map(|_| None).collect();

        // Rounds: every unfinished lane advances one step per round;
        // lanes whose current steps declare the same lane form advance
        // together through one multi-context pass.
        loop {
            // Round boundary: fail governed queries whose budget has
            // tripped (deadline passed while other queries ran, client
            // cancelled, ceiling hit by a previous round) and retire
            // every lane of a failed query before grouping.
            for lane in lanes.iter_mut() {
                if lane.pending().is_none() {
                    continue;
                }
                if failed[lane.query].is_none() {
                    if let Some(budget) = &lane.budget {
                        if let Some(trip) = budget.check() {
                            failed[lane.query] = Some(trip_error(trip));
                        }
                    }
                }
                if failed[lane.query].is_some() {
                    lane.step = lane.steps.len();
                }
            }

            let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
            let mut fallback: Vec<usize> = Vec::new();
            for (i, lane) in lanes.iter().enumerate() {
                let Some(step) = lane.pending() else { continue };
                match group_key(step.lane_form()) {
                    None => fallback.push(i),
                    Some(key) => match groups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push(i),
                        None => groups.push((key, vec![i])),
                    },
                }
            }
            if groups.is_empty() && fallback.is_empty() {
                break;
            }

            // A round with several independent pieces fans them out
            // across the pool; a width-1 session (or a single-piece
            // round) takes the sequential path, which is exactly the
            // pre-pool executor.
            if self.pool.width() > 1 && groups.len() + fallback.len() > 1 {
                self.round_parallel(&mut lanes, groups, fallback, scratch, &mut failed);
            } else {
                self.round_sequential(&mut lanes, groups, fallback, scratch, &mut failed);
            }
        }

        // Reassemble per-query outputs: branches merge in declaration
        // order, step traces concatenate in the same order as a
        // branch-by-branch evaluation would produce them. A failed
        // query's lanes are dropped — partial results never escape.
        let mut outputs: Vec<Option<EvalOutput>> = plans.iter().map(|_| None).collect();
        for lane in lanes {
            if failed[lane.query].is_some() {
                continue;
            }
            let branch = EvalOutput {
                result: lane.ctx,
                stats: lane.stats,
            };
            match &mut outputs[lane.query] {
                slot @ None => *slot = Some(branch),
                Some(acc) => {
                    acc.result = merge(&acc.result, &branch.result);
                    acc.stats.steps.extend(branch.stats.steps);
                }
            }
        }
        outputs
            .into_iter()
            .zip(failed)
            .map(|(o, f)| match f {
                Some(e) => Err(e),
                None => Ok(o.unwrap_or_else(|| EvalOutput {
                    // The parser guarantees at least one branch; an empty
                    // union is harmlessly empty rather than a panic.
                    result: Context::empty(),
                    stats: EvalStats::default(),
                })),
            })
            .collect()
    }

    /// One round, sequentially: fallback lanes through the plan
    /// interpreter, then each group's shared pass. Fallback lanes and
    /// group passes run under `catch_unwind` with the lane (or shared)
    /// budget installed ambiently; see the module docs.
    fn round_sequential(
        &self,
        lanes: &mut [Lane<'_>],
        groups: Vec<(GroupKey, Vec<usize>)>,
        fallback: Vec<usize>,
        scratch: &mut Scratch,
        failed: &mut [Option<Error>],
    ) {
        // The residue: one lane at a time through the sequential plan
        // interpreter.
        for i in fallback {
            let outcome = {
                let lane = &lanes[i];
                let _guard = lane.budget.clone().map(governor::enter);
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    faults::fail_point("xpath::lane");
                    self.exec_step(&lane.ctx, &lane.steps[lane.step])
                }))
            };
            self.apply_lane_outcome(lanes, i, outcome, scratch, failed);
        }
        for (form, group) in groups {
            let shared = shared_budget(lanes, &group);
            let outcome = {
                let _guard = shared.clone().map(governor::enter);
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    faults::fail_point("xpath::round");
                    self.group_outs(lanes, &group, &form, scratch)
                }))
            };
            match outcome {
                Ok(outs) => self.advance(lanes, &group, outs, scratch, failed, shared.is_some()),
                Err(payload) => self.fail_group(lanes, &group, payload, failed),
            }
        }
    }

    /// Applies one fallback lane's caught outcome: a panic fails the
    /// owning query with [`Error::Internal`]; a tripped budget (the
    /// lane ran with it installed ambiently) fails it with the trip's
    /// typed error and discards the partial context; otherwise the lane
    /// advances exactly as an ungoverned one.
    fn apply_lane_outcome(
        &self,
        lanes: &mut [Lane<'_>],
        i: usize,
        outcome: std::thread::Result<(Context, StepTrace)>,
        scratch: &mut Scratch,
        failed: &mut [Option<Error>],
    ) {
        let lane = &mut lanes[i];
        match outcome {
            Ok((next, trace)) => {
                let tripped = lane.budget.as_ref().and_then(|b| b.check());
                if let Some(trip) = tripped {
                    if failed[lane.query].is_none() {
                        failed[lane.query] = Some(trip_error(trip));
                    }
                    scratch.recycle(next);
                    lane.step = lane.steps.len();
                } else {
                    lane.stats.steps.push(trace);
                    scratch.recycle(std::mem::replace(&mut lane.ctx, next));
                    lane.step += 1;
                    self.maybe_replan(&mut lanes[i]);
                }
            }
            Err(payload) => {
                if failed[lane.query].is_none() {
                    failed[lane.query] = Some(Error::Internal(panic_message(payload)));
                }
                lane.step = lane.steps.len();
            }
        }
    }

    /// Fails every query with a lane in `group` after its shared pass
    /// panicked: the pass's blast radius is exactly its member queries.
    fn fail_group(
        &self,
        lanes: &mut [Lane<'_>],
        group: &[usize],
        payload: Box<dyn std::any::Any + Send>,
        failed: &mut [Option<Error>],
    ) {
        let msg = panic_message(payload);
        for &i in group {
            let lane = &mut lanes[i];
            if failed[lane.query].is_none() {
                failed[lane.query] = Some(Error::Internal(msg.clone()));
            }
            lane.step = lane.steps.len();
        }
    }

    /// One round, fanned out: every group's shared pass and every
    /// fallback lane becomes a pool task (each sweeping out its own
    /// scratch shard); results are applied in task order afterwards, so
    /// traces and recycling match the sequential round exactly.
    fn round_parallel(
        &self,
        lanes: &mut Vec<Lane<'_>>,
        groups: Vec<(GroupKey, Vec<usize>)>,
        fallback: Vec<usize>,
        scratch: &mut Scratch,
        failed: &mut [Option<Error>],
    ) {
        let results = {
            let lanes_ref: &[Lane<'_>] = lanes;
            let mut tasks: Vec<Box<dyn FnOnce() -> RoundOut + Send + '_>> =
                Vec::with_capacity(fallback.len() + groups.len());
            for &i in &fallback {
                tasks.push(Box::new(move || {
                    let lane = &lanes_ref[i];
                    // The lane's own budget governs the task (nested
                    // pool jobs — morsel workers — inherit it from
                    // here); the pool catches any panic.
                    let _guard = lane.budget.clone().map(governor::enter);
                    faults::fail_point("xpath::lane");
                    let step = &lane.steps[lane.step];
                    let (next, trace) = self.exec_step(&lane.ctx, step);
                    RoundOut::Lane(next, trace)
                }));
            }
            for (form, group) in &groups {
                tasks.push(Box::new(move || {
                    let _guard = shared_budget(lanes_ref, group).map(governor::enter);
                    faults::fail_point("xpath::round");
                    RoundOut::Group(
                        self.scratch
                            .with(|shard| self.group_outs(lanes_ref, group, form, shard)),
                    )
                }));
            }
            self.pool.run_caught(tasks)
        };

        let mut results = results.into_iter();
        for i in fallback {
            let outcome = match results.next() {
                Some(Ok(RoundOut::Lane(next, trace))) => Ok((next, trace)),
                Some(Err(payload)) => Err(payload),
                _ => unreachable!("fallback tasks come back first, in order"),
            };
            self.apply_lane_outcome(lanes, i, outcome, scratch, failed);
        }
        for (_, group) in groups {
            // Recomputed over lanes the tasks left untouched, so it
            // matches what the task installed.
            let ambient_ran = shared_budget(lanes, &group).is_some();
            match results.next() {
                Some(Ok(RoundOut::Group(outs))) => {
                    self.advance(lanes, &group, outs, scratch, failed, ambient_ran);
                }
                Some(Err(payload)) => self.fail_group(lanes, &group, payload, failed),
                _ => unreachable!("one group task per group, in order"),
            }
        }
    }

    /// One group's shared pass: the form-specific join, then the
    /// group-wise predicate probes. Pure with respect to `lanes` — the
    /// produced contexts are applied by [`advance`] afterwards, which is
    /// what lets groups of one round run concurrently.
    fn group_outs(
        &self,
        lanes: &[Lane<'_>],
        group: &[usize],
        form: &GroupKey,
        scratch: &mut Scratch,
    ) -> Vec<(Context, u64)> {
        let mut outs = match form {
            GroupKey::Staircase(vert, variant) => {
                self.staircase_outs(lanes, group, *vert, *variant, scratch)
            }
            GroupKey::Fragment {
                vert,
                name,
                prescan,
            } => self.fragment_outs(lanes, group, *vert, name.as_str(), *prescan, scratch),
            GroupKey::Horiz(haxis) => self.horiz_outs(lanes, group, *haxis, scratch),
        };
        self.predicate_rounds(lanes, group, &mut outs, scratch);
        outs
    }

    /// Does this group's planned step carry the cost model's fanout
    /// hint (and is there a pool to fan out on)? Gates the morsel-split
    /// kernels; the kernels themselves re-check the actual work.
    fn fanout(&self, lanes: &[Lane<'_>], group: &[usize]) -> bool {
        self.pool.width() > 1
            && group
                .iter()
                .any(|&i| lanes[i].steps[lanes[i].step].fanout())
    }

    /// One shared pass of the plain staircase join for every lane in
    /// `group`, plus fused name tests over shared bases and or-self
    /// merging.
    fn staircase_outs(
        &self,
        lanes: &[Lane<'_>],
        group: &[usize],
        vert: VertAxis,
        variant: staircase_core::Variant,
        scratch: &mut Scratch,
    ) -> Vec<(Context, u64)> {
        // Dedup identical current contexts up front: the join runs once
        // per unique context and duplicates borrow the shared base result
        // instead of cloning it. The shared pass's cost is attributed to
        // the first lane that needed it.
        let mut uniq: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(group.len());
        for &i in group {
            match uniq
                .iter()
                .position(|&u| lanes[u].ctx.as_slice() == lanes[i].ctx.as_slice())
            {
                Some(s) => slot_of.push(s),
                None => {
                    slot_of.push(uniq.len());
                    uniq.push(i);
                }
            }
        }
        let fanout = self.fanout(lanes, group);
        let joined = {
            let contexts: Vec<&Context> = uniq.iter().map(|&i| &lanes[i].ctx).collect();
            match (vert, fanout) {
                (VertAxis::Descendant, true) => {
                    descendant_many_par(self.doc, &contexts, variant, self.pool, scratch)
                }
                (VertAxis::Descendant, false) => {
                    descendant_many(self.doc, &contexts, variant, scratch)
                }
                (VertAxis::Ancestor, true) => {
                    ancestor_many_par(self.doc, &contexts, variant, self.pool, scratch)
                }
                (VertAxis::Ancestor, false) => ancestor_many(self.doc, &contexts, variant, scratch),
            }
        };
        let axis = match vert {
            VertAxis::Descendant => Axis::Descendant,
            VertAxis::Ancestor => Axis::Ancestor,
        };
        // Fuse name tests over each shared base: every lane filtering
        // the same base by tag runs through the 64-lane mask kernel
        // back to back, so the gathered `kind`/`tag` cache lines stay
        // hot across the whole group instead of being re-fetched one
        // lane at a time.
        let mut fused: Vec<Option<Context>> = vec![None; group.len()];
        for (slot, (base, _)) in joined.iter().enumerate() {
            let named: Vec<(usize, TagId)> = group
                .iter()
                .enumerate()
                .filter(|&(gi, _)| slot_of[gi] == slot)
                .filter_map(|(gi, &i)| {
                    let step = &lanes[i].steps[lanes[i].step];
                    if matches!(step.axis(), Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
                        return None; // or-self lanes merge selves later
                    }
                    let NodeTest::Name(name) = &step.test else {
                        return None;
                    };
                    // An absent name means an empty result.
                    let tid = self.doc.tag_id(name).unwrap_or(staircase_accel::NO_TAG);
                    Some((gi, tid))
                })
                .collect();
            if named.len() < 2 {
                continue; // a lone filter gains nothing from fusing
            }
            let mut bufs: Vec<Vec<Pre>> = named.iter().map(|_| scratch.take()).collect();
            let (kind, tags) = (self.doc.kind_column(), self.doc.tag_column());
            let element = NodeKind::Element as u8;
            for (&(_, tid), buf) in named.iter().zip(bufs.iter_mut()) {
                mask::select_tag_candidates(kind, tags, element, tid, base.as_slice(), buf);
            }
            for ((gi, _), buf) in named.into_iter().zip(bufs) {
                fused[gi] = Some(Context::from_sorted(buf));
            }
        }
        let mut first_use = vec![true; uniq.len()];
        let mut outs: Vec<(Context, u64)> = Vec::with_capacity(group.len());
        for (gi, &i) in group.iter().enumerate() {
            let (base, jstats) = &joined[slot_of[gi]];
            let lane = &lanes[i];
            let step = &lane.steps[lane.step];
            let mut out = match fused[gi].take() {
                Some(filtered) => filtered,
                None => self.test_scratched(base, &step.test, axis, scratch),
            };
            if matches!(step.axis(), Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
                let selves = self.test_scratched(&lane.ctx, &step.test, Axis::SelfAxis, scratch);
                out = merge(&out, &selves);
                scratch.recycle(selves);
            }
            let touched = if std::mem::take(&mut first_use[slot_of[gi]]) {
                jstats.nodes_touched()
            } else {
                0
            };
            outs.push((out, touched));
        }
        for (base, _) in joined {
            scratch.recycle(base);
        }
        outs
    }

    /// One shared cursor over a tag fragment (prebuilt or one query-time
    /// selection scan) for every lane in `group`. The fragment join
    /// fuses the name test, so the join result *is* the tested result.
    fn fragment_outs(
        &self,
        lanes: &[Lane<'_>],
        group: &[usize],
        vert: VertAxis,
        name: &str,
        prescan: bool,
        scratch: &mut Scratch,
    ) -> Vec<(Context, u64)> {
        // Resolve the shared list once for the whole group. The prescan
        // variant's selection scan costs one pass over the plane (§4.4) —
        // paid once per group, attributed to its first lane — except for
        // names absent from the dictionary, where no scan runs.
        let (list, scan_cost) = if prescan {
            let cost = if self.doc.tag_id(name).is_some() {
                self.doc.len() as u64
            } else {
                0
            };
            (std::borrow::Cow::Owned(self.scan_list(name)), cost)
        } else {
            // The windowed lookup confines a lazy index's cracking to
            // the pre range the whole group can actually reach; a
            // prebuilt (eager) index serves the full fragment either
            // way.
            let contexts: Vec<&Context> = group.iter().map(|&i| &lanes[i].ctx).collect();
            (self.fragment_list_windowed(name, vert, &contexts), 0)
        };
        let fanout = self.fanout(lanes, group);
        let joined = {
            let contexts: Vec<&Context> = group.iter().map(|&i| &lanes[i].ctx).collect();
            match (vert, fanout) {
                (VertAxis::Descendant, true) => {
                    descendant_on_list_many_par(self.doc, &list, &contexts, self.pool, scratch)
                }
                (VertAxis::Descendant, false) => {
                    descendant_on_list_many(self.doc, &list, &contexts, scratch)
                }
                (VertAxis::Ancestor, true) => {
                    ancestor_on_list_many_par(self.doc, &list, &contexts, self.pool, scratch)
                }
                (VertAxis::Ancestor, false) => {
                    ancestor_on_list_many(self.doc, &list, &contexts, scratch)
                }
            }
        };
        let mut outs: Vec<(Context, u64)> = Vec::with_capacity(group.len());
        for (gi, (mut out, jstats)) in joined.into_iter().enumerate() {
            let lane = &lanes[group[gi]];
            let step = &lane.steps[lane.step];
            if matches!(step.axis(), Axis::DescendantOrSelf | Axis::AncestorOrSelf) {
                let selves = self.test_scratched(&lane.ctx, &step.test, Axis::SelfAxis, scratch);
                let merged = merge(&out, &selves);
                scratch.recycle(selves);
                scratch.recycle(std::mem::replace(&mut out, merged));
            }
            let touched = jstats.nodes_touched() + if gi == 0 { scan_cost } else { 0 };
            outs.push((out, touched));
        }
        outs
    }

    /// One shared suffix/prefix scan for every lane in `group`.
    fn horiz_outs(
        &self,
        lanes: &[Lane<'_>],
        group: &[usize],
        haxis: HorizAxis,
        scratch: &mut Scratch,
    ) -> Vec<(Context, u64)> {
        let fanout = self.fanout(lanes, group);
        let joined = {
            let contexts: Vec<&Context> = group.iter().map(|&i| &lanes[i].ctx).collect();
            match (haxis, fanout) {
                (HorizAxis::Following, true) => {
                    following_many_par(self.doc, &contexts, self.pool, scratch)
                }
                (HorizAxis::Following, false) => following_many(self.doc, &contexts, scratch),
                (HorizAxis::Preceding, true) => {
                    preceding_many_par(self.doc, &contexts, self.pool, scratch)
                }
                (HorizAxis::Preceding, false) => preceding_many(self.doc, &contexts, scratch),
            }
        };
        let axis = haxis.axis();
        let mut outs: Vec<(Context, u64)> = Vec::with_capacity(group.len());
        for (gi, (base, jstats)) in joined.into_iter().enumerate() {
            let step = &lanes[group[gi]].steps[lanes[group[gi]].step];
            // node() steps keep the whole region: the join result moves
            // straight through instead of being re-filtered.
            let out = if matches!(step.test, NodeTest::AnyNode) {
                base
            } else {
                let tested = self.test_scratched(&base, &step.test, axis, scratch);
                scratch.recycle(base);
                tested
            };
            outs.push((out, jstats.nodes_touched()));
        }
        outs
    }

    /// Applies the group's (all-semijoin, by construction of the lane
    /// forms) predicates wave by wave: the `w`-th predicates of every
    /// lane are sub-grouped by (axis, name, list source) and probed
    /// through one `*_in_many` call each, resolving the node list once
    /// per sub-group.
    fn predicate_rounds(
        &self,
        lanes: &[Lane<'_>],
        group: &[usize],
        outs: &mut [(Context, u64)],
        scratch: &mut Scratch,
    ) {
        let waves = group
            .iter()
            .map(|&i| lanes[i].steps[lanes[i].step].predicate_operators().len())
            .max()
            .unwrap_or(0);
        // A probe sub-group: (axis, tag name, prebuilt list?) and the
        // group-relative indices of its members.
        type ProbeSpec<'n> = ((SemijoinAxis, &'n str, bool), Vec<usize>);
        for w in 0..waves {
            // Sub-group the wave's probes by predicate spec.
            let mut specs: Vec<ProbeSpec<'_>> = Vec::new();
            for (gi, &i) in group.iter().enumerate() {
                let step = &lanes[i].steps[lanes[i].step];
                let Some(PredOp::Semijoin {
                    axis,
                    name,
                    prebuilt,
                }) = step.predicate_operators().get(w)
                else {
                    continue;
                };
                let key = (*axis, name.as_str(), *prebuilt);
                match specs.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(gi),
                    None => specs.push((key, vec![gi])),
                }
            }
            for ((axis, name, prebuilt), members) in specs {
                let list = if prebuilt {
                    self.fragment_list(name)
                } else {
                    std::borrow::Cow::Owned(self.scan_list(name))
                };
                // The probes are O(1) per candidate; big candidate sets
                // chunk across the pool (the kernel gates on actual
                // size, so small sets never pay handoff).
                let pooled = self.pool.width() > 1;
                let probed = {
                    let candidates: Vec<&Context> = members.iter().map(|&gi| &outs[gi].0).collect();
                    match (axis, pooled) {
                        (SemijoinAxis::Descendant, true) => {
                            has_descendant_in_many_par(self.doc, &candidates, &list, self.pool)
                        }
                        (SemijoinAxis::Descendant, false) => {
                            has_descendant_in_many(self.doc, &candidates, &list)
                        }
                        (SemijoinAxis::Child, true) => {
                            has_child_in_many_par(self.doc, &candidates, &list, self.pool)
                        }
                        (SemijoinAxis::Child, false) => {
                            has_child_in_many(self.doc, &candidates, &list)
                        }
                        (SemijoinAxis::Ancestor, true) => {
                            has_ancestor_in_many_par(self.doc, &candidates, &list, self.pool)
                        }
                        (SemijoinAxis::Ancestor, false) => {
                            has_ancestor_in_many(self.doc, &candidates, &list)
                        }
                    }
                };
                for (gi, (kept, _)) in members.into_iter().zip(probed) {
                    scratch.recycle(std::mem::replace(&mut outs[gi].0, kept));
                }
            }
        }
    }

    /// Records each lane's step trace and advances it to the next step,
    /// recycling the previous context's allocation; adaptive lanes then
    /// re-price their next pending step against the frontier they just
    /// observed.
    ///
    /// Governed lanes settle their budget here. `ambient_ran` says the
    /// pass executed with the group's shared budget installed: the core
    /// kernels already charged it, so the budget is only *checked* — a
    /// trip means the pass bailed early and every out of the group
    /// (same budget ⇒ same blast radius) is garbage to discard. A pass
    /// without ambient governance ran to completion ungoverned; each
    /// governed lane is charged its incremental touches now, and a trip
    /// fails just that lane's query (overshoot: one round).
    fn advance(
        &self,
        lanes: &mut [Lane<'_>],
        group: &[usize],
        outs: Vec<(Context, u64)>,
        scratch: &mut Scratch,
        failed: &mut [Option<Error>],
        ambient_ran: bool,
    ) {
        for (&i, (out, touched)) in group.iter().zip(outs) {
            let lane = &mut lanes[i];
            if failed[lane.query].is_none() {
                if let Some(budget) = &lane.budget {
                    let trip = if ambient_ran {
                        budget.check()
                    } else {
                        budget.charge(touched)
                    };
                    if let Some(trip) = trip {
                        failed[lane.query] = Some(trip_error(trip));
                    }
                }
            }
            if failed[lane.query].is_some() {
                scratch.recycle(out);
                lane.step = lane.steps.len();
                continue;
            }
            let step = &lane.steps[lane.step];
            lane.stats.steps.push(StepTrace {
                step: step.source().to_string(),
                op: rendered_op(step),
                est_cost: step.estimate.cost,
                replanned: step.replanned,
                result_size: out.len(),
                nodes_touched: touched,
                tuples_produced: out.len() as u64,
                // Lane-form joins are scan-shaped; only the per-lane twig
                // step (routed through `exec_step`) seeks.
                seeks: 0,
            });
            scratch.recycle(std::mem::replace(&mut lane.ctx, out));
            lane.step += 1;
            self.maybe_replan(&mut lanes[i]);
        }
    }

    /// The adaptive feedback loop's re-planning hook, run after every
    /// lane advance: overlay the *observed* frontier cardinality (and
    /// the session calibrator's fitted constants) on the document
    /// statistics, re-price the pending step's operator candidates, and
    /// switch the step's operator in place when the observed ranking
    /// disagrees with the planned choice. Switched steps carry the
    /// `[replan]` marker into their traces. Non-adaptive lanes — every
    /// fixed engine and the static [`crate::Engine::auto`] — never
    /// enter.
    fn maybe_replan(&self, lane: &mut Lane<'_>) {
        if !lane.adaptive || lane.ctx.is_empty() {
            return;
        }
        let Some(next) = lane.steps.get(lane.step) else {
            return;
        };
        // Re-price only when the observed frontier materially
        // contradicts the planner's estimate: within the factor the
        // static ranking stands, and skipping keeps the adaptive
        // engine's overhead near zero on well-estimated workloads.
        let observed = lane.ctx.len() as f64;
        let planned = match lane.step.checked_sub(1) {
            Some(prev) => lane.steps[prev].estimate.rows.max(1.0),
            None => 1.0,
        };
        if (observed / planned).max(planned / observed) < REPLAN_DISAGREE_FACTOR {
            return;
        }
        let rt = RuntimeStats::new(self.stats, observed).calibrated(self.calibrator);
        let Some((op, test_op, cost)) = replan_step(next, self.doc, &rt, self.sql.is_some()) else {
            return;
        };
        // First switch on this lane: clone the branch's steps so the
        // shared plan (and every other lane) stays untouched.
        let steps = lane.steps.to_mut();
        let s = &mut steps[lane.step];
        s.op = op;
        s.test_op = test_op;
        s.estimate.cost = cost;
        s.fanout = self.stats.fanout_worthwhile(cost);
        s.replanned = true;
    }
}
