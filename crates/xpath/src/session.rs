//! The session façade: one typed entry point for every engine.
//!
//! A [`Session`] owns a loaded [`Doc`] plus lazily built, *cached*
//! auxiliary structures — the per-tag [`TagIndex`] fragments and the SQL
//! baseline's [`SqlEngine`] B-tree — shared across queries and engines.
//! A [`Query`] is parsed once ([`Session::prepare`]) and run many times,
//! against any [`Engine`]; results come back as a [`QueryOutput`] whose
//! node sequence iterates without cloning.
//!
//! ```
//! use staircase_xpath::{Engine, Error, Session};
//!
//! let session = Session::parse_xml(
//!     "<site><open_auctions><open_auction><bidder><increase/></bidder>\
//!      </open_auction></open_auctions></site>")?;
//! let query = session.prepare("/descendant::increase/ancestor::bidder")?;
//! let hits = query.run(Engine::default());
//! assert_eq!(hits.len(), 1);
//! // Same parsed query, different engine — auxiliary structures are
//! // built at most once and reused.
//! let via_sql = query.run(Engine::sql().eq1_window(true).build()?);
//! assert_eq!(hits.nodes(), via_sql.nodes());
//! # Ok::<(), Error>(())
//! ```
//!
//! Nothing on this path panics: document loading, expression parsing,
//! engine configuration, and evaluation all report through
//! [`Error`].

use std::path::Path as FsPath;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use staircase_accel::{Context, Doc, Pre};
use staircase_baselines::SqlEngine;
use staircase_core::cost::{Calibrator, DocStats};
use staircase_core::governor::Budget;
use staircase_core::{ScratchPool, TagIndex, WorkerPool};

use crate::ast::UnionExpr;
use crate::engine::Engine;
use crate::error::Error;
use crate::eval::{EvalOutput, EvalStats, Executor};
use crate::parser::parse_union;
use crate::plan::{plan_union, PhysicalPlan};

/// A loaded document plus cached auxiliary structures, ready to answer
/// queries on any engine. See the [crate docs](crate) for an example.
pub struct Session {
    doc: Doc,
    tags: OnceLock<TagIndex>,
    sql: OnceLock<SqlEngine>,
    stats: OnceLock<DocStats>,
    tag_builds: AtomicUsize,
    sql_builds: AtomicUsize,
    /// Session-lifetime cost calibrator: every executed twig step feeds
    /// its (predicted cost, observed seeks) pair back in, and both the
    /// static planner and the adaptive re-planner read the fitted seek
    /// constant out. See [`Calibrator`].
    calibrator: Calibrator,
    /// The lane executor's buffer pools, persisted across queries and
    /// batches so a steady-state session stops allocating per step.
    /// Sharded (two shards per pool executor): concurrent queries and
    /// parallel round tasks each sweep out their own shard instead of
    /// falling back to throwaway allocations.
    scratch: ScratchPool,
    /// The session's persistent worker pool: built once (at
    /// construction, from [`Session::with_threads`] or the
    /// `STAIRCASE_THREADS` environment default) and reused by every
    /// query, batch, and [`Session::warm`] — nothing on the session path
    /// spawns threads per call. Width 1 spawns no threads at all.
    workers: WorkerPool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("nodes", &self.doc.len())
            .field("threads", &self.workers.width())
            .field("tag_index_built", &self.tags.get().is_some())
            .field("sql_engine_built", &self.sql.get().is_some())
            .finish()
    }
}

/// How many times each lazily built auxiliary structure was actually
/// constructed; see [`Session::aux_builds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuxBuilds {
    /// Constructions of the per-tag fragment index.
    pub tag_index: usize,
    /// Constructions of the SQL engine's B-tree.
    pub sql_engine: usize,
}

impl Session {
    /// Wraps an already encoded document. The worker-pool width defaults
    /// to the `STAIRCASE_THREADS` environment variable when set (and ≥ 1),
    /// else to 1 — fully sequential; see [`Session::with_threads`].
    pub fn new(doc: Doc) -> Session {
        Session::with_pool_width(doc, default_threads())
    }

    /// Rebuilds this session's worker pool with `threads` executors
    /// (clamped to ≥ 1): `threads − 1` persistent worker threads plus the
    /// querying thread itself. Every engine's evaluation fans out on this
    /// pool wherever the planner's cost hint says the work amortizes the
    /// handoff; width 1 spawns nothing and keeps the whole path
    /// sequential. Configure before preparing queries:
    ///
    /// ```
    /// # use staircase_xpath::{Engine, Error, Session};
    /// let session = Session::parse_xml("<a><b/><b/></a>")?.with_threads(4);
    /// assert_eq!(session.threads(), 4);
    /// assert_eq!(session.run("//b", Engine::default())?.len(), 2);
    /// # Ok::<(), Error>(())
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Session {
        let threads = threads.max(1);
        self.workers = WorkerPool::new(threads);
        self.scratch = ScratchPool::new(threads * 2);
        self
    }

    /// The worker-pool width queries of this session execute on.
    pub fn threads(&self) -> usize {
        self.workers.width()
    }

    fn with_pool_width(doc: Doc, threads: usize) -> Session {
        let threads = threads.max(1);
        Session {
            doc,
            tags: OnceLock::new(),
            sql: OnceLock::new(),
            stats: OnceLock::new(),
            tag_builds: AtomicUsize::new(0),
            sql_builds: AtomicUsize::new(0),
            calibrator: Calibrator::new(),
            scratch: ScratchPool::new(threads * 2),
            workers: WorkerPool::new(threads),
        }
    }

    /// Parses XML text and encodes it.
    ///
    /// # Errors
    ///
    /// [`Error::Xml`] when the text is not well-formed.
    pub fn parse_xml(xml: &str) -> Result<Session, Error> {
        Ok(Session::new(Doc::from_xml(xml)?))
    }

    /// Reads and parses an XML file.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read, [`Error::Xml`] when it
    /// is not well-formed.
    pub fn open_xml(path: impl AsRef<FsPath>) -> Result<Session, Error> {
        Session::parse_xml(&std::fs::read_to_string(path)?)
    }

    /// Decodes a document persisted with [`Doc::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`Error::Decode`] when the bytes are not a valid encoded plane.
    pub fn from_encoded_bytes(bytes: &[u8]) -> Result<Session, Error> {
        Ok(Session::new(Doc::from_bytes(bytes)?))
    }

    /// Reads a persisted (`.scj`) document.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read, [`Error::Decode`] when
    /// it does not decode.
    pub fn open_encoded(path: impl AsRef<FsPath>) -> Result<Session, Error> {
        Session::from_encoded_bytes(&std::fs::read(path)?)
    }

    /// The encoded document.
    pub fn doc(&self) -> &Doc {
        &self.doc
    }

    /// Releases the session, handing the document back.
    pub fn into_doc(self) -> Doc {
        self.doc
    }

    /// Parses `expr` into a reusable [`Query`] bound to this session.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] when the expression does not parse.
    pub fn prepare(&self, expr: &str) -> Result<Query<'_>, Error> {
        let parsed = parse_union(expr)?;
        Ok(Query {
            session: self,
            parsed,
            text: expr.to_string(),
            plans: Mutex::new(Vec::new()),
        })
    }

    /// One-shot convenience: [`Session::prepare`] + [`Query::run`].
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] when the expression does not parse.
    pub fn run(&self, expr: &str, engine: Engine) -> Result<QueryOutput, Error> {
        Ok(self.prepare(expr)?.run(engine))
    }

    /// Evaluates a whole batch of prepared queries from the document
    /// root, **sharing one pass** wherever the queries' current steps
    /// agree on a planned operator.
    ///
    /// Each round, lanes are grouped by the step's declared lane form
    /// ([`crate::PlannedStep::batchable`]): plain staircase joins share
    /// a merged-boundary plane scan
    /// ([`staircase_core::descendant_many`] /
    /// [`staircase_core::ancestor_many`]), fragment (on-list) joins
    /// naming the same tag share one cursor over its node list
    /// ([`staircase_core::descendant_on_list_many`] /
    /// [`staircase_core::ancestor_on_list_many`]), horizontal steps
    /// share one suffix/prefix scan
    /// ([`staircase_core::following_many`] /
    /// [`staircase_core::preceding_many`]), and semijoin predicates are
    /// probed group-wise ([`staircase_core::has_descendant_in_many`]
    /// and friends). Only the residue without a multi-context form —
    /// nested-loop predicates, structural axes, the naive/SQL/parallel
    /// operators — evaluates per lane, so for every query
    /// `run_many(&[q])[0].nodes() == q.run(engine).nodes()` holds
    /// engine-independently (property-tested). [`Query::run`] itself is
    /// this method's K = 1 case: single queries and batches execute
    /// through the same lane executor.
    ///
    /// Outputs arrive in input order with per-query [`EvalStats`]. In a
    /// batch, statistics count *incremental* cost: a plane position
    /// serving several queries is attributed to the first one that
    /// needed it, so touched-node totals over the batch equal the
    /// physical reads — strictly below the sequential sum whenever
    /// result regions overlap.
    ///
    /// Queries are evaluated against **this** session's document; a
    /// query prepared on a different session contributes its parsed
    /// expression only.
    pub fn run_many(&self, queries: &[&Query<'_>], engine: Engine) -> Vec<QueryOutput> {
        let budgets: Vec<Option<Arc<Budget>>> = queries.iter().map(|_| None).collect();
        self.run_many_governed(queries, engine, &budgets)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("ungoverned evaluation failed: {e}")))
            .collect()
    }

    /// [`Session::run_many`] under per-query governance: `budgets[i]`
    /// (deadline, cost ceiling, cancellation — see
    /// [`Budget`](staircase_core::governor::Budget)) governs
    /// `queries[i]`; `None` runs that query ungoverned.
    ///
    /// Enforcement is **lane-local**. A query that trips its budget
    /// comes back as `Err` ([`Error::DeadlineExceeded`] /
    /// [`Error::BudgetExhausted`] / [`Error::Cancelled`]) with its
    /// partial work discarded, while sibling queries of the same batch
    /// complete **node- and order-identical** to an ungoverned run —
    /// any pass shared between a failing and a surviving query runs
    /// ungoverned to completion and only the failing query is charged.
    /// A panic inside one query's lane is caught and isolated
    /// ([`Error::Internal`]): the session, its worker pool, and the
    /// sibling queries remain fully usable.
    ///
    /// `budgets.len()` must equal `queries.len()`.
    pub fn run_many_governed(
        &self,
        queries: &[&Query<'_>],
        engine: Engine,
        budgets: &[Option<Arc<Budget>>],
    ) -> Vec<Result<QueryOutput, Error>> {
        assert_eq!(
            queries.len(),
            budgets.len(),
            "one budget slot per query required"
        );
        if self.doc.is_empty() {
            // No rounds run, but a budget that is already dead (expired
            // deadline, cancelled) still fails its query, matching the
            // round-boundary check a non-empty document would hit.
            return budgets
                .iter()
                .map(|b| match b.as_ref().and_then(|b| b.check()) {
                    Some(trip) => Err(crate::batch::trip_error(trip)),
                    None => Ok(QueryOutput {
                        result: Context::empty(),
                        stats: EvalStats::default(),
                    }),
                })
                .collect();
        }
        // Queries prepared on this session reuse their cached plans; a
        // query prepared on a different session contributes its parsed
        // expression only (and is re-planned against this document).
        let plans: Vec<Arc<PhysicalPlan>> = queries
            .iter()
            .map(|q| {
                if std::ptr::eq(q.session, self) {
                    q.plan_for(engine)
                } else {
                    Arc::new(self.plan(&q.parsed, engine))
                }
            })
            .collect();
        let plan_refs: Vec<&PhysicalPlan> = plans.iter().map(Arc::as_ref).collect();
        let ex = self.executor(
            plan_refs.iter().any(|p| p.needs_tag_index()),
            plan_refs.iter().any(|p| p.needs_sql_engine()),
        );
        let root = Context::singleton(self.doc.root());
        ex.run_plans_governed(&plan_refs, &root, budgets)
            .into_iter()
            .map(|r| r.map(|EvalOutput { result, stats }| QueryOutput { result, stats }))
            .collect()
    }

    /// Lowers `expr` into the physical plan `engine` would execute,
    /// with per-step cost estimates — `EXPLAIN` for the staircase
    /// engine zoo. For fixed engines the plan simply spells out that
    /// engine's fixed policy; for [`Engine::auto`] it shows what the
    /// cost-based picker chose and why (the estimates). Planning builds
    /// no auxiliary structures.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] when the expression does not parse.
    pub fn explain(&self, expr: &str, engine: Engine) -> Result<PhysicalPlan, Error> {
        Ok(self.plan(&parse_union(expr)?, engine))
    }

    /// Document statistics (node/element counts, height, average depth,
    /// per-tag fragment sizes), gathered on first use and cached.
    pub fn doc_stats(&self) -> &DocStats {
        self.stats.get_or_init(|| DocStats::from_doc(&self.doc))
    }

    /// Eagerly builds **both** cached auxiliary structures — the per-tag
    /// [`TagIndex`] and the SQL engine's B-tree — **concurrently**, so
    /// the first query of every engine family finds them ready. On a
    /// session whose pool is wider than one the two builds run on the
    /// worker pool (no threads are spawned for the call); a width-1
    /// session falls back to a scoped spawn so warm-up still overlaps
    /// the builds — the one deliberate exception to the
    /// nothing-spawns-per-call rule, since a sequential warm would
    /// silently double the documented warm-up latency.
    ///
    /// Idempotent and cheap to repeat: each structure is still built at
    /// most once per session ([`Session::aux_builds`] reports exactly
    /// one construction however often `warm` and queries race).
    pub fn warm(&self) {
        if self.workers.width() > 1 {
            let builds: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| {
                    self.tag_index().warm_all(&self.doc);
                }),
                Box::new(|| {
                    self.sql_engine();
                }),
            ];
            self.workers.run(builds);
        } else {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    self.tag_index().warm_all(&self.doc);
                });
                self.sql_engine();
            });
        }
    }

    /// Pre-cracks the [`TagIndex`] fragments for exactly `names` —
    /// partial warm-up for workloads with a known hot tag set. Tags not
    /// listed stay *unbuilt*: they cost nothing until a query first
    /// touches them (the cracked-index counterpart of [`Session::warm`],
    /// which builds every fragment plus the SQL B-tree). Unknown names
    /// are ignored. Counts as the session's one tag-index construction.
    pub fn warm_tags(&self, names: &[&str]) {
        self.tag_index().warm_tags(&self.doc, names);
    }

    /// The per-tag fragment index, created on first use and cached for
    /// the session's lifetime. Creation is **lazy per fragment**
    /// ([`TagIndex::lazy`]): the index shell costs O(tags) up front and
    /// each tag's fragment materializes piecewise as queries touch it
    /// (cracking), so a session that never names a tag never pays for
    /// its fragment. [`Session::warm`] / [`Session::warm_tags`] convert
    /// to the eager build for all / selected tags.
    pub fn tag_index(&self) -> &TagIndex {
        self.tags.get_or_init(|| {
            self.tag_builds.fetch_add(1, Ordering::Relaxed);
            TagIndex::lazy(&self.doc)
        })
    }

    /// Is `name`'s tag fragment fully materialized (sorted) right now?
    /// `false` for unknown names, for a session whose index shell has
    /// not been created, and for fragments still in the cracked
    /// (piecewise) state. Exposed so servers and tests can observe which
    /// tags the workload has actually paid for.
    pub fn tag_fragment_built(&self, name: &str) -> bool {
        self.tags
            .get()
            .is_some_and(|idx| idx.fragment_built_by_name(&self.doc, name))
    }

    /// The session's cost calibrator (see the crate docs' *feedback
    /// loops* section): executed twig steps feed observed seek counts
    /// in; planning reads the fitted constants out.
    pub fn calibrator(&self) -> &Calibrator {
        &self.calibrator
    }

    /// The SQL baseline's B-tree engine, built on first use and cached
    /// for the session's lifetime.
    pub fn sql_engine(&self) -> &SqlEngine {
        self.sql.get_or_init(|| {
            self.sql_builds.fetch_add(1, Ordering::Relaxed);
            SqlEngine::build(&self.doc)
        })
    }

    /// How many times each auxiliary structure has been constructed so
    /// far — at most once each, however many queries and engines the
    /// session served. Exposed so tests and benchmarks can assert the
    /// reuse this type exists to provide.
    pub fn aux_builds(&self) -> AuxBuilds {
        AuxBuilds {
            tag_index: self.tag_builds.load(Ordering::Relaxed),
            sql_engine: self.sql_builds.load(Ordering::Relaxed),
        }
    }

    /// Lowers a parsed expression into the plan `engine` executes.
    pub(crate) fn plan(&self, parsed: &UnionExpr, engine: Engine) -> PhysicalPlan {
        plan_union(
            parsed,
            &self.doc,
            self.doc_stats(),
            engine,
            self.calibrator.twig_seek_factor(),
        )
    }

    /// Pairs the document with exactly the (cached) auxiliary structures
    /// the plans at hand require; nothing else is built.
    fn executor(&self, needs_tags: bool, needs_sql: bool) -> Executor<'_> {
        Executor {
            doc: &self.doc,
            tags: needs_tags.then(|| self.tag_index()),
            sql: needs_sql.then(|| self.sql_engine()),
            pool: &self.workers,
            scratch: &self.scratch,
            stats: self.doc_stats(),
            calibrator: &self.calibrator,
        }
    }

    /// The executor for one plan.
    pub(crate) fn executor_for(&self, plan: &PhysicalPlan) -> Executor<'_> {
        self.executor(plan.needs_tag_index(), plan.needs_sql_engine())
    }
}

/// The session's default worker-pool width: the `STAIRCASE_THREADS`
/// environment variable when set to a positive integer (how the CI
/// matrix forces every test through the parallel paths), else 1 —
/// parallelism is opt-in per session via [`Session::with_threads`].
fn default_threads() -> usize {
    std::env::var("STAIRCASE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// An expression parsed once by [`Session::prepare`], runnable many
/// times against any engine. Physical plans are cached per engine, so
/// repeated runs (and batches) skip re-planning — the shape the async
/// query server will cache and batch by.
pub struct Query<'s> {
    session: &'s Session,
    parsed: UnionExpr,
    text: String,
    /// Per-engine plan cache (an engine's plan over a fixed document is
    /// deterministic). A `Vec` beats a map here: real query mixes touch
    /// a handful of engines at most.
    plans: Mutex<Vec<(Engine, Arc<PhysicalPlan>)>>,
}

impl Clone for Query<'_> {
    fn clone(&self) -> Self {
        Query {
            session: self.session,
            parsed: self.parsed.clone(),
            text: self.text.clone(),
            plans: Mutex::new(self.plans.lock().unwrap_or_else(|e| e.into_inner()).clone()),
        }
    }
}

impl std::fmt::Debug for Query<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query").field("text", &self.text).finish()
    }
}

impl<'s> Query<'s> {
    /// The expression text this query was prepared from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The session this query is bound to.
    pub fn session(&self) -> &'s Session {
        self.session
    }

    /// Evaluates from the document root on `engine`.
    pub fn run(&self, engine: Engine) -> QueryOutput {
        if self.session.doc.is_empty() {
            // No root to start from: every path is empty.
            return QueryOutput {
                result: Context::empty(),
                stats: EvalStats::default(),
            };
        }
        self.run_unchecked(&Context::singleton(self.session.doc.root()), engine)
    }

    /// Evaluates from an explicit context sequence on `engine`.
    ///
    /// # Errors
    ///
    /// [`Error::ContextOutOfRange`] when `context` names a node outside
    /// this session's document (e.g. a pre rank taken from a different
    /// or stale document) — rejected up front rather than panicking
    /// mid-evaluation.
    pub fn run_from(&self, context: &Context, engine: Engine) -> Result<QueryOutput, Error> {
        let len = self.session.doc.len();
        if let Some(pre) = context.iter().find(|&v| v as usize >= len) {
            return Err(Error::ContextOutOfRange { pre, len });
        }
        Ok(self.run_unchecked(context, engine))
    }

    /// [`Query::run`] under a [`Budget`]: the query stops cooperatively
    /// at its deadline or cost ceiling (or when
    /// [`Budget::cancel`] is called from another thread) and reports
    /// the trip as a typed error; a panic during evaluation is caught
    /// and isolated as [`Error::Internal`], leaving the session fully
    /// usable. The K = 1 case of [`Session::run_many_governed`].
    ///
    /// # Errors
    ///
    /// [`Error::DeadlineExceeded`], [`Error::BudgetExhausted`],
    /// [`Error::Cancelled`], [`Error::Internal`].
    pub fn run_governed(&self, engine: Engine, budget: Arc<Budget>) -> Result<QueryOutput, Error> {
        self.session
            .run_many_governed(&[self], engine, &[Some(budget)])
            .pop()
            .expect("one query in, one result out")
    }

    /// [`Query::run_from`] under a [`Budget`]; see
    /// [`Query::run_governed`].
    ///
    /// # Errors
    ///
    /// [`Error::ContextOutOfRange`] for a context node outside this
    /// session's document, plus everything [`Query::run_governed`]
    /// reports.
    pub fn run_from_governed(
        &self,
        context: &Context,
        engine: Engine,
        budget: Arc<Budget>,
    ) -> Result<QueryOutput, Error> {
        let len = self.session.doc.len();
        if let Some(pre) = context.iter().find(|&v| v as usize >= len) {
            return Err(Error::ContextOutOfRange { pre, len });
        }
        let plan = self.plan_for(engine);
        let ex = self.session.executor_for(&plan);
        ex.run_plans_governed(&[&plan], context, &[Some(budget)])
            .pop()
            .expect("one plan in, one result out")
            .map(|EvalOutput { result, stats }| QueryOutput { result, stats })
    }

    /// Lowers this query into the physical plan `engine` would execute
    /// (see [`Session::explain`]).
    pub fn explain(&self, engine: Engine) -> PhysicalPlan {
        (*self.plan_for(engine)).clone()
    }

    /// The cached plan for `engine`, planning on first use.
    fn plan_for(&self, engine: Engine) -> Arc<PhysicalPlan> {
        let mut cache = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, plan)) = cache.iter().find(|(e, _)| *e == engine) {
            return Arc::clone(plan);
        }
        let plan = Arc::new(self.session.plan(&self.parsed, engine));
        cache.push((engine, Arc::clone(&plan)));
        plan
    }

    /// Evaluation core; `context` must already be in bounds. A single
    /// query is the K = 1 batch: it executes through the same lane
    /// executor as [`Session::run_many`].
    fn run_unchecked(&self, context: &Context, engine: Engine) -> QueryOutput {
        let plan = self.plan_for(engine);
        let ex = self.session.executor_for(&plan);
        let EvalOutput { result, stats } = ex
            .run_plans(&[&plan], context)
            .pop()
            .expect("one plan in, one output out");
        QueryOutput { result, stats }
    }
}

/// A query result: the node sequence (document order, duplicate-free)
/// plus per-step statistics. Iterates without cloning:
///
/// ```
/// # use staircase_xpath::{Engine, Error, Session};
/// # let session = Session::parse_xml("<a><b/><b/></a>")?;
/// let out = session.run("//b", Engine::default())?;
/// for pre in &out {
///     println!("hit node {pre}");
/// }
/// assert_eq!(out.iter().count(), out.len());
/// # Ok::<(), Error>(())
/// ```
///
/// Deliberately **not** `PartialEq`: per-step statistics differ between
/// engines even when results agree, so whole-output equality would be a
/// trap. Compare [`QueryOutput::nodes`] instead.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    result: Context,
    stats: EvalStats,
}

impl QueryOutput {
    /// The result node sequence.
    pub fn nodes(&self) -> &Context {
        &self.result
    }

    /// Iterates over the result's pre ranks, in document order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Pre> + '_ {
        self.result.iter()
    }

    /// Number of result nodes.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// `true` when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// Per-step evaluation statistics.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Releases the output, handing the node sequence back.
    pub fn into_nodes(self) -> Context {
        self.result
    }
}

impl<'a> IntoIterator for &'a QueryOutput {
    type Item = Pre;
    type IntoIter = <&'a Context as IntoIterator>::IntoIter;
    fn into_iter(self) -> Self::IntoIter {
        self.result.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staircase_core::Variant;

    fn session() -> Session {
        Session::parse_xml(
            "<site><open_auctions>\
             <open_auction id='a0'><bidder><increase>1</increase></bidder>\
             <bidder><increase>2</increase></bidder></open_auction>\
             </open_auctions></site>",
        )
        .expect("fixture parses")
    }

    #[test]
    fn aux_structures_build_at_most_once() {
        let s = session();
        assert_eq!(
            s.aux_builds(),
            AuxBuilds {
                tag_index: 0,
                sql_engine: 0
            }
        );

        let fragmented = Engine::staircase().fragmented(true).build().unwrap();
        let sql = Engine::sql().eq1_window(true).build().unwrap();
        let q1 = s.prepare("/descendant::increase/ancestor::bidder").unwrap();
        let q2 = s.prepare("//bidder").unwrap();
        for _ in 0..5 {
            for q in [&q1, &q2] {
                q.run(fragmented);
                q.run(sql);
                q.run(Engine::default());
            }
        }
        // 30 runs later: one TagIndex, one SqlEngine.
        assert_eq!(
            s.aux_builds(),
            AuxBuilds {
                tag_index: 1,
                sql_engine: 1
            }
        );
    }

    #[test]
    fn name_test_filtering_reuses_the_scratch_pool() {
        // Width 1 regardless of STAIRCASE_THREADS: this pins the
        // sequential filtering path, where takes and recycles balance
        // exactly. (Wider pools route rounds through whichever shard a
        // worker lands on, so a take can miss a non-empty pool and
        // allocate fresh — bounded, but not round-for-round equal.)
        let s = session().with_threads(1);
        let q = s.prepare("/descendant::bidder/child::increase").unwrap();
        // Warm phase: enough runs for every shard's pool to reach its
        // steady population (fresh allocations from structural steps
        // enter the pool as they are recycled; the escaping result
        // buffer leaves it; the bounds cap the growth).
        for _ in 0..200 {
            q.run(Engine::default());
        }
        let steady = s.scratch.pooled_total();
        assert!(steady > 0, "warm runs must leave recycled buffers pooled");
        // Steady state: the masked name/kind filters draw their output
        // buffers from the pool and recycle their inputs back into it,
        // so repeated runs neither grow nor shrink it — filtering
        // allocates nothing.
        for round in 0..10 {
            q.run(Engine::default());
            assert_eq!(
                s.scratch.pooled_total(),
                steady,
                "round {round}: steady-state filtering must not allocate"
            );
        }
    }

    #[test]
    fn plain_staircase_builds_nothing() {
        let s = session();
        s.run("//bidder", Engine::default()).unwrap();
        s.run("//bidder", Engine::staircase().parallel(2).build().unwrap())
            .unwrap();
        s.run("//bidder", Engine::naive()).unwrap();
        assert_eq!(s.aux_builds(), AuxBuilds::default());
    }

    #[test]
    fn prepared_query_reruns_without_reparsing() {
        let s = session();
        let q = s.prepare("/descendant::increase/ancestor::bidder").unwrap();
        assert_eq!(q.text(), "/descendant::increase/ancestor::bidder");
        let a = q.run(Engine::default());
        let b = q.run(Engine::staircase().variant(Variant::Basic).build().unwrap());
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn output_iterates_without_cloning() {
        let s = session();
        let out = s.run("//bidder", Engine::default()).unwrap();
        let via_ref: Vec<Pre> = (&out).into_iter().collect();
        let via_iter: Vec<Pre> = out.iter().collect();
        assert_eq!(via_ref, via_iter);
        assert_eq!(via_ref.len(), out.len());
        assert_eq!(out.into_nodes().into_vec(), via_iter);
    }

    #[test]
    fn load_errors_are_typed() {
        assert!(matches!(
            Session::parse_xml("<a><b></a>"),
            Err(Error::Xml(_))
        ));
        assert!(matches!(
            Session::from_encoded_bytes(b"junk"),
            Err(Error::Decode(_))
        ));
        assert!(matches!(
            Session::open_xml("/nonexistent/path.xml"),
            Err(Error::Io(_))
        ));
        assert!(matches!(
            Session::open_encoded("/nonexistent/path.scj"),
            Err(Error::Io(_))
        ));
        let s = session();
        assert!(matches!(s.prepare("///"), Err(Error::Parse(_))));
    }

    #[test]
    fn out_of_range_context_is_a_typed_error() {
        let s = session();
        let q = s.prepare("descendant::bidder").unwrap();
        let err = q.run_from(&Context::singleton(9999), Engine::default());
        assert!(
            matches!(err, Err(Error::ContextOutOfRange { pre: 9999, .. })),
            "got {err:?}"
        );
        // In-bounds contexts still work.
        let ok = q
            .run_from(&Context::singleton(0), Engine::default())
            .unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn empty_documents_yield_empty_results() {
        let s = Session::new(staircase_accel::EncodingBuilder::new().finish());
        let out = s.run("//anything", Engine::default()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn session_round_trips_the_doc() {
        let s = session();
        let n = s.doc().len();
        let doc = s.into_doc();
        assert_eq!(doc.len(), n);
    }
}
