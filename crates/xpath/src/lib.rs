//! # staircase-xpath
//!
//! An XPath subset — parser, AST and evaluator — over the XPath
//! accelerator encoding, fronted by a session API:
//!
//! * [`Session`] owns a loaded document plus lazily built, cached
//!   auxiliary structures (per-tag fragments, the SQL baseline's
//!   B-tree), shared across queries and engines; [`Session::warm`]
//!   builds both eagerly (and concurrently) ahead of traffic;
//! * [`Query`] ([`Session::prepare`]) is parsed once and run many times,
//!   against any engine, yielding a [`QueryOutput`];
//! * [`Session::run_many`] evaluates a whole *batch* of prepared
//!   queries, merging their staircase boundaries so aligned
//!   `descendant`/`ancestor` steps share **one pass over the plane**
//!   instead of rescanning per query;
//! * [`Engine`] configurations come from builders —
//!   `Engine::staircase().variant(..).pushdown(..)`, `.parallel(n)`,
//!   `Engine::sql().eq1_window(..)`, [`Engine::naive`] — validated at
//!   build time;
//! * every failure is a typed [`Error`]; nothing on the query path
//!   panics.
//!
//! The engines: the paper's staircase join (any
//! [`staircase_core::Variant`], optionally with §4.4 name-test pushdown
//! or §6 prebuilt per-tag fragments), the partitioned parallel join, the
//! §3.1 naive strategy, and the tree-unaware B-tree plan of Figure 3.
//!
//! The supported grammar covers what the paper's experiments need and the
//! usual abbreviations:
//!
//! ```text
//! path      := '/'? step ('/' step)*             (also '//' abbreviation)
//! step      := (axis '::')? nodetest pred*  |  '.'  |  '..'  |  '@' name
//! nodetest  := name | '*' | 'node()' | 'text()' | 'comment()'
//!            | 'processing-instruction()'
//! pred      := '[' path ']'                      (existential semantics)
//! ```
//!
//! ## Example
//!
//! A server-shaped workload: warm the session once, prepare the query
//! mix, answer the whole batch with shared plane scans.
//!
//! ```
//! use staircase_xpath::{Engine, Error, Session};
//!
//! let session = Session::parse_xml(
//!     "<site><open_auctions><open_auction><bidder><increase/></bidder>\
//!      <bidder><increase/></bidder></open_auction></open_auctions></site>")?;
//! session.warm(); // aux structures built eagerly, in parallel
//!
//! let batch = [
//!     session.prepare("/descendant::increase/ancestor::bidder")?,
//!     session.prepare("//bidder")?,
//!     session.prepare("//increase")?,
//! ];
//! let queries: Vec<&_> = batch.iter().collect();
//! let outputs = session.run_many(&queries, Engine::default());
//! assert_eq!(outputs.len(), 3);
//! assert_eq!(outputs[1].len(), 2);
//! // Identical to running each query alone — only the scans are shared.
//! for (query, out) in batch.iter().zip(&outputs) {
//!     assert_eq!(out.nodes(), query.run(Engine::default()).nodes());
//! }
//! # Ok::<(), Error>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod batch;
mod engine;
mod error;
mod eval;
mod parser;
mod session;

pub use ast::{NodeTest, Path, Predicate, Step, UnionExpr};
pub use engine::{Engine, SqlBuilder, StaircaseBuilder};
pub use error::Error;
pub use eval::{EvalOutput, EvalStats, StepTrace};
pub use parser::{parse, parse_union, ParseError};
pub use session::{AuxBuilds, Query, QueryOutput, Session};
