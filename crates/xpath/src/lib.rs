//! # staircase-xpath
//!
//! An XPath subset — parser, AST and evaluator — over the XPath
//! accelerator encoding, fronted by a session API:
//!
//! * [`Session`] owns a loaded document plus lazily built, cached
//!   auxiliary structures (per-tag fragments, the SQL baseline's
//!   B-tree), shared across queries and engines;
//! * [`Query`] ([`Session::prepare`]) is parsed once and run many times,
//!   against any engine, yielding a [`QueryOutput`];
//! * [`Engine`] configurations come from builders —
//!   `Engine::staircase().variant(..).pushdown(..)`, `.parallel(n)`,
//!   `Engine::sql().eq1_window(..)`, [`Engine::naive`] — validated at
//!   build time;
//! * every failure is a typed [`Error`]; nothing on the query path
//!   panics.
//!
//! The engines: the paper's staircase join (any
//! [`staircase_core::Variant`], optionally with §4.4 name-test pushdown
//! or §6 prebuilt per-tag fragments), the partitioned parallel join, the
//! §3.1 naive strategy, and the tree-unaware B-tree plan of Figure 3.
//!
//! The supported grammar covers what the paper's experiments need and the
//! usual abbreviations:
//!
//! ```text
//! path      := '/'? step ('/' step)*             (also '//' abbreviation)
//! step      := (axis '::')? nodetest pred*  |  '.'  |  '..'  |  '@' name
//! nodetest  := name | '*' | 'node()' | 'text()' | 'comment()'
//!            | 'processing-instruction()'
//! pred      := '[' path ']'                      (existential semantics)
//! ```
//!
//! ## Example
//!
//! ```
//! use staircase_xpath::{Engine, Error, Session};
//!
//! let session = Session::parse_xml(
//!     "<site><open_auctions><open_auction><bidder><increase/></bidder>\
//!      </open_auction></open_auctions></site>")?;
//! let query = session.prepare("/descendant::increase/ancestor::bidder")?;
//! let hits = query.run(Engine::default());
//! assert_eq!(hits.len(), 1);
//! # Ok::<(), Error>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod engine;
mod error;
mod eval;
mod parser;
mod session;

pub use ast::{NodeTest, Path, Predicate, Step, UnionExpr};
pub use engine::{Engine, SqlBuilder, StaircaseBuilder};
pub use error::Error;
pub use eval::{EvalOutput, EvalStats, StepTrace};
pub use parser::{parse, parse_union, ParseError};
pub use session::{AuxBuilds, Query, QueryOutput, Session};

#[allow(deprecated)]
pub use eval::{evaluate, evaluate_path, Evaluator};
