//! # staircase-xpath
//!
//! An XPath subset — parser, AST, **planner**, and plan interpreter —
//! over the XPath accelerator encoding, fronted by a session API.
//!
//! ## The plan/execute split
//!
//! Query evaluation is two phases. *Planning* lowers a parsed
//! expression into a [`PhysicalPlan`]: per step, a typed operator
//! ([`StepOp`] — plain staircase join, §6 tag-fragment join, parallel
//! join, §3.1 naive region scan, Figure-3 SQL plan, horizontal scan,
//! structural axis), a node-test operator ([`TestOp`]), lowered
//! predicate operators ([`PredOp`], including the §3.3 semijoin fast
//! path), and a cost estimate. *Execution* interprets the plan; it makes
//! no engine decisions of its own.
//!
//! An [`Engine`] is therefore a **planning policy**:
//!
//! * the fixed engines — `Engine::staircase().variant(..).pushdown(..)`,
//!   `.fragmented(true)`, `.parallel(n)`, `Engine::sql().eq1_window(..)`,
//!   [`Engine::naive`] — lower every step to the operator that engine
//!   always uses (builders validate configurations up front);
//! * [`Engine::auto`] prices the candidate operators per step from
//!   document statistics (node counts, per-tag fragment sizes,
//!   Equation-1 context-window estimates; see
//!   [`staircase_core::cost`]) and keeps the cheapest — fragment joins
//!   for selective name tests, the estimation-skipping staircase join
//!   for unselective steps. Results are node-identical to every fixed
//!   engine (property-tested); only the access pattern changes;
//! * [`Engine::adaptive`] starts from auto's plan and re-prices pending
//!   steps mid-query from *observed* frontier cardinalities (see
//!   *Feedback loops* below).
//!
//! [`Session::explain`] / [`Query::explain`] return the plan with
//! per-step cost estimates (`xq --explain` on the command line).
//!
//! ## Twig planning
//!
//! Step-at-a-time evaluation has a worst case the paper's cost model
//! can see coming: a run of vertical steps whose intermediate results
//! dwarf the final answer (`//a[b]//c[d]` on a document where almost
//! every `a` has a `b` but almost none leads to a `c[d]`). For these
//! the planner recognizes **twig regions** — maximal runs of
//! `descendant::`/`child::` name-test steps, starting on a
//! `descendant::` step, whose predicates are themselves vertical
//! existential paths — and can fuse a whole region into one
//! [`StepOp::Twig`] operator ([`TwigSpec`] describes the shape): a
//! worst-case-optimal **multiway leapfrog intersection**
//! ([`staircase_core::twig_match`]) that runs one galloping cursor per
//! leg over the §6 per-tag pre/post fragments and never materializes an
//! intermediate step result. Output is the last leg's bindings in
//! document order, node-identical to the step-at-a-time plans
//! (property-tested), and the step's [`StepTrace`] reports the actual
//! cursor `seeks` next to the nodes touched.
//!
//! Two engines reach the operator:
//!
//! * [`Engine::twig`] fuses *every* eligible region (steps outside a
//!   region run as fragment joins) — the forced form benchmarks use;
//! * [`Engine::auto`] prices each region both ways —
//!   [`staircase_core::DocStats::step_blowup_estimate`] (the peak
//!   intermediate a step plan would carry) against
//!   [`staircase_core::DocStats::twig_frontier_cost`] (the leapfrog's
//!   seek bill) — and fuses only where the blowup exceeds the frontier
//!   cost, so uniform workloads keep their step-at-a-time plans.
//!
//! In `EXPLAIN` output a fused region renders as its leaf paths, e.g.
//! `twig[a>b, a>c.d]` (`>` a descendant edge, `.` a child edge).
//!
//! ## Feedback loops
//!
//! Static planning trusts two things that can be wrong at run time:
//! the *cardinality model* (Equation-1 windows scaled by global tag
//! frequencies — misled whenever a tag's mass is clustered rather than
//! uniform) and the *cost constants* (the twig seek bill is predicted
//! from first principles). Two feedback loops correct for both without
//! giving up the plan/execute split:
//!
//! * **Re-planning at step boundaries** ([`Engine::adaptive`]). The
//!   lane executor plans exactly like [`Engine::auto`], but after each
//!   advance it compares the lane's *observed* frontier cardinality
//!   against the planner's estimate. When they disagree by an order of
//!   magnitude, the observed value is overlaid on the document
//!   statistics ([`staircase_core::RuntimeStats`]), the pending step's
//!   candidates are re-priced, and the operator is switched in place if
//!   the observed ranking disagrees with the planned choice. Switching
//!   is lane-local (the cached plan is copy-on-write, so other lanes
//!   and later runs are untouched), results stay node-identical to
//!   every fixed engine (property-tested at pool widths 1/2/4, through
//!   [`Session::run`] and [`Session::run_many`] alike), and switched
//!   steps carry a `[replan]` marker in their [`StepTrace`] and in the
//!   post-run report (`xq --explain --stats`). On well-estimated
//!   workloads the disagreement gate keeps the overhead near zero.
//! * **Constant calibration** ([`Session::calibrator`],
//!   [`staircase_core::Calibrator`]). Every executed twig step reports
//!   its actual leapfrog seek count ([`StepTrace::seeks`]) against the
//!   cost the planner predicted; the session keeps a clamped
//!   exponentially-weighted ratio and later plans scale
//!   [`staircase_core::DocStats::twig_frontier_cost`] by it — so the
//!   fuse-or-not decision sharpens with observed behaviour instead of
//!   drifting on mispredicted constants.
//!
//! The companion loop on the storage side: the session's per-tag
//! fragment index is **cracked** ([`staircase_core::TagIndex::lazy`]) —
//! fragments materialize piecewise as queries touch pre ranges, hot
//! tags converge to fully sorted fragments within
//! [`staircase_core::CRACK_CONVERGE_TOUCHES`] touches, cold tags are
//! never built, and [`Session::warm`] / [`Session::warm_tags`] remain
//! the explicit eager builds (the server's `--warm` / `--warm-tags`).
//!
//! ## The session API
//!
//! * [`Session`] owns a loaded document plus lazily built, cached
//!   auxiliary structures (per-tag fragments, the SQL baseline's
//!   B-tree, document statistics), shared across queries and engines;
//!   executing a plan builds exactly what that plan needs.
//!   [`Session::warm`] builds everything eagerly (and concurrently)
//!   ahead of traffic;
//! * [`Query`] ([`Session::prepare`]) is parsed once and run many times,
//!   against any engine, yielding a [`QueryOutput`]; physical plans are
//!   cached per engine, so repeated runs skip re-planning;
//! * every failure is a typed [`Error`]; nothing on the query path
//!   panics.
//!
//! ## Lane-native execution
//!
//! Multi-context execution is the **native form**: every evaluation is
//! a batch of *lanes* (one per union branch per query), advancing in
//! rounds, and `Session::run` is simply [`Session::run_many`] with
//! K = 1. Batchability is a *declared property of the planned operator*
//! ([`PlannedStep::batchable`]): plain staircase joins, fragment
//! (on-list) joins, horizontal scans, and semijoin predicate probes all
//! carry multi-context forms in `staircase_core`, so lanes whose
//! current steps agree — whatever engine planned them, including
//! [`Engine::auto`] — share **one pass** per round (merged-boundary
//! plane scans, one cursor per shared tag fragment, one suffix/prefix
//! scan per horizontal group, grouped predicate probes). Only the
//! genuinely unbatchable residue — nested-loop predicates, structural
//! axes, the naive/SQL/parallel operators — drops to the sequential
//! per-lane interpreter. Per-query [`EvalStats`] count *incremental*
//! cost (a shared read is attributed to the first lane that needed it),
//! so touched totals across a batch equal physical reads.
//!
//! ## Threading model
//!
//! Every session owns a **persistent worker pool**
//! ([`staircase_core::WorkerPool`]), built once — width 1 by default,
//! [`Session::with_threads`] or the `STAIRCASE_THREADS` environment
//! variable to widen — and reused by every query, batch, and
//! [`Session::warm`]; nothing on the query path spawns threads per
//! call. Width `n` means `n` executors: `n − 1` pool threads plus the
//! querying thread itself, which drains the same work queue while it
//! waits, so a width-1 session is *exactly* the sequential executor
//! with zero handoff anywhere.
//!
//! On a wider pool the lane executor parallelises two ways:
//!
//! * **Across a round**: each lane-form group's shared pass — and each
//!   per-lane fallback step — is an independent piece of the round and
//!   runs as its own pool task, sweeping out its own scratch shard
//!   ([`staircase_core::ScratchPool`]).
//! * **Inside a pass**: a step whose cost estimate carries the
//!   planner's *fanout hint* ([`PlannedStep::fanout`], `[par]` in
//!   `EXPLAIN` output) splits its scan into **morsels** — contiguous
//!   chunks of the pruned boundary list, disjoint pre-ranges in the
//!   paper's §3.2/Figure-8 sense — so per-worker results concatenate in
//!   document order with no merge sort, and per-worker statistics sum
//!   to the sequential counters *exactly* (the parallel kernels
//!   reproduce the sequential scans' per-position behaviour, asserted
//!   by equivalence tests at widths 1/2/4). Steps below the cost
//!   model's fanout floor stay sequential however wide the pool is, so
//!   small queries never pay worker handoff.
//!
//! Sessions are [`Sync`]: concurrent callers share the same pool and
//! shards, which is the execution backbone the future query server
//! batches onto.
//!
//! ## Governance and the failure model
//!
//! Long or adversarial queries are kept on a leash by the **query
//! governor** ([`staircase_core::governor`]): a [`Budget`] carries an
//! optional wall-clock deadline, an optional touched-nodes cost
//! ceiling, and a cancellation flag, and is enforced *cooperatively* —
//! the core kernels tick it at partition/chunk/seek boundaries and the
//! lane executor checks it at round boundaries, so a governed query
//! stops with bounded overshoot and no locks held. The governed entry
//! points are [`Query::run_governed`] / [`Query::run_from_governed`] /
//! [`Session::run_many_governed`]; ungoverned calls pay nothing (one
//! branch per kernel).
//!
//! What can fail, and what survives:
//!
//! * a tripped budget fails **only its own query** —
//!   [`Error::DeadlineExceeded`], [`Error::BudgetExhausted`], or
//!   [`Error::Cancelled`] — and its partial work is discarded, never
//!   returned;
//! * sibling queries of the same [`Session::run_many_governed`] batch
//!   complete **node- and order-identical to an ungoverned run**: a
//!   pass shared with a failing query runs ungoverned to completion and
//!   only the failing query is charged at the round boundary;
//! * a panic inside one query's evaluation (a bug, or a
//!   [`staircase_core::faults`] fail point) is caught at the lane/pass
//!   boundary and isolated as [`Error::Internal`] — the [`Session`],
//!   its worker pool, its cached auxiliary structures, and every other
//!   query remain fully usable.
//!
//! The supported grammar covers what the paper's experiments need and the
//! usual abbreviations:
//!
//! ```text
//! path      := '/'? step ('/' step)*             (also '//' abbreviation)
//! step      := (axis '::')? nodetest pred*  |  '.'  |  '..'  |  '@' name
//! nodetest  := name | '*' | 'node()' | 'text()' | 'comment()'
//!            | 'processing-instruction()'
//! pred      := '[' path ']'                      (existential semantics)
//! ```
//!
//! ## Example
//!
//! Cost-based planning end to end: inspect the plan, then run it.
//!
//! ```
//! use staircase_xpath::{Engine, Error, Session, StepOp};
//!
//! let session = Session::parse_xml(
//!     "<site><open_auctions><open_auction><bidder><increase/></bidder>\
//!      <bidder><increase/></bidder></open_auction></open_auctions></site>")?;
//!
//! // A selective name test plans as a prebuilt fragment join under auto…
//! let plan = session.explain("/descendant::increase/ancestor::bidder",
//!                            Engine::auto())?;
//! assert!(matches!(plan.branches()[0].steps()[0].operator(),
//!                  StepOp::Fragment { prescan: false }));
//!
//! // …and runs identically to every fixed engine.
//! let query = session.prepare("/descendant::increase/ancestor::bidder")?;
//! assert_eq!(query.run(Engine::auto()).nodes(),
//!            query.run(Engine::default()).nodes());
//!
//! // Batches still share plane passes wherever planned steps line up.
//! let batch = [
//!     session.prepare("/descendant::increase/ancestor::bidder")?,
//!     session.prepare("//bidder")?,
//! ];
//! let queries: Vec<&_> = batch.iter().collect();
//! let outputs = session.run_many(&queries, Engine::auto());
//! assert_eq!(outputs[1].len(), 2);
//! # Ok::<(), Error>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod batch;
mod engine;
mod error;
mod eval;
mod parser;
mod plan;
mod session;

pub use ast::{NodeTest, Path, Predicate, Step, UnionExpr};
pub use engine::{Engine, SqlBuilder, StaircaseBuilder};
pub use error::Error;
pub use eval::{EvalOutput, EvalStats, StepTrace};
pub use parser::{parse, parse_union, ParseError};
pub use plan::{
    PathPlan, PhysicalPlan, PlannedStep, PredOp, SemijoinAxis, StepEstimate, StepOp, TestOp,
    TwigSpec,
};
pub use session::{AuxBuilds, Query, QueryOutput, Session};
pub use staircase_core::faults;
pub use staircase_core::governor::{self, Budget, Trip};
