//! # staircase-xpath
//!
//! An XPath subset — parser, AST and evaluator — over the XPath
//! accelerator encoding, with pluggable axis-step engines:
//!
//! * [`Engine::Staircase`] — the paper's operator (any
//!   [`staircase_core::Variant`]), optionally with name-test *pushdown*
//!   through the join (§4.4 Experiment 3) backed by a
//!   [`staircase_core::TagIndex`];
//! * [`Engine::StaircaseParallel`] — the partitioned parallel join;
//! * [`Engine::Naive`] — per-context region queries with duplicate
//!   elimination (§3.1);
//! * [`Engine::Sql`] — the tree-unaware B-tree plan of Figure 3.
//!
//! The supported grammar covers what the paper's experiments need and the
//! usual abbreviations:
//!
//! ```text
//! path      := '/'? step ('/' step)*             (also '//' abbreviation)
//! step      := (axis '::')? nodetest pred*  |  '.'  |  '..'  |  '@' name
//! nodetest  := name | '*' | 'node()' | 'text()' | 'comment()'
//!            | 'processing-instruction()'
//! pred      := '[' path ']'                      (existential semantics)
//! ```
//!
//! ## Example
//!
//! ```
//! use staircase_accel::Doc;
//! use staircase_xpath::{evaluate, Engine};
//!
//! let doc = Doc::from_xml(
//!     "<site><open_auctions><open_auction><bidder><increase/></bidder>\
//!      </open_auction></open_auctions></site>").unwrap();
//! let hits = evaluate(&doc, "/descendant::increase/ancestor::bidder", Engine::default())
//!     .unwrap();
//! assert_eq!(hits.result.len(), 1);
//! ```

#![warn(missing_docs)]

mod ast;
mod eval;
mod parser;

pub use ast::{NodeTest, Path, Predicate, Step, UnionExpr};
pub use eval::{evaluate, evaluate_path, Engine, EvalOutput, EvalStats, Evaluator, StepTrace};
pub use parser::{parse, parse_union, ParseError};
