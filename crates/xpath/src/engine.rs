//! Engine selection: which implementation evaluates partitioning axis
//! steps, configured through builders instead of hand-assembled enums.
//!
//! ```
//! use staircase_core::Variant;
//! use staircase_xpath::Engine;
//!
//! let skipping = Engine::staircase().variant(Variant::Skipping).build()?;
//! let pushdown = Engine::staircase().pushdown(true).build()?;
//! let parallel = Engine::staircase().parallel(4).build()?;
//! let sql = Engine::sql().eq1_window(true).early_nametest(true).build()?;
//! let naive = Engine::naive();
//! let auto = Engine::auto(); // cost-based per-step operator picking
//! # let _ = (skipping, pushdown, parallel, sql, naive, auto);
//! # Ok::<(), staircase_xpath::Error>(())
//! ```
//!
//! Inconsistent combinations (zero worker threads, pushdown on the
//! parallel engine, …) are rejected with [`Error::InvalidEngine`] at
//! build time, so an [`Engine`] value that exists is always runnable.

use std::fmt;

use staircase_core::Variant;

use crate::error::Error;

/// Which implementation evaluates the partitioning axis steps.
///
/// Construct via [`Engine::staircase`], [`Engine::sql`], or
/// [`Engine::naive`]; the default is the staircase join with
/// estimation-based skipping and no pushdown.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Engine {
    pub(crate) kind: EngineKind,
}

/// The validated engine configuration (internal representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum EngineKind {
    /// The staircase join (the paper's contribution), optionally with
    /// query-time name-test pushdown (§4.4 Experiment 3).
    Staircase { variant: Variant, pushdown: bool },
    /// §6 tag-name fragmentation: per-tag fragments prebuilt at document
    /// loading time.
    Fragmented { variant: Variant },
    /// Partitioned parallel staircase join (§3.2 / §6).
    Parallel { variant: Variant, threads: usize },
    /// Per-context region queries + duplicate elimination (§3.1).
    Naive,
    /// Tree-unaware B-tree plan (Figure 3, "IBM DB2 SQL").
    Sql {
        eq1_window: bool,
        early_nametest: bool,
    },
    /// Cost-based per-step operator picking: the planner prices the
    /// candidate operators for every step from document statistics and
    /// keeps the cheapest.
    Auto,
    /// Worst-case-optimal twig matching: every eligible run of vertical
    /// steps with path-shaped existential predicates is fused into one
    /// multiway leapfrog intersection over the per-tag fragments; the
    /// remaining steps run as fragment joins.
    Twig,
    /// Adaptive execution: plans like [`EngineKind::Auto`], then
    /// re-prices the remaining steps at every step boundary from the
    /// *observed* frontier cardinality and switches operators when the
    /// observed-cost ranking disagrees with the planned one.
    Adaptive,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine {
            kind: EngineKind::Staircase {
                variant: Variant::EstimationSkipping,
                pushdown: false,
            },
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EngineKind::Staircase {
                variant,
                pushdown: false,
            } => {
                write!(f, "staircase({variant:?})")
            }
            EngineKind::Staircase {
                variant,
                pushdown: true,
            } => {
                write!(f, "staircase({variant:?}, pushdown)")
            }
            EngineKind::Fragmented { variant } => write!(f, "fragmented({variant:?})"),
            EngineKind::Parallel { variant, threads } => {
                write!(f, "parallel({variant:?}, {threads} threads)")
            }
            EngineKind::Naive => write!(f, "naive"),
            EngineKind::Sql {
                eq1_window,
                early_nametest,
            } => {
                write!(
                    f,
                    "sql(eq1_window: {eq1_window}, early_nametest: {early_nametest})"
                )
            }
            EngineKind::Auto => write!(f, "auto"),
            EngineKind::Twig => write!(f, "twig"),
            EngineKind::Adaptive => write!(f, "adaptive"),
        }
    }
}

impl Engine {
    /// Starts configuring a staircase-join engine (serial by default,
    /// estimation-based skipping, no pushdown).
    pub fn staircase() -> StaircaseBuilder {
        StaircaseBuilder {
            variant: Variant::EstimationSkipping,
            pushdown: false,
            fragmented: false,
            threads: None,
        }
    }

    /// Starts configuring the tree-unaware SQL baseline (plain Figure 3
    /// plan; opt into the Equation-1 window and the early name test).
    pub fn sql() -> SqlBuilder {
        SqlBuilder {
            eq1_window: false,
            early_nametest: false,
        }
    }

    /// The naive per-context strategy of §3.1 (no configuration).
    pub fn naive() -> Engine {
        Engine {
            kind: EngineKind::Naive,
        }
    }

    /// The cost-based planner: instead of fixing one evaluator for the
    /// whole query, every step's operator is chosen by pricing the
    /// candidates — plain staircase join, prebuilt §6 tag fragment, the
    /// Figure-3 SQL plan — against document statistics (node counts,
    /// per-tag fragment sizes, Equation-1 context-window estimates).
    /// Results are node-identical to every fixed engine
    /// (property-tested); only the access pattern changes.
    pub fn auto() -> Engine {
        Engine {
            kind: EngineKind::Auto,
        }
    }

    /// The twig-fusing engine: every eligible *twig region* — a run of
    /// vertical steps whose predicates are themselves vertical
    /// existential paths — is fused into one worst-case-optimal
    /// multiway leapfrog step ([`staircase_core::twig`]); steps outside
    /// a region run as §6 fragment joins. Results are node- and
    /// order-identical to every fixed engine (property-tested); only
    /// intermediate materialization disappears. [`Engine::auto`] picks
    /// this operator per region, and only where the cost model predicts
    /// the step plan's intermediates exceed the leapfrog frontier cost.
    pub fn twig() -> Engine {
        Engine {
            kind: EngineKind::Twig,
        }
    }

    /// The adaptive executor: plans exactly like [`Engine::auto`], then
    /// keeps planning *while the query runs*. After every step boundary
    /// the executor feeds the observed frontier cardinality (and the
    /// step's [`StepStats::observed_cost`](staircase_core::StepStats))
    /// into a [`staircase_core::RuntimeStats`] overlay, re-prices the
    /// remaining steps, and switches operator where the observed-cost
    /// ranking disagrees with the planned one (`[replan]` in the step
    /// trace). A session-lifetime [`staircase_core::Calibrator`] nudges
    /// the cost constants from real seek counts. Results are node- and
    /// order-identical to every fixed engine (property-tested); only
    /// the access pattern changes. [`Engine::auto`] stays the static
    /// baseline.
    pub fn adaptive() -> Engine {
        Engine {
            kind: EngineKind::Adaptive,
        }
    }

    /// `true` for the cost-based planner ([`Engine::auto`]).
    pub fn is_auto(&self) -> bool {
        self.kind == EngineKind::Auto
    }

    /// `true` for the adaptive executor ([`Engine::adaptive`]).
    pub fn is_adaptive(&self) -> bool {
        self.kind == EngineKind::Adaptive
    }

    /// `true` for the staircase family (serial, fragmented, parallel).
    pub fn is_staircase(&self) -> bool {
        matches!(
            self.kind,
            EngineKind::Staircase { .. }
                | EngineKind::Fragmented { .. }
                | EngineKind::Parallel { .. }
        )
    }
}

/// Builder for staircase-family engines; see [`Engine::staircase`].
#[derive(Debug, Clone, Copy)]
#[must_use = "builders do nothing until .build() is called"]
pub struct StaircaseBuilder {
    variant: Variant,
    pushdown: bool,
    fragmented: bool,
    threads: Option<usize>,
}

impl StaircaseBuilder {
    /// Selects the skipping refinement (Algorithms 2–4).
    pub fn variant(mut self, variant: Variant) -> StaircaseBuilder {
        self.variant = variant;
        self
    }

    /// Pushes name tests through the join at query time: the name test
    /// runs first as a selection scan over the whole document, and the
    /// join walks only the selected nodes (§4.4 Experiment 3).
    pub fn pushdown(mut self, on: bool) -> StaircaseBuilder {
        self.pushdown = on;
        self
    }

    /// Uses per-tag fragments prebuilt at document loading time (§6):
    /// like pushdown, but without the query-time selection scan.
    pub fn fragmented(mut self, on: bool) -> StaircaseBuilder {
        self.fragmented = on;
        self
    }

    /// Runs the join's disjoint staircase partitions on `threads` worker
    /// threads (§3.2 / Figure 8).
    pub fn parallel(mut self, threads: usize) -> StaircaseBuilder {
        self.threads = Some(threads);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidEngine`] when options conflict: zero worker
    /// threads, pushdown or fragmentation combined with the parallel
    /// engine, or pushdown combined with fragmentation (fragments *are*
    /// the pushed-down name test).
    pub fn build(self) -> Result<Engine, Error> {
        let StaircaseBuilder {
            variant,
            pushdown,
            fragmented,
            threads,
        } = self;
        let kind = match (threads, fragmented, pushdown) {
            (Some(0), _, _) => {
                return Err(Error::InvalidEngine(
                    "parallel staircase join needs at least one worker thread".into(),
                ))
            }
            (Some(_), true, _) => {
                return Err(Error::InvalidEngine(
                    "tag fragmentation is not available on the parallel engine".into(),
                ))
            }
            (Some(_), _, true) => {
                return Err(Error::InvalidEngine(
                    "name-test pushdown is not available on the parallel engine".into(),
                ))
            }
            (None, true, true) => {
                return Err(Error::InvalidEngine(
                    "fragments already are the pushed-down name test; \
                     use .fragmented(true) alone"
                        .into(),
                ))
            }
            (Some(threads), false, false) => EngineKind::Parallel { variant, threads },
            (None, true, false) => EngineKind::Fragmented { variant },
            (None, false, pushdown) => EngineKind::Staircase { variant, pushdown },
        };
        Ok(Engine { kind })
    }
}

/// Builder for the SQL baseline; see [`Engine::sql`].
#[derive(Debug, Clone, Copy)]
#[must_use = "builders do nothing until .build() is called"]
pub struct SqlBuilder {
    eq1_window: bool,
    early_nametest: bool,
}

impl SqlBuilder {
    /// Applies the Equation-1 window predicate (the paper's line 7 — the
    /// optimizer hint §2.1 proposes).
    pub fn eq1_window(mut self, on: bool) -> SqlBuilder {
        self.eq1_window = on;
        self
    }

    /// Filters by tag during the index scan instead of afterwards.
    pub fn early_nametest(mut self, on: bool) -> SqlBuilder {
        self.early_nametest = on;
        self
    }

    /// Validates the configuration (currently always succeeds; `Result`
    /// keeps the builders uniform and leaves room for future knobs).
    pub fn build(self) -> Result<Engine, Error> {
        Ok(Engine {
            kind: EngineKind::Sql {
                eq1_window: self.eq1_window,
                early_nametest: self.early_nametest,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_estimation_skipping_staircase() {
        assert_eq!(
            Engine::default(),
            Engine::staircase()
                .build()
                .expect("default staircase config is valid")
        );
        assert!(Engine::default().is_staircase());
        assert!(!Engine::naive().is_staircase());
    }

    #[test]
    fn auto_is_its_own_kind() {
        assert!(Engine::auto().is_auto());
        assert!(!Engine::auto().is_staircase());
        assert!(!Engine::default().is_auto());
        assert_eq!(format!("{:?}", Engine::auto()), "auto");
    }

    #[test]
    fn builders_cover_every_kind() {
        let engines = [
            Engine::staircase().variant(Variant::Basic).build().unwrap(),
            Engine::staircase().pushdown(true).build().unwrap(),
            Engine::staircase().fragmented(true).build().unwrap(),
            Engine::staircase().parallel(4).build().unwrap(),
            Engine::naive(),
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()
                .unwrap(),
            Engine::auto(),
            Engine::twig(),
            Engine::adaptive(),
        ];
        // All distinct configurations.
        for (i, a) in engines.iter().enumerate() {
            for b in &engines[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        for builder in [
            Engine::staircase().parallel(0),
            Engine::staircase().parallel(2).pushdown(true),
            Engine::staircase().parallel(2).fragmented(true),
            Engine::staircase().fragmented(true).pushdown(true),
        ] {
            let err = builder.build();
            assert!(
                matches!(err, Err(Error::InvalidEngine(_))),
                "{builder:?} should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn debug_rendering_is_compact() {
        let e = Engine::staircase().pushdown(true).build().unwrap();
        assert_eq!(format!("{e:?}"), "staircase(EstimationSkipping, pushdown)");
        assert_eq!(format!("{:?}", Engine::twig()), "twig");
    }

    #[test]
    fn twig_is_neither_auto_nor_staircase_family() {
        assert!(!Engine::twig().is_auto());
        assert!(!Engine::twig().is_staircase());
    }

    #[test]
    fn adaptive_is_its_own_kind() {
        assert!(Engine::adaptive().is_adaptive());
        assert!(!Engine::adaptive().is_auto());
        assert!(!Engine::adaptive().is_staircase());
        assert!(!Engine::auto().is_adaptive());
        assert_eq!(format!("{:?}", Engine::adaptive()), "adaptive");
    }
}
