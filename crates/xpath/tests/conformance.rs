//! Table-driven XPath conformance suite on a fixed mixed-content document.
//!
//! Every case is checked on all engines; expected results are written as
//! the matching nodes' pre ranks, derived by hand from the document below.

use staircase_accel::{Context, Doc};
use staircase_core::Variant;
use staircase_xpath::{Engine, Session};

/// The fixture, with pre ranks:
/// ```text
/// 0  <library kind="public">
/// 1    @kind
/// 2    <shelf id="s1">
/// 3      @id
/// 4      <book year="1962">
/// 5        @year
/// 6        <title>          7: "Pale Fire"
/// 8        <author>         9: "Nabokov"
/// 10     <book year="1997">
/// 11       @year
/// 12       <title>          13: "Mason &amp; Dixon"
/// 14       <author>         15: "Pynchon"
/// 16       <!--sold out-->
/// 17   <shelf id="s2">
/// 18     @id
/// 19     <book>
/// 20       <title>          21: "Ficciones"
/// 22     <?catalog reindex?>
/// 23   <basement>
/// 24     <box>
/// 25       <book>
/// 26         <title>        27: "Molloy"
/// ```
fn fixture() -> Doc {
    Doc::from_xml(
        r#"<library kind="public"><shelf id="s1"><book year="1962"><title>Pale Fire</title><author>Nabokov</author></book><book year="1997"><title>Mason &amp; Dixon</title><author>Pynchon</author></book><!--sold out--></shelf><shelf id="s2"><book><title>Ficciones</title></book><?catalog reindex?></shelf><basement><box><book><title>Molloy</title></book></box></basement></library>"#,
    )
    .unwrap()
}

fn engines() -> [Engine; 6] {
    [
        Engine::staircase().variant(Variant::Basic).build().unwrap(),
        Engine::staircase()
            .variant(Variant::EstimationSkipping)
            .build()
            .unwrap(),
        Engine::staircase().pushdown(true).build().unwrap(),
        Engine::staircase().fragmented(true).build().unwrap(),
        Engine::naive(),
        Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .unwrap(),
    ]
}

const CASES: &[(&str, &[u32])] = &[
    // Descendant axis with name tests.
    ("/descendant::book", &[4, 10, 19, 25]),
    ("/descendant::title", &[6, 12, 20, 26]),
    ("/descendant::shelf", &[2, 17]),
    ("//book", &[4, 10, 19, 25]),
    ("//shelf//title", &[6, 12, 20]),
    // Child axis, default and explicit. Absolute paths address the root
    // *element* (the paper's `root(doc)` — the encoding has no separate
    // document node), so children are addressed directly.
    ("/self::library", &[0]),
    ("/shelf", &[2, 17]),
    ("shelf/book", &[4, 10, 19]),
    ("basement/box/book/title", &[26]),
    // Attribute axis.
    ("//book/@year", &[5, 11]),
    ("//shelf/@id", &[3, 18]),
    ("/@kind", &[1]),
    ("//@*", &[1, 3, 5, 11, 18]),
    // Ancestor / ancestor-or-self.
    ("//title/ancestor::book", &[4, 10, 19, 25]),
    ("//title/ancestor::shelf", &[2, 17]),
    ("//box/ancestor-or-self::node()", &[0, 23, 24]),
    // Parent.
    ("//title/..", &[4, 10, 19, 25]),
    ("//book/parent::shelf", &[2, 17]),
    ("//book/parent::box", &[24]),
    // Following / preceding.
    ("//author/following::title", &[12, 20, 26]),
    ("//basement/preceding::book", &[4, 10, 19]),
    // Sibling axes.
    ("//shelf/following-sibling::node()", &[17, 23]),
    ("//basement/preceding-sibling::node()", &[2, 17]),
    ("//book/following-sibling::comment()", &[16]),
    // Node tests.
    ("//shelf/child::comment()", &[16]),
    ("//shelf/child::processing-instruction()", &[22]),
    ("//shelf/child::processing-instruction(catalog)", &[22]),
    ("//title/child::text()", &[7, 13, 21, 27]),
    (
        "/descendant::*",
        &[2, 4, 6, 8, 10, 12, 14, 17, 19, 20, 23, 24, 25, 26],
    ),
    // Predicates (existential).
    ("//book[author]", &[4, 10]),
    ("//book[descendant::author]", &[4, 10]),
    ("//shelf[book[author]]", &[2]),
    ("//book[ancestor::basement]", &[25]),
    ("//*[title]", &[4, 10, 19, 25]),
    // Self axis and dot.
    ("//book/self::node()", &[4, 10, 19, 25]),
    ("//book/.", &[4, 10, 19, 25]),
    // Union expressions.
    ("//author | //title", &[6, 8, 12, 14, 20, 26]),
    ("//basement | //shelf | //magazine", &[2, 17, 23]),
    ("//book/@year | //shelf/@id", &[3, 5, 11, 18]),
    ("//title | //title", &[6, 12, 20, 26]),
    // Empty results.
    ("//magazine", &[]),
    ("//book/child::author[ancestor::basement]", &[]),
    ("/preceding::node()", &[]),
];

#[test]
fn conformance_cases_on_all_engines() {
    let session = Session::new(fixture());
    let doc = session.doc();
    // Spot-check the fixture numbering before relying on it.
    assert_eq!(doc.len(), 28);
    assert_eq!(doc.tag_name(0), Some("library"));
    assert_eq!(doc.tag_name(4), Some("book"));
    assert_eq!(doc.tag_name(23), Some("basement"));
    assert_eq!(doc.content(27), Some("Molloy"));

    for (expr, expected) in CASES {
        let query = session
            .prepare(expr)
            .unwrap_or_else(|e| panic!("{expr}: {e}"));
        for engine in engines() {
            let out = query.run(engine);
            assert_eq!(out.nodes().as_slice(), *expected, "{expr} via {engine:?}");
        }
    }
}

/// The descendant-or-self axis wrapped in //: comment nodes are reachable
/// through node() tests but excluded by element tests.
#[test]
fn comment_reachability() {
    let session = Session::new(fixture());
    let out = session.run("//comment()", Engine::default()).unwrap();
    assert_eq!(out.nodes().as_slice(), &[16]);
}

/// Relative paths evaluate from a supplied context.
#[test]
fn relative_evaluation_from_context() {
    let session = Session::new(fixture());
    let query = session.prepare("book/title").unwrap();
    let out = query
        .run_from(&Context::singleton(17), Engine::default())
        .unwrap(); // shelf s2
    assert_eq!(out.nodes().as_slice(), &[20]);
}

/// Queries compose: the result context of one evaluation feeds the next.
#[test]
fn staged_evaluation() {
    let session = Session::new(fixture());
    let books = session
        .prepare("//book")
        .unwrap()
        .run(Engine::default())
        .into_nodes();
    let titles = session
        .prepare("title/text()")
        .unwrap()
        .run_from(&books, Engine::default())
        .unwrap()
        .into_nodes();
    assert_eq!(titles.as_slice(), &[7, 13, 21, 27]);
}
