//! Tree-unaware RDBMS plan emulation ("IBM DB2 SQL", Figures 3 and 11).
//!
//! The paper's §2.1 analyses how a conventional RDBMS evaluates region
//! queries: a B-tree over concatenated `(pre, post)` keys, scanned in pre
//! order for the outer input; per outer tuple an inner *index range scan*
//! whose `pre` predicates delimit the range and whose `post` predicates
//! are evaluated during the scan; a `unique` operator on top (the join
//! generates duplicates); and — if the optimizer is taught Equation (1) —
//! the additional window predicate of line 7 that delimits the descendant
//! scan by the subtree size.
//!
//! This module replays that plan over our own [`BPlusTree`]. It is
//! deliberately *tree-unaware beyond SQL*: no pruning, no staircase
//! skipping — only what the paper grants the RDBMS.

use staircase_accel::{Axis, Context, Doc, NodeKind, Pre, TagId};
use staircase_storage::BPlusTree;

/// Packs `(pre, post)` into the concatenated B-tree key of Figure 3.
#[inline]
fn key(pre: Pre, post: u32) -> u64 {
    (u64::from(pre) << 32) | u64::from(post)
}

/// Row payload stored under each index key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row {
    post: u32,
    tag: TagId,
    kind: u8,
}

/// Plan options — what the paper's §2.1 lets the optimizer know.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqlPlanOptions {
    /// Apply the Equation-1 window (line 7: `v2.pre ≤ v1.post + h AND
    /// v2.post ≥ v1.pre − h`) to delimit descendant range scans.
    pub eq1_window: bool,
    /// Early name test: filter by tag during the index scan (DB2's
    /// concatenated `(pre, post, tag name)` keys).
    pub early_nametest: Option<TagId>,
}

/// Work accounting for the emulated plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqlStats {
    /// Index entries inspected across all inner range scans.
    pub index_entries_scanned: u64,
    /// B-tree nodes touched (descents + leaves).
    pub index_nodes_touched: u64,
    /// Join tuples produced before `unique`.
    pub tuples_produced: u64,
    /// Result size after `unique`.
    pub result_size: usize,
}

impl SqlStats {
    /// Duplicates eliminated by the `unique` operator.
    pub fn duplicates(&self) -> u64 {
        self.tuples_produced - self.result_size as u64
    }
}

/// The emulated RDBMS: one B-tree on `(pre, post)` keys, built at document
/// loading time, indexing both context and document (the doc table is its
/// own index).
#[derive(Debug)]
pub struct SqlEngine {
    index: BPlusTree<u64, Row>,
    height: u32,
    len: Pre,
}

impl SqlEngine {
    /// Builds the index ("document loading").
    pub fn build(doc: &Doc) -> SqlEngine {
        let pairs: Vec<(u64, Row)> = doc
            .pres()
            .map(|v| {
                (
                    key(v, doc.post(v)),
                    Row {
                        post: doc.post(v),
                        tag: doc.tag(v),
                        kind: doc.kind(v) as u8,
                    },
                )
            })
            .collect();
        SqlEngine {
            index: BPlusTree::bulk_load(&pairs),
            height: doc.height() as u32,
            len: doc.len() as Pre,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Evaluates one axis step with the Figure 3 plan: per context node an
    /// index range scan, then `unique`.
    ///
    /// Supports the four partitioning axes (the ones the experiments
    /// exercise).
    pub fn axis_step(
        &self,
        context: &Context,
        axis: Axis,
        opts: SqlPlanOptions,
    ) -> (Context, SqlStats) {
        let mut stats = SqlStats::default();
        let mut produced: Vec<Pre> = Vec::new();
        self.index.reset_stats();

        for (c, c_post) in context.iter().map(|c| (c, self.post_of(c))) {
            // pre-range delimiters (lines 3–4 of the SQL query).
            let (pre_lo, pre_hi) = match axis {
                Axis::Descendant | Axis::Following => {
                    let hi = if axis == Axis::Descendant && opts.eq1_window {
                        // line 7: v2.pre ≤ v1.post + h
                        (c_post + self.height).min(self.len.saturating_sub(1))
                    } else {
                        self.len.saturating_sub(1)
                    };
                    (c.saturating_add(1), hi)
                }
                Axis::Ancestor | Axis::Preceding => {
                    if c == 0 {
                        continue;
                    }
                    (0, c - 1)
                }
                other => panic!("SQL plan emulates partitioning axes only, got {other}"),
            };
            if pre_lo > pre_hi {
                continue;
            }
            // Index range scan; post predicates evaluated per entry
            // (lines 5–6), optional Eq-1 post bound (line 7), early name
            // test as an additional scan predicate.
            for (k, row) in self.index.range(key(pre_lo, 0), key(pre_hi, u32::MAX)) {
                stats.index_entries_scanned += 1;
                let v = (k >> 32) as Pre;
                let hit = match axis {
                    Axis::Descendant => {
                        row.post < c_post && (!opts.eq1_window || row.post + self.height >= c)
                    }
                    Axis::Following => row.post > c_post,
                    Axis::Ancestor => row.post > c_post,
                    Axis::Preceding => row.post < c_post,
                    _ => unreachable!(),
                };
                if !hit {
                    continue;
                }
                if row.kind == NodeKind::Attribute as u8 {
                    continue;
                }
                if let Some(tag) = opts.early_nametest {
                    if row.tag != tag || row.kind != NodeKind::Element as u8 {
                        continue;
                    }
                }
                produced.push(v);
            }
        }

        stats.tuples_produced = produced.len() as u64;
        produced.sort_unstable();
        produced.dedup();
        stats.result_size = produced.len();
        stats.index_nodes_touched = self.index.stats();
        (Context::from_sorted(produced), stats)
    }

    /// The manual rewrite the paper applied for Q2 on DB2 (§4.4,
    /// Experiment 3; Olteanu et al.'s *Symmetry in XPath*):
    /// `cs/descendant::outer[descendant::inner]` — outer-tag descendants of
    /// the context that contain at least one inner-tag descendant.
    pub fn descendant_exists_rewrite(
        &self,
        context: &Context,
        outer: TagId,
        inner: TagId,
    ) -> (Context, SqlStats) {
        let (outers, mut stats) = self.axis_step(
            context,
            Axis::Descendant,
            SqlPlanOptions {
                eq1_window: true,
                early_nametest: Some(outer),
            },
        );
        // EXISTS probe per outer row: a delimited descendant range scan
        // that stops at the first inner-tag hit.
        let mut result = Vec::new();
        for o in outers.iter() {
            let o_post = self.post_of(o);
            let hi = (o_post + self.height).min(self.len.saturating_sub(1));
            if o + 1 > hi {
                continue;
            }
            let mut found = false;
            for (_, row) in self.index.range(key(o + 1, 0), key(hi, u32::MAX)) {
                stats.index_entries_scanned += 1;
                if row.post < o_post && row.tag == inner && row.kind == NodeKind::Element as u8 {
                    found = true;
                    break;
                }
            }
            if found {
                result.push(o);
            }
        }
        stats.result_size = result.len();
        stats.index_nodes_touched = self.index.stats();
        (Context::from_sorted(result), stats)
    }

    fn post_of(&self, v: Pre) -> u32 {
        // Point lookup via the index itself (the doc table is the index).
        self.index
            .range(key(v, 0), key(v, u32::MAX))
            .next()
            .map(|(_, row)| row.post)
            .expect("context node must be indexed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn reference(doc: &Doc, ctx: &Context, axis: Axis) -> Vec<Pre> {
        doc.pres()
            .filter(|&v| ctx.iter().any(|c| axis.contains(doc, c, v)))
            .collect()
    }

    #[test]
    fn figure3_query_following_then_descendant() {
        // (c)/following/descendant = (f, g, h, i, j) per §2.1.
        let doc = figure1();
        let engine = SqlEngine::build(&doc);
        let ctx = Context::singleton(2); // c
        let (step1, _) = engine.axis_step(&ctx, Axis::Following, SqlPlanOptions::default());
        let (step2, _) = engine.axis_step(&step1, Axis::Descendant, SqlPlanOptions::default());
        assert_eq!(step2.as_slice(), &[5, 6, 7, 8, 9]); // f..j
    }

    #[test]
    fn all_axes_match_reference() {
        let doc = figure1();
        let engine = SqlEngine::build(&doc);
        let ctx = Context::from_unsorted(vec![3, 5, 7]);
        for axis in Axis::PARTITIONING {
            for eq1 in [false, true] {
                let opts = SqlPlanOptions {
                    eq1_window: eq1,
                    ..Default::default()
                };
                let (got, _) = engine.axis_step(&ctx, axis, opts);
                assert_eq!(
                    got.as_slice(),
                    &reference(&doc, &ctx, axis)[..],
                    "{axis} eq1={eq1}"
                );
            }
        }
    }

    #[test]
    fn eq1_window_reduces_scanned_entries() {
        // A small subtree early in a larger document: the window must cut
        // the descendant scan short.
        let doc = Doc::from_xml(
            "<r><a><x/><x/></a><pad1/><pad2/><pad3/><pad4/><pad5/><pad6/><pad7/><pad8/></r>",
        )
        .unwrap();
        let engine = SqlEngine::build(&doc);
        let a: Context = Context::singleton(1);
        let (r1, without) = engine.axis_step(&a, Axis::Descendant, SqlPlanOptions::default());
        let (r2, with) = engine.axis_step(
            &a,
            Axis::Descendant,
            SqlPlanOptions {
                eq1_window: true,
                ..Default::default()
            },
        );
        assert_eq!(r1, r2);
        assert!(
            with.index_entries_scanned < without.index_entries_scanned,
            "window did not delimit: {} vs {}",
            with.index_entries_scanned,
            without.index_entries_scanned
        );
    }

    #[test]
    fn duplicates_generated_and_removed() {
        let doc = figure1();
        let engine = SqlEngine::build(&doc);
        // g and h share ancestors a, e, f.
        let ctx = Context::from_unsorted(vec![6, 7]);
        let (got, stats) = engine.axis_step(&ctx, Axis::Ancestor, SqlPlanOptions::default());
        assert_eq!(got.len(), 3);
        assert_eq!(stats.tuples_produced, 6);
        assert_eq!(stats.duplicates(), 3);
    }

    #[test]
    fn early_nametest_filters_during_scan() {
        let doc = Doc::from_xml("<r><p><q/><p><q/></p></p><q/></r>").unwrap();
        let engine = SqlEngine::build(&doc);
        let q = doc.tag_id("q").unwrap();
        let ctx = Context::singleton(0);
        let (got, _) = engine.axis_step(
            &ctx,
            Axis::Descendant,
            SqlPlanOptions {
                early_nametest: Some(q),
                ..Default::default()
            },
        );
        let want: Vec<Pre> = doc
            .pres()
            .filter(|&v| doc.tag_id("q") == Some(doc.tag(v)))
            .collect();
        assert_eq!(got.as_slice(), &want[..]);
    }

    #[test]
    fn attributes_filtered() {
        let doc = Doc::from_xml(r#"<a x="1"><b y="2"/></a>"#).unwrap();
        let engine = SqlEngine::build(&doc);
        let (got, _) = engine.axis_step(
            &Context::singleton(0),
            Axis::Descendant,
            SqlPlanOptions::default(),
        );
        assert_eq!(got.as_slice(), &[2]); // only <b>
    }

    #[test]
    fn exists_rewrite_matches_predicate_semantics() {
        let doc = Doc::from_xml(
            "<r><bidder><increase/></bidder><bidder><other/></bidder><bidder><increase/></bidder></r>",
        )
        .unwrap();
        let engine = SqlEngine::build(&doc);
        let bidder = doc.tag_id("bidder").unwrap();
        let increase = doc.tag_id("increase").unwrap();
        let (got, _) = engine.descendant_exists_rewrite(&Context::singleton(0), bidder, increase);
        // bidders at pre 1 and 5 contain an increase; pre 3 does not.
        assert_eq!(got.as_slice(), &[1, 5]);
    }

    #[test]
    fn index_nodes_touched_grows_with_scans() {
        let doc = figure1();
        let engine = SqlEngine::build(&doc);
        let (_, stats) = engine.axis_step(
            &Context::singleton(0),
            Axis::Descendant,
            SqlPlanOptions::default(),
        );
        assert!(stats.index_nodes_touched > 0);
    }

    #[test]
    fn empty_context() {
        let doc = figure1();
        let engine = SqlEngine::build(&doc);
        let (got, stats) = engine.axis_step(
            &Context::empty(),
            Axis::Descendant,
            SqlPlanOptions::default(),
        );
        assert!(got.is_empty());
        assert_eq!(stats.index_entries_scanned, 0);
    }
}
