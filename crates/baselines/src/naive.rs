//! The naive per-context-node evaluation strategy (§3.1, Experiment 1).
//!
//! "The naive way of evaluating an axis step for a context node sequence
//! would be to evaluate the step for each context node independently and
//! construct the end result from these intermediary results." Overlapping
//! regions then yield duplicates, which a `unique` operator (plus a sort
//! to restore document order) must remove — exactly the work the staircase
//! join avoids.

use staircase_accel::{Axis, Context, Doc, NodeKind, Pre};

/// Work accounting for the naive strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Nodes emitted by the per-context region queries, duplicates
    /// included — the "naive" series of Figure 11(a).
    pub tuples_produced: u64,
    /// Nodes remaining after `unique`.
    pub result_size: usize,
    /// Nodes inspected across all per-context scans.
    pub nodes_scanned: u64,
}

impl NaiveStats {
    /// Duplicate nodes generated and subsequently removed.
    pub fn duplicates(&self) -> u64 {
        self.tuples_produced - self.result_size as u64
    }
}

/// Evaluates one axis step naively: a full region query per context node,
/// concatenation, sort, and duplicate elimination.
pub fn naive_step(doc: &Doc, context: &Context, axis: Axis) -> (Context, NaiveStats) {
    let mut stats = NaiveStats::default();
    let mut produced: Vec<Pre> = Vec::new();
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;

    for c in context.iter() {
        match axis {
            // The four partitioning axes scan their rectangular region of
            // the plane; like the Figure 3 plan, the pre bounds delimit the
            // scan and the post bound is a scan predicate.
            Axis::Descendant | Axis::Ancestor | Axis::Following | Axis::Preceding => {
                let cq = post[c as usize];
                let (lo, hi) = match axis {
                    Axis::Descendant | Axis::Following => (c + 1, doc.len() as Pre),
                    _ => (0, c),
                };
                for v in lo..hi {
                    stats.nodes_scanned += 1;
                    let vq = post[v as usize];
                    let hit = match axis {
                        Axis::Descendant => vq < cq,
                        Axis::Ancestor => vq > cq,
                        Axis::Following => vq > cq,
                        Axis::Preceding => vq < cq,
                        _ => unreachable!(),
                    };
                    if hit && kind[v as usize] != attr {
                        produced.push(v);
                    }
                }
            }
            // Remaining axes: fall back to the reference predicate (they
            // are not the subject of the experiments).
            other => {
                for v in doc.pres() {
                    stats.nodes_scanned += 1;
                    if other.contains(doc, c, v) {
                        produced.push(v);
                    }
                }
            }
        }
    }

    stats.tuples_produced = produced.len() as u64;
    // The `unique` operator: sort into document order, remove duplicates.
    produced.sort_unstable();
    produced.dedup();
    stats.result_size = produced.len();
    (Context::from_sorted(produced), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    #[test]
    fn matches_reference_semantics() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![3, 5, 7, 9]);
        for axis in Axis::PARTITIONING {
            let (got, _) = naive_step(&doc, &ctx, axis);
            let want: Vec<Pre> = doc
                .pres()
                .filter(|&v| ctx.iter().any(|c| axis.contains(&doc, c, v)))
                .collect();
            assert_eq!(got.as_slice(), &want[..], "{axis}");
        }
    }

    #[test]
    fn duplicates_counted_for_shared_ancestors() {
        let doc = figure1();
        // g (6) and h (7) share ancestors a, e, f.
        let ctx = Context::from_unsorted(vec![6, 7]);
        let (got, stats) = naive_step(&doc, &ctx, Axis::Ancestor);
        assert_eq!(got.len(), 3);
        assert_eq!(stats.tuples_produced, 6);
        assert_eq!(stats.duplicates(), 3);
    }

    #[test]
    fn no_duplicates_for_disjoint_contexts() {
        let doc = figure1();
        // b (1) and d (3) have disjoint subtrees.
        let ctx = Context::from_unsorted(vec![1, 3]);
        let (_, stats) = naive_step(&doc, &ctx, Axis::Descendant);
        assert_eq!(stats.duplicates(), 0);
    }

    #[test]
    fn overlapping_descendant_regions_duplicate() {
        let doc = figure1();
        // e (4) and f (5): f's subtree ⊂ e's subtree.
        let ctx = Context::from_unsorted(vec![4, 5]);
        let (got, stats) = naive_step(&doc, &ctx, Axis::Descendant);
        assert_eq!(got.len(), 5); // f, g, h, i, j
        assert_eq!(stats.tuples_produced, 7); // g, h twice
        assert_eq!(stats.duplicates(), 2);
    }

    #[test]
    fn quarter_duplicate_ratio_like_q2() {
        // The paper observes ≈ 75% duplicates for Q2 because all increase
        // nodes sit at level 4 and share ancestor paths pairwise at level 3.
        // Mimic: one parent with many leaf children; ancestors of all
        // children are {root, parent} but each child produces 2 tuples.
        let doc = Doc::from_xml("<r><p><x/><x/><x/><x/></p></r>").unwrap();
        let ctx: Context = doc
            .pres()
            .filter(|&v| doc.tag_name(v) == Some("x"))
            .collect();
        let (got, stats) = naive_step(&doc, &ctx, Axis::Ancestor);
        assert_eq!(got.len(), 2);
        assert_eq!(stats.tuples_produced, 8);
        assert_eq!(stats.duplicates(), 6); // 75%
    }

    #[test]
    fn scans_are_per_context_node() {
        let doc = figure1();
        let single = Context::singleton(5);
        let (_, s1) = naive_step(&doc, &single, Axis::Descendant);
        let double = Context::from_unsorted(vec![5, 8]);
        let (_, s2) = naive_step(&doc, &double, Axis::Descendant);
        assert!(s2.nodes_scanned > s1.nodes_scanned);
    }

    #[test]
    fn empty_context() {
        let doc = figure1();
        let (got, stats) = naive_step(&doc, &Context::empty(), Axis::Descendant);
        assert!(got.is_empty());
        assert_eq!(stats.tuples_produced, 0);
    }

    #[test]
    fn non_partitioning_axis_falls_back() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![4]);
        let (got, _) = naive_step(&doc, &ctx, Axis::Child);
        assert_eq!(got.as_slice(), &[5, 8]); // f, i
    }
}
