//! Multi-predicate merge join (MPMGJN) of Zhang et al., SIGMOD 2001.
//!
//! The §5 comparison point: a structural join over two pre-sorted node
//! lists (an *ancestor list* and a *descendant list*) with an interval
//! containment predicate — node `a` contains node `d` iff
//! `pre(a) < pre(d) ∧ post(d) < post(a)`. MPMGJN merges the lists but,
//! per tuple of the outer list, re-scans the inner list from a backed-up
//! mark, so overlapping intervals make it touch (and test) nodes
//! repeatedly — the redundancy the staircase join's pruning/skipping
//! eliminates ("staircase join touches and tests less nodes than
//! MPMGJN").

use staircase_accel::{Context, Doc, Pre};

/// Work accounting for MPMGJN.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpmgjnStats {
    /// Containment predicate evaluations ("nodes tested").
    pub nodes_tested: u64,
    /// Output pairs before projection/deduplication.
    pub pairs_produced: u64,
    /// Result size after projecting to distinct descendants.
    pub result_size: usize,
}

/// Joins `alist` (potential ancestors) with `dlist` (potential
/// descendants), both pre-sorted, returning the distinct descendant nodes
/// that have at least one ancestor in `alist` plus the join statistics.
///
/// This is the EE-join shape of the paper's experiments: the projection to
/// descendants (with duplicate elimination) is what an axis step needs.
pub fn mpmgjn_join(doc: &Doc, alist: &[Pre], dlist: &[Pre]) -> (Context, MpmgjnStats) {
    let mut stats = MpmgjnStats::default();
    let post = doc.post_column();
    let mut output: Vec<Pre> = Vec::new();

    // Classic MPMGJN: iterate the ancestor list; for each `a`, scan the
    // descendant list from a mark that only advances once descendants can
    // no longer join with *any* later ancestor.
    let mut mark = 0usize;
    for &a in alist {
        let a_post = post[a as usize];
        // Advance the mark past descendants that precede `a` entirely
        // (pre < pre(a) and post < post(a) means d precedes a, and since
        // alist is pre-sorted, d precedes every later a as well... only if
        // post(d) < post(a'); conservatively advance while d.pre < a.pre
        // and d.post < a.post).
        while mark < dlist.len() {
            let d = dlist[mark];
            stats.nodes_tested += 1;
            if d < a && post[d as usize] < a_post {
                mark += 1;
            } else {
                break;
            }
        }
        // Scan forward from the mark producing join pairs; stop when d can
        // no longer be inside a (pre(d) beyond a's subtree: post(d) >
        // post(a) with pre(d) > pre(a) means d follows a → no further d
        // joins with a, but may join with later ancestors, so do not move
        // the mark).
        let mut j = mark;
        while j < dlist.len() {
            let d = dlist[j];
            stats.nodes_tested += 1;
            if d > a && post[d as usize] < a_post {
                output.push(d);
                stats.pairs_produced += 1;
                j += 1;
            } else if d <= a {
                j += 1;
            } else {
                // d follows a: a's interval is exhausted.
                break;
            }
        }
    }

    output.sort_unstable();
    output.dedup();
    stats.result_size = output.len();
    (Context::from_sorted(output), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use staircase_accel::NodeKind;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn descendants_of(doc: &Doc, ctx: &[Pre]) -> Vec<Pre> {
        doc.pres()
            .filter(|&v| {
                doc.kind(v) != NodeKind::Attribute
                    && ctx.iter().any(|&c| v > c && doc.post(v) < doc.post(c))
            })
            .collect()
    }

    #[test]
    fn joins_singleton_ancestor() {
        let doc = figure1();
        let all: Vec<Pre> = doc.pres().collect();
        let (got, _) = mpmgjn_join(&doc, &[5], &all);
        assert_eq!(got.as_slice(), &[6, 7]); // g, h under f
    }

    #[test]
    fn matches_reference_for_random_lists() {
        let doc = figure1();
        let all: Vec<Pre> = doc.pres().collect();
        for alist in [vec![0], vec![1, 4], vec![1, 5, 8], vec![4, 5, 6, 8]] {
            let (got, _) = mpmgjn_join(&doc, &alist, &all);
            assert_eq!(
                got.as_slice(),
                &descendants_of(&doc, &alist)[..],
                "alist {alist:?}"
            );
        }
    }

    #[test]
    fn restricted_descendant_list() {
        let doc = figure1();
        // Only leaves in the dlist.
        let dlist = vec![2, 3, 6, 7, 9];
        let (got, _) = mpmgjn_join(&doc, &[4], &dlist); // e
        assert_eq!(got.as_slice(), &[6, 7, 9]);
    }

    #[test]
    fn nested_ancestors_produce_duplicate_pairs() {
        let doc = figure1();
        // e (4) and f (5): g, h join with both.
        let all: Vec<Pre> = doc.pres().collect();
        let (got, stats) = mpmgjn_join(&doc, &[4, 5], &all);
        assert_eq!(got.len(), 5); // f, g, h, i, j
        assert_eq!(stats.pairs_produced, 7); // g, h counted twice
        assert!(stats.nodes_tested > stats.pairs_produced);
    }

    #[test]
    fn tests_more_nodes_than_staircase_touches() {
        // §5: nested context makes MPMGJN re-test; the staircase join
        // prunes e (ancestor of f) away entirely.
        let doc = figure1();
        let all: Vec<Pre> = doc.pres().collect();
        let (_, stats) = mpmgjn_join(&doc, &[0, 4, 5], &all);
        // Staircase join after pruning touches ≤ result + context nodes
        // (here: 9 + 1); MPMGJN tested more.
        assert!(stats.nodes_tested > 10, "tested {}", stats.nodes_tested);
    }

    #[test]
    fn empty_inputs() {
        let doc = figure1();
        let all: Vec<Pre> = doc.pres().collect();
        let (got, stats) = mpmgjn_join(&doc, &[], &all);
        assert!(got.is_empty());
        assert_eq!(stats.nodes_tested, 0);
        let (got, _) = mpmgjn_join(&doc, &[0], &[]);
        assert!(got.is_empty());
    }
}
