//! # staircase-baselines
//!
//! The comparison systems the paper evaluates the staircase join against:
//!
//! * [`naive`] — the *naive* strategy of §3.1/Experiment 1: evaluate the
//!   region query independently for every context node and eliminate the
//!   resulting duplicates afterwards (the `unique` operator of Figure 3's
//!   plan). Reports how many duplicate nodes were generated — the quantity
//!   plotted in Figure 11(a).
//! * [`sqlplan`] — a tree-unaware RDBMS emulation ("IBM DB2 SQL" in
//!   Figure 11(e)/(f)): the literal query plan of Figure 3 — an index
//!   range scan over a B-tree on concatenated `(pre, post)` keys per outer
//!   tuple, a semijoin with early name test, `unique`, and optionally the
//!   Equation-1 window predicate of the paper's line 7.
//! * [`mpmgjn`] — the multi-predicate merge join of Zhang et al. (§5
//!   related work): an interval-containment structural join over two
//!   pre-sorted node lists, which exploits containment but lacks the
//!   staircase join's pruning and skipping.

#![warn(missing_docs)]

pub mod mpmgjn;
pub mod naive;
pub mod sqlplan;

pub use mpmgjn::{mpmgjn_join, MpmgjnStats};
pub use naive::{naive_step, NaiveStats};
pub use sqlplan::{SqlEngine, SqlPlanOptions, SqlStats};
