//! Generator output sinks.
//!
//! The generator core walks the virtual document once and emits open/attr/
//! text/close events; a [`GenSink`] decides what becomes of them. One sink
//! feeds the XPath-accelerator encoding directly (the fast path used by
//! benchmarks), the other builds a real DOM for XML serialization.

use staircase_accel::EncodingBuilder;
use staircase_xml::{Document, NodeId};

/// Receiver of generated document structure.
pub(crate) trait GenSink {
    /// Opens an element named `tag`.
    fn open(&mut self, tag: &str);
    /// Adds an attribute to the most recently opened element (must be
    /// called before any child content).
    fn attr(&mut self, name: &str, value: &str);
    /// Emits a text child.
    fn text(&mut self, body: &str);
    /// Closes the innermost open element.
    fn close(&mut self);
}

/// Sink that feeds an [`EncodingBuilder`] (direct-to-plane path).
pub(crate) struct EncodingSink {
    pub builder: EncodingBuilder,
}

impl GenSink for EncodingSink {
    fn open(&mut self, tag: &str) {
        self.builder.open_element(tag);
    }

    fn attr(&mut self, name: &str, value: &str) {
        self.builder.attribute(name, value);
    }

    fn text(&mut self, body: &str) {
        self.builder.text(body);
    }

    fn close(&mut self) {
        self.builder.close_element();
    }
}

/// Sink that builds a [`Document`] tree (XML-text path).
pub(crate) struct DocumentSink {
    pub doc: Document,
    stack: Vec<NodeId>,
}

impl DocumentSink {
    pub fn new() -> DocumentSink {
        let doc = Document::new();
        let root = doc.document_node();
        DocumentSink {
            doc,
            stack: vec![root],
        }
    }
}

impl GenSink for DocumentSink {
    fn open(&mut self, tag: &str) {
        let parent = *self.stack.last().expect("document node always present");
        let id = self.doc.append_element(parent, tag, vec![]);
        self.stack.push(id);
    }

    fn attr(&mut self, name: &str, value: &str) {
        let id = *self.stack.last().expect("attr outside element");
        self.doc.push_attribute(id, name, value);
    }

    fn text(&mut self, body: &str) {
        let parent = *self.stack.last().expect("text outside element");
        self.doc.append_text(parent, body);
    }

    fn close(&mut self) {
        assert!(self.stack.len() > 1, "close without open");
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sink: &mut impl GenSink) {
        sink.open("site");
        sink.attr("version", "1");
        sink.open("people");
        sink.text("hello");
        sink.close();
        sink.close();
    }

    #[test]
    fn encoding_sink_builds_plane() {
        let mut sink = EncodingSink {
            builder: EncodingBuilder::new(),
        };
        drive(&mut sink);
        let doc = sink.builder.finish();
        // site, @version, people, text
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.tag_name(0), Some("site"));
        assert_eq!(doc.height(), 2);
    }

    #[test]
    fn document_sink_builds_tree() {
        let mut sink = DocumentSink::new();
        drive(&mut sink);
        let xml = sink.doc.to_xml();
        assert_eq!(xml, r#"<site version="1"><people>hello</people></site>"#);
    }

    #[test]
    fn sinks_agree_via_encoding() {
        let mut es = EncodingSink {
            builder: EncodingBuilder::new(),
        };
        drive(&mut es);
        let direct = es.builder.finish();
        let mut ds = DocumentSink::new();
        drive(&mut ds);
        let via_tree = staircase_accel::Doc::from_document(&ds.doc);
        assert_eq!(direct.post_column(), via_tree.post_column());
        assert_eq!(direct.kind_column(), via_tree.kind_column());
    }
}
