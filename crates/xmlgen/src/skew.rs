//! Adversarial skewed documents: the twig benchmark's workload shape.
//!
//! The XMark-like generator ([`crate::generate`]) is deliberately
//! *uniform* — tag frequencies and fan-outs are tuned to the paper's
//! Table 1 ratios, which is exactly the regime where step-at-a-time
//! evaluation is already near-optimal. This module generates the
//! opposite: documents whose tag frequencies follow a Zipf law and whose
//! shape plants a **deep chain of rare-under-common** — a huge
//! population of `a[b]` blocks of which only a tiny planted fraction
//! actually contains the rare `c[d]` tail, buried under a filler chain.
//!
//! Against `//a[b]//c[d]`-shaped twig queries this is the worst case for
//! step-at-a-time plans (the `a[b]` frontier is enormous and almost
//! entirely useless) and the best case for the multiway leapfrog
//! (`staircase_core::twig_match`), whose pivot cursor runs over the
//! tiny `c` fragment. Documents are fully deterministic per
//! [`SkewConfig`], so benchmark runs are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use staircase_accel::{Doc, EncodingBuilder};

use crate::sink::{DocumentSink, EncodingSink, GenSink};

/// Filler vocabulary: `t0` (most frequent) … `t15` (rarest), with
/// frequency ∝ 1/rank^zipf.
const FILLER_TAGS: [&str; 16] = [
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11", "t12", "t13", "t14",
    "t15",
];

/// One block in `PLANT_PERIOD` carries the planted `c[d]` tail.
const PLANT_PERIOD: usize = 1000;
/// One block in `DECOY_PERIOD` carries a childless decoy `c` (so `c`
/// membership alone never decides `c[d]`).
const DECOY_PERIOD: usize = 250;
/// Blocks per unit of scale; a block averages ≈ 25 nodes, so one scale
/// unit lands near the XMark generator's ≈ 50 000 nodes.
const BLOCKS_PER_SCALE: f64 = 2000.0;
/// Mean Zipf-distributed filler elements per block.
const MEAN_FILLER: f64 = 20.0;
/// Depth of the filler chain burying a planted `c[d]` tail.
const PLANT_CHAIN_DEPTH: usize = 5;

/// Configuration for one skewed document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewConfig {
    /// Size knob: 1.0 ≈ 50 000 nodes, like [`crate::XmarkConfig::scale`].
    pub scale: f64,
    /// Zipf exponent for the filler-tag choice; 0.0 is uniform, larger
    /// values concentrate mass on `t0`.
    pub zipf: f64,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl SkewConfig {
    /// A config with the default seed.
    pub fn new(scale: f64, zipf: f64) -> SkewConfig {
        SkewConfig {
            scale,
            zipf,
            seed: 0x5EED,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> SkewConfig {
        self.seed = seed;
        self
    }
}

/// Generates a skewed document straight into the XPath-accelerator
/// encoding.
pub fn generate_skewed(config: SkewConfig) -> Doc {
    let mut sink = EncodingSink {
        builder: EncodingBuilder::new(),
    };
    sink.builder.reserve((config.scale * 50_000.0) as usize);
    SkewGenerator::new(config).run(&mut sink);
    sink.builder.finish()
}

/// Generates the same skewed document as XML text.
pub fn generate_skewed_xml(config: SkewConfig) -> String {
    let mut sink = DocumentSink::new();
    SkewGenerator::new(config).run(&mut sink);
    sink.doc.to_xml()
}

struct SkewGenerator {
    config: SkewConfig,
    rng: SmallRng,
    /// Cumulative Zipf weights over [`FILLER_TAGS`].
    cumulative: [f64; FILLER_TAGS.len()],
}

impl SkewGenerator {
    fn new(config: SkewConfig) -> SkewGenerator {
        let mut cumulative = [0.0; FILLER_TAGS.len()];
        let mut total = 0.0;
        for (i, slot) in cumulative.iter_mut().enumerate() {
            total += 1.0 / ((i + 1) as f64).powf(config.zipf.max(0.0));
            *slot = total;
        }
        SkewGenerator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            cumulative,
        }
    }

    fn filler_tag(&mut self) -> &'static str {
        let total = self.cumulative[FILLER_TAGS.len() - 1];
        let u: f64 = self.rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        FILLER_TAGS[idx.min(FILLER_TAGS.len() - 1)]
    }

    fn geometric(&mut self, mean: f64) -> usize {
        let p = 1.0 / (mean + 1.0);
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as usize
    }

    fn run(&mut self, sink: &mut impl GenSink) {
        let blocks = ((BLOCKS_PER_SCALE * self.config.scale).round() as usize).max(2);
        sink.open("root");
        for block in 0..blocks {
            // Offsets keep the planted and decoy populations disjoint.
            let planted = block % PLANT_PERIOD == PLANT_PERIOD / 2;
            let decoy = !planted && block % DECOY_PERIOD == DECOY_PERIOD / 4;
            self.block(sink, planted, decoy);
        }
        sink.close();
    }

    /// One `a` block: a common `b` child, a pile of Zipf filler
    /// (occasionally nested one level), and — for the planted few — the
    /// rare `c[d]` tail buried under a filler chain.
    fn block(&mut self, sink: &mut impl GenSink, planted: bool, decoy: bool) {
        sink.open("a");
        sink.open("b");
        sink.close();
        let fillers = self.geometric(MEAN_FILLER);
        for _ in 0..fillers {
            let tag = self.filler_tag();
            sink.open(tag);
            if self.rng.gen::<f64>() < 0.2 {
                let inner = self.filler_tag();
                sink.open(inner);
                sink.close();
            }
            sink.close();
        }
        if decoy {
            // A `c` with no `d` below it: rare enough to keep the `c`
            // fragment small, common enough that the `[d]` chain does
            // real filtering work.
            sink.open("c");
            sink.close();
        }
        if planted {
            for _ in 0..PLANT_CHAIN_DEPTH {
                let tag = self.filler_tag();
                sink.open(tag);
            }
            sink.open("c");
            sink.open("d");
            sink.close();
            sink.close();
            for _ in 0..PLANT_CHAIN_DEPTH {
                sink.close();
            }
        }
        sink.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staircase_accel::NodeKind;

    fn count(doc: &Doc, name: &str) -> usize {
        doc.tag_id(name)
            .map(|t| {
                doc.pres()
                    .filter(|&v| doc.tag(v) == t && doc.kind(v) == NodeKind::Element)
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn determinism_same_config_same_doc() {
        let a = generate_skewed(SkewConfig::new(0.5, 1.2));
        let b = generate_skewed(SkewConfig::new(0.5, 1.2));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.post_column(), b.post_column());
        let c = generate_skewed(SkewConfig::new(0.5, 1.2).with_seed(9));
        assert_ne!(a.post_column(), c.post_column());
    }

    #[test]
    fn zipf_exponent_skews_the_tag_frequencies() {
        let skewed = generate_skewed(SkewConfig::new(1.0, 1.5));
        let head = count(&skewed, "t0");
        let tail = count(&skewed, "t15");
        assert!(
            head > tail * 10,
            "zipf 1.5 should skew hard: t0 {head} vs t15 {tail}"
        );
        let uniform = generate_skewed(SkewConfig::new(1.0, 0.0));
        let head = count(&uniform, "t0") as f64;
        let tail = count(&uniform, "t15") as f64;
        assert!(
            head < tail * 2.0 && tail < head * 2.0,
            "zipf 0 should be near-uniform: t0 {head} vs t15 {tail}"
        );
    }

    #[test]
    fn rare_under_common_shape_holds() {
        let doc = generate_skewed(SkewConfig::new(2.0, 1.2));
        let a = count(&doc, "a");
        let c = count(&doc, "c");
        let d = count(&doc, "d");
        // The common spine dwarfs the rare tail…
        assert!(a > 100 * c.max(1), "a {a} !>> c {c}");
        // …and only the planted subset of `c` carries a `d` (decoys
        // outnumber plants).
        assert!(d > 0 && c > 2 * d, "c {c} vs d {d}");
        // Every block has its `b`.
        assert_eq!(count(&doc, "b"), a);
    }

    #[test]
    fn node_count_tracks_scale() {
        let small = generate_skewed(SkewConfig::new(1.0, 1.0));
        let large = generate_skewed(SkewConfig::new(4.0, 1.0));
        let ratio = large.len() as f64 / small.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "scaling broken: {ratio}");
        assert!(
            (30_000..70_000).contains(&small.len()),
            "nodes per scale unit: {}",
            small.len()
        );
    }

    #[test]
    fn xml_output_roundtrips_to_same_encoding() {
        let cfg = SkewConfig::new(0.05, 1.3).with_seed(7);
        let direct = generate_skewed(cfg);
        let parsed = Doc::from_xml(&generate_skewed_xml(cfg)).expect("generated XML must parse");
        assert_eq!(direct.len(), parsed.len());
        assert_eq!(direct.post_column(), parsed.post_column());
    }
}
