//! The XMark-like generator core.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use staircase_accel::{Doc, EncodingBuilder, NodeKind};
use staircase_xml::Document;

use crate::sink::{DocumentSink, EncodingSink, GenSink};
use crate::words::{CITIES, COUNTRIES, EDUCATION, FIRST_NAMES, LAST_NAMES, WORDS};

/// Entity counts per unit of scale (1 scale unit ≈ 1 MB ≈ 50 000 nodes).
/// The ratios mirror what the paper's Table 1 implies for XMark documents:
/// ≈ 127 k profiles, ≈ 108 k open auctions, and ≈ 598 k increase elements
/// per 50.8 M nodes.
const PERSONS_PER_SCALE: f64 = 127.0;
const OPEN_AUCTIONS_PER_SCALE: f64 = 107.0;
const CLOSED_AUCTIONS_PER_SCALE: f64 = 97.0;
const ITEMS_PER_SCALE: f64 = 217.0;
const CATEGORIES_PER_SCALE: f64 = 25.0;

/// Mean bidders per open auction (Table 1: 597 777 / 108 414 ≈ 5.5).
const MEAN_BIDDERS: f64 = 5.5;
/// Mean interests per profile (tuned so a profile has ≈ 14.4 non-attribute
/// descendants, the Q1 intermediary-result ratio).
const MEAN_INTERESTS: f64 = 9.0;
/// Probability that a profile has an `education` child (Table 1:
/// 63 793 / 127 984 ≈ 0.5).
const P_EDUCATION: f64 = 0.5;
/// Mean mails per item mailbox (filler mass so a scale unit lands near
/// 50 000 nodes).
const MEAN_MAILS: f64 = 6.0;
/// Mean inline elements per mixed-content text block.
const MEAN_INLINE: f64 = 3.0;

const CONTINENTS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Configuration for one generated document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmarkConfig {
    /// Document size knob: 1.0 ≈ 50 000 nodes (≈ 1 MB of XML text), the
    /// paper's smallest instance; 1000.0 approximates its 1 GB instance.
    pub scale: f64,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl XmarkConfig {
    /// A config with the default seed.
    pub fn new(scale: f64) -> XmarkConfig {
        XmarkConfig {
            scale,
            seed: 0xC0FFEE,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> XmarkConfig {
        self.seed = seed;
        self
    }

    fn count(&self, per_scale: f64) -> usize {
        ((per_scale * self.scale).round() as usize).max(1)
    }
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig::new(1.0)
    }
}

/// Generates a document straight into the XPath-accelerator encoding.
pub fn generate(config: XmarkConfig) -> Doc {
    let mut sink = EncodingSink {
        builder: EncodingBuilder::new(),
    };
    sink.builder.reserve((config.scale * 50_000.0) as usize);
    Generator::new(config).run(&mut sink);
    sink.builder.finish()
}

/// Generates an in-memory XML document tree.
pub fn generate_document(config: XmarkConfig) -> Document {
    let mut sink = DocumentSink::new();
    Generator::new(config).run(&mut sink);
    sink.doc
}

/// Generates XML text.
pub fn generate_xml(config: XmarkConfig) -> String {
    generate_document(config).to_xml()
}

struct Generator {
    config: XmarkConfig,
    rng: SmallRng,
}

impl Generator {
    fn new(config: XmarkConfig) -> Generator {
        Generator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
        }
    }

    /// Geometric sample with the given mean (support 0, 1, 2, …).
    fn geometric(&mut self, mean: f64) -> usize {
        let p = 1.0 / (mean + 1.0);
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    fn word(&mut self) -> &'static str {
        WORDS[self.rng.gen_range(0..WORDS.len())]
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn sentence(&mut self, words: usize) -> String {
        let mut s = String::new();
        for i in 0..words.max(1) {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(self.word());
        }
        s
    }

    fn run(&mut self, sink: &mut impl GenSink) {
        let persons = self.config.count(PERSONS_PER_SCALE);
        let open_auctions = self.config.count(OPEN_AUCTIONS_PER_SCALE);
        let closed_auctions = self.config.count(CLOSED_AUCTIONS_PER_SCALE);
        let items = self.config.count(ITEMS_PER_SCALE);
        let categories = self.config.count(CATEGORIES_PER_SCALE);

        sink.open("site");
        self.regions(sink, items, categories);
        self.categories(sink, categories);
        self.catgraph(sink, categories);
        self.people(sink, persons, open_auctions);
        self.open_auctions(sink, open_auctions, persons, items, categories);
        self.closed_auctions(sink, closed_auctions, persons, items);
        sink.close();
    }

    // ----- regions / items --------------------------------------------

    fn regions(&mut self, sink: &mut impl GenSink, items: usize, categories: usize) {
        sink.open("regions");
        let mut item_id = 0usize;
        for (ci, continent) in CONTINENTS.iter().enumerate() {
            sink.open(continent);
            // Distribute items round-robin-ish across continents.
            let share = items / CONTINENTS.len() + usize::from(ci < items % CONTINENTS.len());
            for _ in 0..share {
                // The very first item carries the document's forced
                // maximum-depth description so height is always 11.
                self.item(sink, item_id, categories, item_id == 0);
                item_id += 1;
            }
            sink.close();
        }
        sink.close();
    }

    fn item(&mut self, sink: &mut impl GenSink, id: usize, categories: usize, force_deep: bool) {
        sink.open("item");
        sink.attr("id", &format!("item{id}"));
        if self.chance(0.1) {
            sink.attr("featured", "yes");
        }
        let location = self.pick(COUNTRIES).to_string();
        self.leaf(sink, "location", &location);
        self.leaf(sink, "quantity", "1");
        let name = self.sentence(2);
        self.leaf(sink, "name", &name);
        self.leaf(sink, "payment", "Creditcard");
        self.description(sink, force_deep);
        self.leaf(sink, "shipping", "Will ship internationally");
        let incats = 1 + self.geometric(0.5);
        for _ in 0..incats {
            sink.open("incategory");
            let c = self.rng.gen_range(0..categories.max(1));
            sink.attr("category", &format!("category{c}"));
            sink.close();
        }
        sink.open("mailbox");
        let mails = self.geometric(MEAN_MAILS);
        for _ in 0..mails {
            self.mail(sink);
        }
        sink.close();
        sink.close();
    }

    fn mail(&mut self, sink: &mut impl GenSink) {
        sink.open("mail");
        let from = format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES));
        self.leaf(sink, "from", &from);
        let to = format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES));
        self.leaf(sink, "to", &to);
        self.leaf(sink, "date", "06/09/2026");
        self.text_block(sink);
        sink.close();
    }

    /// `description`: mixed content, occasionally a `parlist`. When
    /// `force_deep` is set, emits the full XMark-depth nesting
    /// `description/parlist/listitem/parlist/listitem/text/emph/keyword`
    /// whose `keyword` sits at level 11 — pinning the document height.
    fn description(&mut self, sink: &mut impl GenSink, force_deep: bool) {
        sink.open("description");
        if force_deep {
            sink.open("parlist");
            sink.open("listitem");
            sink.open("parlist");
            sink.open("listitem");
            sink.open("text");
            sink.text(self.word());
            sink.open("emph");
            sink.open("keyword");
            sink.close(); // keyword (level 11, deliberately empty)
            sink.close(); // emph
            sink.close(); // text
            sink.close(); // listitem
            sink.close(); // parlist
            sink.close(); // listitem
            sink.close(); // parlist
        } else if self.chance(0.3) {
            sink.open("parlist");
            let lis = 1 + self.geometric(1.0);
            for _ in 0..lis {
                sink.open("listitem");
                self.text_block(sink);
                sink.close();
            }
            sink.close();
        } else {
            self.text_block(sink);
        }
        sink.close();
    }

    /// A mixed-content `text` element: running text interleaved with
    /// `bold`/`keyword`/`emph` inline elements.
    fn text_block(&mut self, sink: &mut impl GenSink) {
        sink.open("text");
        let s = self.sentence(4);
        sink.text(&s);
        let inlines = self.geometric(MEAN_INLINE);
        for _ in 0..inlines {
            let tag = ["bold", "keyword", "emph"][self.rng.gen_range(0..3)];
            let w = self.word();
            self.leaf(sink, tag, w);
            let s = self.sentence(3);
            sink.text(&s);
        }
        sink.close();
    }

    // ----- categories ---------------------------------------------------

    fn categories(&mut self, sink: &mut impl GenSink, categories: usize) {
        sink.open("categories");
        for id in 0..categories {
            sink.open("category");
            sink.attr("id", &format!("category{id}"));
            let name = self.sentence(1);
            self.leaf(sink, "name", &name);
            self.description(sink, false);
            sink.close();
        }
        sink.close();
    }

    fn catgraph(&mut self, sink: &mut impl GenSink, categories: usize) {
        sink.open("catgraph");
        for _ in 0..categories {
            sink.open("edge");
            let from = self.rng.gen_range(0..categories.max(1));
            let to = self.rng.gen_range(0..categories.max(1));
            sink.attr("from", &format!("category{from}"));
            sink.attr("to", &format!("category{to}"));
            sink.close();
        }
        sink.close();
    }

    // ----- people -------------------------------------------------------

    fn people(&mut self, sink: &mut impl GenSink, persons: usize, auctions: usize) {
        sink.open("people");
        for id in 0..persons {
            self.person(sink, id, auctions);
        }
        sink.close();
    }

    fn person(&mut self, sink: &mut impl GenSink, id: usize, auctions: usize) {
        sink.open("person");
        sink.attr("id", &format!("person{id}"));
        let name = format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES));
        self.leaf(sink, "name", &name);
        let email = format!(
            "mailto:{}@example.org",
            self.pick(LAST_NAMES).to_lowercase()
        );
        self.leaf(sink, "emailaddress", &email);
        if self.chance(0.5) {
            self.leaf(sink, "phone", "+49 7531 88 0");
        }
        if self.chance(0.4) {
            sink.open("address");
            self.leaf(sink, "street", "42 Main St");
            let city = self.pick(CITIES).to_string();
            self.leaf(sink, "city", &city);
            let country = self.pick(COUNTRIES).to_string();
            self.leaf(sink, "country", &country);
            self.leaf(sink, "zipcode", "78457");
            sink.close();
        }
        if self.chance(0.3) {
            self.leaf(sink, "homepage", "http://example.org/~user");
        }
        if self.chance(0.25) {
            self.leaf(sink, "creditcard", "1234 5678 9012 3456");
        }
        self.profile(sink);
        sink.open("watches");
        let watches = self.geometric(0.5);
        for _ in 0..watches {
            sink.open("watch");
            let a = self.rng.gen_range(0..auctions.max(1));
            sink.attr("open_auction", &format!("open_auction{a}"));
            sink.close();
        }
        sink.close();
        sink.close();
    }

    /// The Q1 target: every person has a `profile`; about half the
    /// profiles have an `education` child.
    fn profile(&mut self, sink: &mut impl GenSink) {
        sink.open("profile");
        sink.attr("income", "9876.54");
        let interests = self.geometric(MEAN_INTERESTS);
        for _ in 0..interests {
            sink.open("interest");
            let c = self.rng.gen_range(0..64);
            sink.attr("category", &format!("category{c}"));
            sink.close();
        }
        if self.chance(P_EDUCATION) {
            let e = self.pick(EDUCATION).to_string();
            self.leaf(sink, "education", &e);
        }
        if self.chance(0.6) {
            let gender = if self.chance(0.5) { "male" } else { "female" };
            self.leaf(sink, "gender", gender);
        }
        let business = if self.chance(0.5) { "Yes" } else { "No" };
        self.leaf(sink, "business", business);
        if self.chance(0.6) {
            self.leaf(sink, "age", "42");
        }
        sink.close();
    }

    // ----- auctions -------------------------------------------------------

    fn open_auctions(
        &mut self,
        sink: &mut impl GenSink,
        auctions: usize,
        persons: usize,
        items: usize,
        categories: usize,
    ) {
        sink.open("open_auctions");
        for id in 0..auctions {
            self.open_auction(sink, id, persons, items, categories);
        }
        sink.close();
    }

    /// The Q2 target: `increase` sits at level 4
    /// (site/open_auctions/open_auction/bidder/increase), matching the
    /// paper's observation `level(c) = 4` for every context node of Q2.
    fn open_auction(
        &mut self,
        sink: &mut impl GenSink,
        id: usize,
        persons: usize,
        items: usize,
        _categories: usize,
    ) {
        sink.open("open_auction");
        sink.attr("id", &format!("open_auction{id}"));
        self.leaf(sink, "initial", "15.00");
        if self.chance(0.4) {
            self.leaf(sink, "reserve", "30.00");
        }
        let bidders = self.geometric(MEAN_BIDDERS);
        for _ in 0..bidders {
            self.bidder(sink, persons);
        }
        self.leaf(sink, "current", "45.00");
        if self.chance(0.3) {
            self.leaf(sink, "privacy", "Yes");
        }
        sink.open("itemref");
        let it = self.rng.gen_range(0..items.max(1));
        sink.attr("item", &format!("item{it}"));
        sink.close();
        sink.open("seller");
        let p = self.rng.gen_range(0..persons.max(1));
        sink.attr("person", &format!("person{p}"));
        sink.close();
        self.annotation(sink);
        self.leaf(sink, "quantity", "1");
        self.leaf(sink, "type", "Regular");
        sink.open("interval");
        self.leaf(sink, "start", "06/01/2026");
        self.leaf(sink, "end", "07/01/2026");
        sink.close();
        sink.close();
    }

    fn bidder(&mut self, sink: &mut impl GenSink, persons: usize) {
        sink.open("bidder");
        self.leaf(sink, "date", "06/09/2026");
        self.leaf(sink, "time", "12:00:00");
        sink.open("personref");
        let p = self.rng.gen_range(0..persons.max(1));
        sink.attr("person", &format!("person{p}"));
        sink.close();
        self.leaf(sink, "increase", "1.50");
        sink.close();
    }

    fn annotation(&mut self, sink: &mut impl GenSink) {
        sink.open("annotation");
        let author = format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES));
        self.leaf(sink, "author", &author);
        self.description(sink, false);
        self.leaf(sink, "happiness", "8");
        sink.close();
    }

    fn closed_auctions(
        &mut self,
        sink: &mut impl GenSink,
        auctions: usize,
        persons: usize,
        items: usize,
    ) {
        sink.open("closed_auctions");
        for _ in 0..auctions {
            sink.open("closed_auction");
            sink.open("seller");
            let p = self.rng.gen_range(0..persons.max(1));
            sink.attr("person", &format!("person{p}"));
            sink.close();
            sink.open("buyer");
            let p = self.rng.gen_range(0..persons.max(1));
            sink.attr("person", &format!("person{p}"));
            sink.close();
            sink.open("itemref");
            let it = self.rng.gen_range(0..items.max(1));
            sink.attr("item", &format!("item{it}"));
            sink.close();
            self.leaf(sink, "price", "55.00");
            self.leaf(sink, "date", "06/09/2026");
            self.leaf(sink, "quantity", "1");
            self.leaf(sink, "type", "Regular");
            self.annotation(sink);
            sink.close();
        }
        sink.close();
    }

    fn leaf(&mut self, sink: &mut impl GenSink, tag: &str, body: &str) {
        sink.open(tag);
        sink.text(body);
        sink.close();
    }
}

/// Structural measurements of a generated document — the quantities the
/// paper's experiments assume about XMark instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocProfile {
    /// Total node count (all kinds).
    pub nodes: usize,
    /// Document height (max level).
    pub height: u16,
    /// Element node count.
    pub elements: usize,
    /// Attribute node count.
    pub attributes: usize,
    /// Text node count.
    pub texts: usize,
    /// `person` elements.
    pub persons: usize,
    /// `profile` elements.
    pub profiles: usize,
    /// `education` elements.
    pub educations: usize,
    /// `open_auction` elements.
    pub open_auctions: usize,
    /// `bidder` elements.
    pub bidders: usize,
    /// `increase` elements.
    pub increases: usize,
    /// `item` elements.
    pub items: usize,
}

impl DocProfile {
    /// Measures `doc` with one pass.
    pub fn measure(doc: &Doc) -> DocProfile {
        let count = |name: &str| {
            doc.tag_id(name)
                .map(|t| {
                    doc.pres()
                        .filter(|&v| doc.tag(v) == t && doc.kind(v) == NodeKind::Element)
                        .count()
                })
                .unwrap_or(0)
        };
        let (elements, attributes, texts, _, _) = doc.kind_counts();
        DocProfile {
            nodes: doc.len(),
            height: doc.height(),
            elements,
            attributes,
            texts,
            persons: count("person"),
            profiles: count("profile"),
            educations: count("education"),
            open_auctions: count("open_auction"),
            bidders: count("bidder"),
            increases: count("increase"),
            items: count("item"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_doc() {
        let a = generate(XmarkConfig::new(0.5));
        let b = generate(XmarkConfig::new(0.5));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.post_column(), b.post_column());
        assert_eq!(a.kind_column(), b.kind_column());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(XmarkConfig::new(0.5));
        let b = generate(XmarkConfig::new(0.5).with_seed(99));
        assert_ne!(a.post_column(), b.post_column());
    }

    #[test]
    fn height_is_eleven() {
        for scale in [0.2, 1.0, 4.0] {
            let doc = generate(XmarkConfig::new(scale));
            assert_eq!(doc.height(), 11, "scale {scale}");
        }
    }

    #[test]
    fn node_count_tracks_scale() {
        let p1 = DocProfile::measure(&generate(XmarkConfig::new(1.0)));
        let p4 = DocProfile::measure(&generate(XmarkConfig::new(4.0)));
        let ratio = p4.nodes as f64 / p1.nodes as f64;
        assert!((3.0..5.0).contains(&ratio), "scaling broken: {ratio}");
        // ≈ 50k nodes per scale unit (±30%).
        assert!(
            (35_000..65_000).contains(&p1.nodes),
            "nodes per scale unit: {}",
            p1.nodes
        );
    }

    #[test]
    fn table1_ratios_hold() {
        let doc = generate(XmarkConfig::new(4.0));
        let p = DocProfile::measure(&doc);
        // bidders per auction ≈ 5.5 (±20%).
        let bpa = p.bidders as f64 / p.open_auctions as f64;
        assert!((4.4..6.6).contains(&bpa), "bidders/auction {bpa}");
        // one increase per bidder.
        assert_eq!(p.increases, p.bidders);
        // education on ≈ half the profiles (±20%).
        let epp = p.educations as f64 / p.profiles as f64;
        assert!((0.4..0.6).contains(&epp), "education/profile {epp}");
        // every person has exactly one profile.
        assert_eq!(p.persons, p.profiles);
        // increase fraction of all nodes ≈ 1.2% (paper: 597k/50.8M ≈ 1.18%).
        let inc_frac = p.increases as f64 / p.nodes as f64;
        assert!(
            (0.008..0.016).contains(&inc_frac),
            "increase fraction {inc_frac}"
        );
    }

    #[test]
    fn increase_sits_at_level_4() {
        let doc = generate(XmarkConfig::new(0.5));
        let t = doc.tag_id("increase").unwrap();
        for v in doc.pres() {
            if doc.tag(v) == t && doc.kind(v) == NodeKind::Element {
                assert_eq!(doc.level(v), 4);
            }
        }
    }

    #[test]
    fn profile_descendant_ratio_close_to_paper() {
        // Table 1: 1,849,360 / 127,984 ≈ 14.45 non-attribute descendants
        // per profile.
        let doc = generate(XmarkConfig::new(2.0));
        let t = doc.tag_id("profile").unwrap();
        let mut total = 0usize;
        let mut profiles = 0usize;
        for v in doc.pres() {
            if doc.tag(v) == t && doc.kind(v) == NodeKind::Element {
                profiles += 1;
                total += doc
                    .pres()
                    .skip(v as usize + 1)
                    .take_while(|&w| doc.post(w) < doc.post(v))
                    .filter(|&w| doc.kind(w) != NodeKind::Attribute)
                    .count();
            }
        }
        let ratio = total as f64 / profiles as f64;
        assert!((10.0..19.0).contains(&ratio), "profile descendants {ratio}");
    }

    #[test]
    fn xml_output_roundtrips_to_same_encoding() {
        let cfg = XmarkConfig::new(0.05).with_seed(7);
        let direct = generate(cfg);
        let xml = generate_xml(cfg);
        let parsed = Doc::from_xml(&xml).expect("generated XML must parse");
        assert_eq!(direct.len(), parsed.len());
        assert_eq!(direct.post_column(), parsed.post_column());
        assert_eq!(direct.kind_column(), parsed.kind_column());
        for v in direct.pres() {
            assert_eq!(direct.tag_name(v), parsed.tag_name(v), "tag at {v}");
        }
    }

    #[test]
    fn vocabulary_tags_present() {
        let doc = generate(XmarkConfig::new(0.5));
        for tag in [
            "site",
            "regions",
            "people",
            "person",
            "profile",
            "open_auctions",
            "open_auction",
            "bidder",
            "increase",
            "item",
            "education",
            "category",
        ] {
            assert!(doc.tag_id(tag).is_some(), "missing tag {tag}");
        }
    }

    #[test]
    fn tiny_scale_still_valid() {
        let doc = generate(XmarkConfig::new(0.001));
        assert!(doc.len() > 50);
        assert_eq!(doc.tag_name(0), Some("site"));
    }
}
