//! Filler vocabulary for generated text content.
//!
//! XMLgen filled text nodes with Shakespeare word soup; any fixed word pool
//! works, since the experiments never look inside text nodes.

/// Word pool for running text.
pub(crate) const WORDS: &[&str] = &[
    "against",
    "arms",
    "arrows",
    "be",
    "bear",
    "consummation",
    "die",
    "dream",
    "end",
    "flesh",
    "fortune",
    "heart",
    "heartache",
    "heir",
    "mind",
    "nobler",
    "not",
    "opposing",
    "or",
    "outrageous",
    "question",
    "sea",
    "shocks",
    "sleep",
    "slings",
    "suffer",
    "take",
    "that",
    "the",
    "thousand",
    "to",
    "troubles",
    "whether",
    "wish",
    "natural",
];

/// First names for person elements.
pub(crate) const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Alan",
    "Barbara",
    "Edsger",
    "Grace",
    "John",
    "Katherine",
    "Ken",
    "Leslie",
    "Niklaus",
    "Robin",
    "Tony",
];

/// Last names for person elements.
pub(crate) const LAST_NAMES: &[&str] = &[
    "Backus",
    "Dijkstra",
    "Hamilton",
    "Hoare",
    "Hopper",
    "Johnson",
    "Kernighan",
    "Lamport",
    "Liskov",
    "Lovelace",
    "Milner",
    "Wirth",
];

/// City names for addresses.
pub(crate) const CITIES: &[&str] = &[
    "Amsterdam",
    "Berlin",
    "Enschede",
    "Hong Kong",
    "Konstanz",
    "Madison",
    "Rome",
    "Twente",
];

/// Country names for addresses.
pub(crate) const COUNTRIES: &[&str] =
    &["China", "Germany", "Italy", "Netherlands", "United States"];

/// Education levels (the Q1 target tag's content).
pub(crate) const EDUCATION: &[&str] = &["High School", "College", "Graduate School", "Other"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_non_empty() {
        for pool in [WORDS, FIRST_NAMES, LAST_NAMES, CITIES, COUNTRIES, EDUCATION] {
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn words_are_lowercase_tokens() {
        assert!(WORDS
            .iter()
            .all(|w| w.chars().all(|c| c.is_ascii_lowercase())));
    }
}
