//! # staircase-xmlgen
//!
//! A deterministic XMark-like XML document generator — the reproduction's
//! substitute for XMLgen, the XML benchmark generator of Schmidt et al.
//! used in the paper's experiments (§4.4: "instances of controllable size
//! … 1 MB up to 1 GB (50 000–50 000 000 document nodes). All documents
//! were of height 11").
//!
//! The generator emits the XMark auction vocabulary (`site`, `people` /
//! `person` / `profile` / `education`, `open_auctions` / `open_auction` /
//! `bidder` / `increase`, `regions` / `item`, …) with fan-outs tuned so the
//! structural ratios the paper's experiments depend on hold at every scale
//! (see [`DocProfile`] and the crate tests):
//!
//! * ≈ 50 000 nodes per unit of [`XmarkConfig::scale`] (1 scale ≈ 1 MB),
//! * document height exactly 11,
//! * `level(increase) = 4` and ≈ 5.5 bidders per open auction (Q2's
//!   duplicate ratio of ≈ 75 % follows from these two),
//! * ≈ half of all `profile` elements carry an `education` child (Q1).
//!
//! Two output paths share one generator core:
//!
//! * [`generate`] — straight into the [`staircase_accel::EncodingBuilder`]
//!   (no XML text, no DOM): multi-million-node planes in milliseconds.
//! * [`generate_xml`] — real XML text via the `staircase-xml` writer, for
//!   pipeline tests and the quickstart example.

#![warn(missing_docs)]

mod gen;
mod mislead;
mod sink;
mod skew;
mod words;

pub use gen::{generate, generate_document, generate_xml, DocProfile, XmarkConfig};
pub use mislead::{generate_misleading, generate_misleading_xml, MisleadConfig};
pub use skew::{generate_skewed, generate_skewed_xml, SkewConfig};
