//! Misleading-statistics documents: the adaptive benchmark's workload
//! shape.
//!
//! The planner's cardinality model is *global*: a step's context window
//! is `card · (d̄ + 1)` (Equation 1 with the document-average subtree
//! size) and a name test keeps the tag's document-wide frequency. Both
//! assumptions hold on the uniform XMark-like documents
//! ([`crate::generate`]) — and this module generates documents where
//! both are as wrong as possible while every individual statistic stays
//! honest:
//!
//! * a huge population of short filler chains keeps the *average*
//!   subtree tiny, while
//! * a handful of `a` hubs each carry a deep nested chain of `b`
//!   elements — so `//a/descendant::b`'s true frontier is three orders
//!   of magnitude above `est_window · sel(b)`, and heavily *nested*.
//!
//! Downstream of that step the static cost model prices the card-scaled
//! operators (the SQL B-tree plan, whose per-context range scans pay
//! the *unpruned* window) as cheap and picks one; at run time the
//! frontier explodes and the unpruned scans with it. The adaptive
//! engine observes the real cardinality at the step boundary and
//! switches to the pruning staircase join. Documents are fully
//! deterministic per [`MisleadConfig`], so benchmark runs are
//! reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use staircase_accel::{Doc, EncodingBuilder};

use crate::sink::{DocumentSink, EncodingSink, GenSink};

/// Filler-chain vocabulary, cycled along each chain's depth.
const FILLER_TAGS: [&str; 7] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6"];

/// `a` hubs per unit of scale.
const HUBS_PER_SCALE: f64 = 12.0;
/// Target nodes per unit of scale (matches [`crate::XmarkConfig`]'s
/// ≈ 50 000).
const NODES_PER_SCALE: f64 = 50_000.0;
/// Mean filler-chain length (geometric); the chains carry the node mass
/// that anchors the document-average subtree size. Short chains keep
/// the average subtree (d̄ + 1) near 5 — the planner's whole window
/// estimate for a non-root step.
const MEAN_FILLER_CHAIN: f64 = 2.5;
/// Longest filler chain (geometric tail cut-off).
const MAX_FILLER_CHAIN: usize = 8;

/// Configuration for one misleading-statistics document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MisleadConfig {
    /// Size knob: 1.0 ≈ 50 000 nodes, like [`crate::XmarkConfig::scale`].
    pub scale: f64,
    /// Depth of each hub's nested `b` chain. Deep chains make the true
    /// `descendant::b` frontier large *and* nested — the regime where
    /// unpruned per-context scans blow up and the staircase join's
    /// pruning pays.
    pub chain_depth: usize,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl MisleadConfig {
    /// A config with the default chain depth and seed.
    pub fn new(scale: f64) -> MisleadConfig {
        MisleadConfig {
            scale,
            chain_depth: 26,
            seed: 0x1517,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> MisleadConfig {
        self.seed = seed;
        self
    }
}

/// Generates a misleading-statistics document straight into the
/// XPath-accelerator encoding.
pub fn generate_misleading(config: MisleadConfig) -> Doc {
    let mut sink = EncodingSink {
        builder: EncodingBuilder::new(),
    };
    sink.builder
        .reserve((config.scale * NODES_PER_SCALE) as usize);
    MisleadGenerator::new(config).run(&mut sink);
    sink.builder.finish()
}

/// Generates the same misleading-statistics document as XML text.
pub fn generate_misleading_xml(config: MisleadConfig) -> String {
    let mut sink = DocumentSink::new();
    MisleadGenerator::new(config).run(&mut sink);
    sink.doc.to_xml()
}

struct MisleadGenerator {
    config: MisleadConfig,
    rng: SmallRng,
}

impl MisleadGenerator {
    fn new(config: MisleadConfig) -> MisleadGenerator {
        MisleadGenerator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
        }
    }

    fn geometric(&mut self, mean: f64) -> usize {
        let p = 1.0 / (mean + 1.0);
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as usize
    }

    fn run(&mut self, sink: &mut impl GenSink) {
        let scale = self.config.scale.max(0.01);
        let hubs = ((HUBS_PER_SCALE * scale).round() as usize).max(2);
        // Per-hub node count: the a element, chain_depth b's, one w
        // leaf per b.
        let hub_nodes = 1 + 2 * self.config.chain_depth;
        let filler_budget = (NODES_PER_SCALE * scale) as usize
            - (hubs * hub_nodes).min((NODES_PER_SCALE * scale) as usize);
        // A filler block averages MEAN_FILLER_CHAIN + 1 nodes.
        let blocks = (filler_budget as f64 / (MEAN_FILLER_CHAIN + 1.0)).round() as usize;
        let hub_every = (blocks / hubs).max(1);
        sink.open("root");
        let mut planted = 0usize;
        for block in 0..blocks {
            if block % hub_every == hub_every / 2 && planted < hubs {
                self.hub(sink);
                planted += 1;
            }
            self.filler(sink);
        }
        while planted < hubs {
            self.hub(sink);
            planted += 1;
        }
        sink.close();
    }

    /// One filler chain: `f` wrapping a geometric-length chain of cycled
    /// `p*` tags. The chains are what the document-average subtree size
    /// is made of — short, so the planner's Equation-1 window stays
    /// small.
    fn filler(&mut self, sink: &mut impl GenSink) {
        sink.open("f");
        let len = self.geometric(MEAN_FILLER_CHAIN).min(MAX_FILLER_CHAIN);
        for d in 0..len {
            sink.open(FILLER_TAGS[d % FILLER_TAGS.len()]);
        }
        for _ in 0..len {
            sink.close();
        }
        sink.close();
    }

    /// One `a` hub: a nested chain of `b`s (each with a `w` leaf), depth
    /// [`MisleadConfig::chain_depth`]. Every `b` but the innermost
    /// contains all deeper `b`s — the nested frontier shape.
    fn hub(&mut self, sink: &mut impl GenSink) {
        sink.open("a");
        for _ in 0..self.config.chain_depth {
            sink.open("b");
            sink.open("w");
            sink.close();
        }
        for _ in 0..self.config.chain_depth {
            sink.close();
        }
        sink.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staircase_accel::NodeKind;

    fn count(doc: &Doc, name: &str) -> usize {
        doc.tag_id(name)
            .map(|t| {
                doc.pres()
                    .filter(|&v| doc.tag(v) == t && doc.kind(v) == NodeKind::Element)
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn determinism_same_config_same_doc() {
        let a = generate_misleading(MisleadConfig::new(0.5));
        let b = generate_misleading(MisleadConfig::new(0.5));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.post_column(), b.post_column());
        let c = generate_misleading(MisleadConfig::new(0.5).with_seed(9));
        assert_ne!(a.post_column(), c.post_column());
    }

    #[test]
    fn node_count_tracks_scale() {
        let small = generate_misleading(MisleadConfig::new(1.0));
        let large = generate_misleading(MisleadConfig::new(4.0));
        let ratio = large.len() as f64 / small.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "scaling broken: {ratio}");
        assert!(
            (30_000..70_000).contains(&small.len()),
            "nodes per scale unit: {}",
            small.len()
        );
    }

    #[test]
    fn b_mass_is_clustered_under_the_hubs() {
        let doc = generate_misleading(MisleadConfig::new(1.0));
        let a = count(&doc, "a");
        let b = count(&doc, "b");
        // Every b lives in a hub chain: b = a · chain_depth exactly.
        assert_eq!(b, a * MisleadConfig::new(1.0).chain_depth);
        // The global b frequency is tiny…
        assert!(
            (b as f64) / (doc.len() as f64) < 0.02,
            "b should be globally rare: {b} of {}",
            doc.len()
        );
        // …yet the hubs are few, so the per-hub yield is huge — the
        // misestimation this generator exists to provoke.
        assert!(a < 100, "hubs must stay rare: {a}");
    }

    #[test]
    fn chains_nest_and_set_the_height() {
        let doc = generate_misleading(MisleadConfig::new(0.5));
        let depth = MisleadConfig::new(0.5).chain_depth;
        // Chain bottom: root/a/b^depth/w.
        assert_eq!(doc.height() as usize, 2 + depth);
    }

    #[test]
    fn xml_output_roundtrips_to_same_encoding() {
        let cfg = MisleadConfig::new(0.05).with_seed(7);
        let direct = generate_misleading(cfg);
        let parsed =
            Doc::from_xml(&generate_misleading_xml(cfg)).expect("generated XML must parse");
        assert_eq!(direct.len(), parsed.len());
        assert_eq!(direct.post_column(), parsed.post_column());
    }
}
