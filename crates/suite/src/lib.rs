//! # staircase-suite
//!
//! Umbrella crate hosting the repository-level integration tests
//! (`/tests`), runnable examples (`/examples`), and the `xq` CLI. It
//! re-exports the full public surface of the reproduction as a
//! convenience prelude, so examples read like downstream user code.
//!
//! ## Quickstart
//!
//! Load a document into a [`Session`](staircase_xpath::Session), prepare
//! a query once, and run it on any engine:
//!
//! ```
//! use staircase_suite::prelude::*;
//!
//! # fn main() -> Result<(), Error> {
//! let session = Session::parse_xml("<a><b><c/></b><b/></a>")?;
//!
//! // Prepared once, runnable many times on any engine.
//! let query = session.prepare("/descendant::b")?;
//! let out = query.run(Engine::default());
//! assert_eq!(out.len(), 2);
//!
//! // Engines come from builders and are validated up front.
//! let skipping = Engine::staircase().variant(Variant::Skipping).build()?;
//! let sql = Engine::sql().eq1_window(true).build()?;
//! assert_eq!(query.run(skipping).nodes(), query.run(sql).nodes());
//!
//! // Results iterate without cloning.
//! for pre in &out {
//!     assert_eq!(session.doc().tag_name(pre), Some("b"));
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Auxiliary structures (the per-tag
//! [`TagIndex`](staircase_core::TagIndex) fragments, the SQL baseline's
//! B-tree) are built lazily by the session on first use and cached for
//! every later query, whatever the engine — `Session::aux_builds()`
//! reports the construction counts if you want to see the reuse, and
//! `Session::warm()` builds both eagerly (concurrently) ahead of
//! traffic. Whole query batches go through `Session::run_many`, which
//! merges the queries' staircase boundaries so aligned
//! `descendant`/`ancestor` steps share one pass over the plane (the
//! `xq --query-file` flag exposes this on the command line).

#![warn(missing_docs)]

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use staircase_accel::{Axis, Context, Doc, EncodingBuilder, NodeKind, Pre, Region};
    pub use staircase_baselines::{mpmgjn_join, naive_step, SqlEngine, SqlPlanOptions};
    pub use staircase_core::{
        ancestor, ancestor_many, ancestor_on_list, ancestor_parallel, descendant, descendant_fused,
        descendant_many, descendant_on_list, descendant_parallel, following, has_ancestor_in,
        has_child_in, has_descendant_in, preceding, prune, try_axis_step, twig_match, Calibrator,
        ChainStep, DocStats, RuntimeStats, Scratch, SpineLeg, StepStats, TagIndex, TwigEdge,
        UnsupportedAxis, Variant, CRACK_CONVERGE_TOUCHES,
    };
    pub use staircase_xml::{Document, PullParser};
    pub use staircase_xmlgen::{
        generate, generate_misleading, generate_misleading_xml, generate_skewed,
        generate_skewed_xml, generate_xml, DocProfile, MisleadConfig, SkewConfig, XmarkConfig,
    };
    pub use staircase_xpath::{
        parse, AuxBuilds, Budget, Engine, Error, PathPlan, PhysicalPlan, PlannedStep, PredOp,
        Query, QueryOutput, SemijoinAxis, Session, SqlBuilder, StaircaseBuilder, StepEstimate,
        StepOp, TestOp, Trip,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let session = Session::parse_xml("<a><b/><c/></a>").expect("well-formed");
        let (r, _) = descendant(session.doc(), &Context::singleton(0), Variant::default());
        assert_eq!(r.len(), 2);
        let out = session
            .run("/descendant::*", Engine::default())
            .expect("query parses");
        assert_eq!(out.len(), 2);
    }
}
