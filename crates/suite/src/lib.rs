//! # staircase-suite
//!
//! Umbrella crate hosting the repository-level integration tests
//! (`/tests`) and runnable examples (`/examples`). It re-exports the full
//! public surface of the reproduction as a convenience prelude, so
//! examples read like downstream user code:
//!
//! ```
//! use staircase_suite::prelude::*;
//!
//! let doc = Doc::from_xml("<a><b/></a>").unwrap();
//! let out = evaluate(&doc, "/descendant::b", Engine::default()).unwrap();
//! assert_eq!(out.result.len(), 1);
//! ```

#![warn(missing_docs)]

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use staircase_accel::{Axis, Context, Doc, EncodingBuilder, NodeKind, Pre, Region};
    pub use staircase_baselines::{mpmgjn_join, naive_step, SqlEngine, SqlPlanOptions};
    pub use staircase_core::{
        ancestor, ancestor_on_list, ancestor_parallel, axis_step, descendant, descendant_fused,
        descendant_on_list, descendant_parallel, following, has_ancestor_in, has_child_in,
        has_descendant_in, preceding, prune, StepStats, TagIndex, Variant,
    };
    pub use staircase_xmlgen::{generate, generate_xml, DocProfile, XmarkConfig};
    pub use staircase_xml::{Document, PullParser};
    pub use staircase_xpath::{evaluate, parse, Engine, Evaluator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let doc = Doc::from_xml("<a><b/><c/></a>").unwrap();
        let (r, _) = descendant(&doc, &Context::singleton(0), Variant::default());
        assert_eq!(r.len(), 2);
    }
}
