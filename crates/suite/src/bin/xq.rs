//! `xq` — query XML files with staircase-join-powered XPath.
//!
//! ```text
//! xq <XPATH> [FILE]                 query FILE (or stdin)
//! xq --encode <FILE> <OUT.scj>     encode an XML file to the binary plane
//! xq <XPATH> --encoded <FILE.scj>  query a pre-encoded document
//!
//! options:
//!   --engine staircase|pushdown|fragmented|parallel|naive|sql
//!   --count          print only the number of matching nodes
//!   --stats          print per-step statistics to stderr
//! ```
//!
//! Examples:
//!
//! ```text
//! xq '//open_auction[bidder/increase]/@id' auctions.xml
//! xq --encode auctions.xml auctions.scj
//! xq '/descendant::increase/ancestor::bidder' --encoded auctions.scj --stats
//! ```

use std::io::Read;
use std::process::exit;

use staircase_suite::prelude::*;

struct Options {
    query: Option<String>,
    file: Option<String>,
    encoded: Option<String>,
    encode_to: Option<(String, String)>,
    engine: Engine,
    count_only: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: xq <XPATH> [FILE] [--engine E] [--count] [--stats]\n\
         \u{20}      xq --encode <FILE> <OUT.scj>\n\
         \u{20}      xq <XPATH> --encoded <FILE.scj>\n\
         engines: staircase (default) | pushdown | fragmented | parallel | naive | sql"
    );
    exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        query: None,
        file: None,
        encoded: None,
        encode_to: None,
        engine: Engine::default(),
        count_only: false,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--encode" => {
                let src = args.next().unwrap_or_else(|| usage());
                let dst = args.next().unwrap_or_else(|| usage());
                opts.encode_to = Some((src, dst));
            }
            "--encoded" => opts.encoded = Some(args.next().unwrap_or_else(|| usage())),
            "--engine" => {
                opts.engine = match args.next().as_deref() {
                    Some("staircase") => {
                        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false }
                    }
                    Some("pushdown") => {
                        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true }
                    }
                    Some("fragmented") => {
                        Engine::Fragmented { variant: Variant::EstimationSkipping }
                    }
                    Some("parallel") => Engine::StaircaseParallel {
                        variant: Variant::EstimationSkipping,
                        threads: 4,
                    },
                    Some("naive") => Engine::Naive,
                    Some("sql") => Engine::Sql { eq1_window: true, early_nametest: true },
                    _ => usage(),
                };
            }
            "--count" => opts.count_only = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => usage(),
            other if opts.query.is_none() => opts.query = Some(other.to_string()),
            other if opts.file.is_none() => opts.file = Some(other.to_string()),
            _ => usage(),
        }
    }
    opts
}

fn render_node(doc: &Doc, v: Pre) -> String {
    match doc.kind(v) {
        NodeKind::Element => format!("<{}>", doc.tag_name(v).unwrap_or("?")),
        NodeKind::Attribute => format!(
            "@{}={:?}",
            doc.tag_name(v).unwrap_or("?"),
            doc.content(v).unwrap_or("")
        ),
        NodeKind::Text => format!("text {:?}", truncate(doc.content(v).unwrap_or(""))),
        NodeKind::Comment => format!("comment {:?}", truncate(doc.content(v).unwrap_or(""))),
        NodeKind::Pi => format!("pi <?{}?>", doc.tag_name(v).unwrap_or("?")),
    }
}

fn truncate(s: &str) -> &str {
    let end = s
        .char_indices()
        .map(|(i, _)| i)
        .take_while(|&i| i <= 40)
        .last()
        .unwrap_or(0);
    &s[..end]
}

fn main() {
    let opts = parse_args();

    // Encoding mode.
    if let Some((src, dst)) = &opts.encode_to {
        let xml = std::fs::read_to_string(src).unwrap_or_else(|e| {
            eprintln!("xq: cannot read {src}: {e}");
            exit(1);
        });
        let doc = Doc::from_xml(&xml).unwrap_or_else(|e| {
            eprintln!("xq: parse error in {src}: {e}");
            exit(1);
        });
        std::fs::write(dst, doc.to_bytes()).unwrap_or_else(|e| {
            eprintln!("xq: cannot write {dst}: {e}");
            exit(1);
        });
        eprintln!(
            "encoded {} nodes (height {}) from {src} into {dst}",
            doc.len(),
            doc.height()
        );
        return;
    }

    let Some(query) = &opts.query else { usage() };

    // Document acquisition: pre-encoded plane, file, or stdin.
    let doc = if let Some(path) = &opts.encoded {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("xq: cannot read {path}: {e}");
            exit(1);
        });
        Doc::from_bytes(&bytes).unwrap_or_else(|e| {
            eprintln!("xq: {path}: {e}");
            exit(1);
        })
    } else {
        let xml = match &opts.file {
            Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("xq: cannot read {path}: {e}");
                exit(1);
            }),
            None => {
                let mut buf = String::new();
                std::io::stdin().read_to_string(&mut buf).unwrap_or_else(|e| {
                    eprintln!("xq: cannot read stdin: {e}");
                    exit(1);
                });
                buf
            }
        };
        Doc::from_xml(&xml).unwrap_or_else(|e| {
            eprintln!("xq: XML parse error: {e}");
            exit(1);
        })
    };

    let evaluator = Evaluator::new(&doc, opts.engine);
    let out = evaluator.evaluate(query).unwrap_or_else(|e| {
        eprintln!("xq: {e}");
        exit(2);
    });

    if opts.stats {
        for s in &out.stats.steps {
            eprintln!(
                "step {:<40} result {:>8}  touched {:>10}  duplicates {:>8}",
                s.step,
                s.result_size,
                s.nodes_touched,
                s.tuples_produced.saturating_sub(s.result_size as u64)
            );
        }
    }
    if opts.count_only {
        println!("{}", out.result.len());
        return;
    }
    for v in out.result.iter() {
        println!("pre {:>8}  {}", v, render_node(&doc, v));
    }
}
