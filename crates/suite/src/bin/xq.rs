//! `xq` — query XML files with staircase-join-powered XPath.
//!
//! ```text
//! xq <XPATH> [FILE]                 query FILE (or stdin)
//! xq --query-file <QF> [FILE]      run a whole batch (one XPath per
//!                                  line) in one shared pass
//! xq --encode <FILE> <OUT.scj>     encode an XML file to the binary plane
//! xq <XPATH> --encoded <FILE.scj>  query a pre-encoded document
//! xq <XPATH> --connect <ADDR>      send the query to a running
//!                                  staircase-serve instead of loading
//!                                  a document locally (--query-file
//!                                  batches work here too)
//!
//! options:
//!   --engine staircase|pushdown|fragmented|parallel|naive|sql|auto|twig|adaptive
//!   --variant basic|skipping|estimation   staircase skipping refinement
//!   --threads N      session worker-pool width: every engine fans its
//!                    evaluation out across N workers wherever the
//!                    planner's cost hint says the work amortizes the
//!                    handoff (with --engine staircase, N also implies
//!                    the partitioned parallel engine — the historical
//!                    special case)
//!   --warm           build all auxiliary structures eagerly, in parallel
//!   --timeout-ms N   run under a governor deadline of N milliseconds;
//!                    a query still running when it expires stops
//!                    cooperatively and exits 7 (in --connect mode the
//!                    deadline rides the QUERY frame and the server
//!                    answers a TIMEOUT error frame)
//!   --max-touched N  run under a governor cost budget of N touched
//!                    nodes; exceeding it exits 7 (local mode only)
//!   --count          print only the number of matching nodes
//!   --stats          print per-step statistics to stderr, including the
//!                    planner's estimated cost next to the observed cost
//!                    (nodes touched + seeks) for every engine
//!   --explain        print the physical plan (one line per step: chosen
//!                    operator + cost estimate; `[par]` marks steps the
//!                    pool fans out; a closing `total` line sums the
//!                    plan's estimated cost) instead of running
//!   --explain --stats  run the query, then print the post-run report:
//!                    per step, the executed operator (with `[replan]`
//!                    marking steps the adaptive engine switched
//!                    mid-query), planned cost, and observed cost
//! ```
//!
//! Exit codes: `0` success, `2` usage or engine-configuration error,
//! `3` XPath/XML/decode parse error, `4` I/O error, `5` partial batch
//! (one or more `--query-file` lines failed to load or parse; each
//! failure is reported with its line number and the remaining queries
//! still run — the normative contract lives in
//! `staircase_server::mix`), `6` server unavailable (`SERVER_BUSY`
//! backpressure or a draining server in `--connect` mode), `7` governed
//! stop (`--timeout-ms` deadline or `--max-touched` budget tripped —
//! locally or as a server-side `TIMEOUT`/`RESOURCE`/`CANCELLED` error
//! frame). Server-side parse errors in `--connect` mode map to `3`,
//! exactly like local ones.
//!
//! Examples:
//!
//! ```text
//! xq '//open_auction[bidder/increase]/@id' auctions.xml
//! xq --encode auctions.xml auctions.scj
//! xq '/descendant::increase/ancestor::bidder' --encoded auctions.scj --stats
//! xq '//bidder' auctions.xml --engine parallel --threads 8 --variant skipping
//! xq --query-file queries.txt auctions.xml --engine auto --threads 4
//! xq --query-file queries.txt auctions.xml --warm --count
//! xq '//bidder/ancestor::open_auction' auctions.xml --engine auto --explain
//! ```
//!
//! The `auto` engine plans per step: each `descendant`/`ancestor` step
//! is priced against document statistics (per-tag fragment sizes,
//! Equation-1 window estimates) and the cheapest operator — plain
//! staircase join, prebuilt tag fragment, or the SQL B-tree plan — is
//! chosen. `--explain` shows the decisions for any engine. The
//! `adaptive` engine starts from `auto`'s plan and re-prices the
//! remaining steps after each one executes, using the *observed*
//! frontier cardinality instead of the estimate; `--explain --stats`
//! shows which steps it switched (`[replan]`).
//!
//! A query file holds one expression per line; blank lines and lines
//! starting with `#` are ignored. The batch is answered through
//! `Session::run_many`, so queries whose planned steps line up —
//! staircase joins, fragment (on-list) joins, horizontal axes, semijoin
//! predicates — share single passes over the plane instead of
//! rescanning per query. A line that fails to parse is reported with
//! its line number and skipped; the rest of the batch still runs, and
//! `xq` exits `5` instead of `0` so scripts can tell a partial batch
//! from a clean one.

use std::io::Read;
use std::process::exit;

use staircase_server::protocol::code as server_code;
use staircase_server::{mix, render_node, Client, ClientError, QueryOptions};
use staircase_suite::prelude::*;

const EXIT_USAGE: i32 = 2;
const EXIT_PARSE: i32 = 3;
const EXIT_IO: i32 = 4;
/// Some `--query-file` lines failed to load or parse; the rest ran.
/// (Normative contract: `staircase_server::mix`.)
const EXIT_BATCH_PARTIAL: i32 = 5;
/// The server refused the query (backpressure or shutdown) — retry
/// later; nothing was wrong with the query itself.
const EXIT_UNAVAILABLE: i32 = 6;
/// The governor stopped the query: `--timeout-ms` deadline,
/// `--max-touched` budget, or a server-side cancellation.
const EXIT_GOVERNED: i32 = 7;

struct Options {
    query: Option<String>,
    query_file: Option<String>,
    file: Option<String>,
    encoded: Option<String>,
    encode_to: Option<(String, String)>,
    connect: Option<String>,
    engine_name: String,
    variant: Option<Variant>,
    threads: Option<usize>,
    warm: bool,
    count_only: bool,
    stats: bool,
    explain: bool,
    timeout_ms: Option<u64>,
    max_touched: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: xq <XPATH> [FILE] [--engine E] [--variant V] [--threads N] [--warm] [--count] \
         [--stats] [--explain]\n\
         \u{20}      xq --query-file <QF> [FILE]   (one XPath per line, batched)\n\
         \u{20}      xq --encode <FILE> <OUT.scj>\n\
         \u{20}      xq <XPATH> --encoded <FILE.scj>\n\
         \u{20}      xq <XPATH> --connect <ADDR>   (query a running staircase-serve;\n\
         \u{20}      also with --query-file; local-only flags are rejected)\n\
         engines:  staircase (default) | pushdown | fragmented | parallel | naive | sql\n\
         \u{20}         | auto (cost-based per-step operator picking)\n\
         \u{20}         | twig (fuse eligible step runs into multiway leapfrog joins)\n\
         \u{20}         | adaptive (auto + mid-query re-planning from observed stats)\n\
         variants: basic | skipping | estimation (default)\n\
         --threads N sizes the session's worker pool: any engine fans its\n\
         evaluation out across N workers where the planner's cost hint\n\
         allows (with --engine staircase it also implies the parallel\n\
         engine, the historical special case)\n\
         --explain prints the physical plan (one line per step: operator +\n\
         cost estimate; [par] marks fan-out steps) instead of evaluating\n\
         --timeout-ms N / --max-touched N run under a governor deadline /\n\
         cost budget; a tripped query stops cooperatively and xq exits 7"
    );
    exit(EXIT_USAGE);
}

/// Exits with the code matching the error's nature: parse-shaped errors
/// (`3`), I/O (`4`), engine configuration (`2`).
fn fail(context: &str, err: Error) -> ! {
    eprintln!(
        "xq: {context}{}{err}",
        if context.is_empty() { "" } else { ": " }
    );
    let code = match err {
        Error::Parse(_) | Error::Xml(_) | Error::Decode(_) | Error::UnsupportedAxis(_) => {
            EXIT_PARSE
        }
        Error::InvalidEngine(_) => EXIT_USAGE,
        Error::Io(_) => EXIT_IO,
        Error::DeadlineExceeded | Error::BudgetExhausted | Error::Cancelled => EXIT_GOVERNED,
        _ => EXIT_USAGE,
    };
    exit(code);
}

fn parse_args() -> Options {
    let mut opts = Options {
        query: None,
        query_file: None,
        file: None,
        encoded: None,
        encode_to: None,
        connect: None,
        engine_name: "staircase".to_string(),
        variant: None,
        threads: None,
        warm: false,
        count_only: false,
        stats: false,
        explain: false,
        timeout_ms: None,
        max_touched: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => opts.connect = Some(args.next().unwrap_or_else(|| usage())),
            "--encode" => {
                let src = args.next().unwrap_or_else(|| usage());
                let dst = args.next().unwrap_or_else(|| usage());
                opts.encode_to = Some((src, dst));
            }
            "--encoded" => opts.encoded = Some(args.next().unwrap_or_else(|| usage())),
            "--query-file" => opts.query_file = Some(args.next().unwrap_or_else(|| usage())),
            "--warm" => opts.warm = true,
            "--engine" => {
                let name = args.next().unwrap_or_else(|| usage());
                match name.as_str() {
                    "staircase" | "pushdown" | "fragmented" | "parallel" | "naive" | "sql"
                    | "auto" | "twig" | "adaptive" => {
                        opts.engine_name = name;
                    }
                    _ => usage(),
                }
            }
            "--variant" => {
                opts.variant = match args.next().as_deref() {
                    Some("basic") => Some(Variant::Basic),
                    Some("skipping") => Some(Variant::Skipping),
                    Some("estimation") => Some(Variant::EstimationSkipping),
                    _ => usage(),
                };
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                // Zero workers is invalid for every engine — reject it
                // uniformly at parse time rather than letting non-
                // staircase engines silently clamp it to 1.
                opts.threads = match n.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => usage(),
                };
            }
            "--timeout-ms" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.timeout_ms = match n.parse::<u64>() {
                    Ok(n) => Some(n),
                    _ => usage(),
                };
            }
            "--max-touched" => {
                let n = args.next().unwrap_or_else(|| usage());
                // A zero-node budget can never admit work; reject it.
                opts.max_touched = match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => usage(),
                };
            }
            "--count" => opts.count_only = true,
            "--stats" => opts.stats = true,
            "--explain" => opts.explain = true,
            "--help" | "-h" => usage(),
            other if opts.query.is_none() && opts.query_file.is_none() => {
                opts.query = Some(other.to_string())
            }
            other if opts.file.is_none() => opts.file = Some(other.to_string()),
            _ => usage(),
        }
    }
    // `xq sample.xml --query-file qf.txt`: the positional argument seen
    // before --query-file is the document, not a query.
    if opts.query_file.is_some() && opts.file.is_none() {
        opts.file = opts.query.take();
    }
    // An inline query *and* a query file is ambiguous — reject instead
    // of silently dropping one.
    if opts.query_file.is_some() && opts.query.is_some() {
        usage();
    }
    // Explain modes are about the plan (or its report), not resource
    // policy — a governed explain would be a silently different answer.
    if opts.explain && (opts.timeout_ms.is_some() || opts.max_touched.is_some()) {
        usage();
    }
    opts
}

/// The governor budget the flags ask for (fresh per query, so one
/// tripped query never retires its batch siblings), or `None` when
/// neither flag was given.
fn build_budget(opts: &Options) -> Option<std::sync::Arc<Budget>> {
    if opts.timeout_ms.is_none() && opts.max_touched.is_none() {
        return None;
    }
    let mut budget = Budget::new();
    if let Some(ms) = opts.timeout_ms {
        budget = budget.with_deadline_in(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = opts.max_touched {
        budget = budget.with_max_touched(n);
    }
    Some(std::sync::Arc::new(budget))
}

/// Routes the CLI's engine/variant/thread flags through the builders;
/// inconsistent combinations surface as [`Error::InvalidEngine`].
fn build_engine(opts: &Options) -> Result<Engine, Error> {
    // --variant and --threads only make sense for the staircase family;
    // reject them elsewhere instead of silently dropping them.
    if let (Some(_), "naive" | "sql" | "auto" | "twig" | "adaptive") =
        (opts.variant, opts.engine_name.as_str())
    {
        return Err(Error::InvalidEngine(format!(
            "--variant does not apply to the {} engine",
            opts.engine_name
        )));
    }
    let variant = opts.variant.unwrap_or(Variant::EstimationSkipping);
    let staircase = || Engine::staircase().variant(variant);
    match (opts.engine_name.as_str(), opts.threads) {
        // The historical special case, kept and documented: --threads
        // with the plain staircase engine still selects the partitioned
        // parallel engine (`--engine parallel`). For every other engine
        // --threads only sizes the session's worker pool (see main).
        ("staircase", Some(n)) | ("parallel", Some(n)) => staircase().parallel(n).build(),
        ("staircase", None) => staircase().build(),
        ("parallel", None) => staircase().parallel(4).build(),
        ("pushdown", _) => staircase().pushdown(true).build(),
        ("fragmented", _) => staircase().fragmented(true).build(),
        ("naive", _) => Ok(Engine::naive()),
        ("sql", _) => Engine::sql().eq1_window(true).early_nametest(true).build(),
        ("auto", _) => Ok(Engine::auto()),
        ("twig", _) => Ok(Engine::twig()),
        ("adaptive", _) => Ok(Engine::adaptive()),
        _ => usage(),
    }
}

/// The session worker-pool width the flags ask for: `--threads` when
/// given (any engine), else the parallel engine's default worker count,
/// else `None` (leave the session's own default — the
/// `STAIRCASE_THREADS` environment variable or 1).
fn session_threads(opts: &Options) -> Option<usize> {
    opts.threads
        .or_else(|| (opts.engine_name == "parallel").then_some(4))
}

/// Exits with the code matching a `--connect`-mode failure: server
/// parse errors are parse errors (`3`, same as local), unknown engines
/// are usage (`2`), backpressure/shutdown is `6` (retry later), and
/// everything transport-shaped is I/O (`4`).
fn fail_client(context: &str, err: ClientError) -> ! {
    eprintln!(
        "xq: {context}{}{err}",
        if context.is_empty() { "" } else { ": " }
    );
    let exit_code = match &err {
        ClientError::Server { code, .. } => match *code {
            server_code::PARSE => EXIT_PARSE,
            server_code::ENGINE => EXIT_USAGE,
            server_code::BUSY | server_code::SHUTTING_DOWN => EXIT_UNAVAILABLE,
            server_code::TIMEOUT | server_code::RESOURCE | server_code::CANCELLED => EXIT_GOVERNED,
            _ => EXIT_IO,
        },
        ClientError::Io(_) | ClientError::Protocol(_) => EXIT_IO,
    };
    exit(exit_code);
}

/// `--connect` mode: the same queries, answered by a running
/// `staircase-serve` over the frame protocol, printed with the same
/// formatting (the server renders through the shared `render_line`).
fn run_connect(addr: &str, opts: &Options) -> ! {
    // Everything that configures *local* evaluation is meaningless
    // against a server and is rejected instead of silently ignored.
    if opts.file.is_some()
        || opts.encoded.is_some()
        || opts.encode_to.is_some()
        || opts.variant.is_some()
        || opts.threads.is_some()
        || opts.warm
        || opts.explain
        // The cost budget has no wire field; only the deadline rides
        // the QUERY frame.
        || opts.max_touched.is_some()
    {
        usage();
    }
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("xq: {addr}: {e}");
        exit(EXIT_IO);
    });
    let query_opts = QueryOptions {
        engine: opts.engine_name.clone(),
        render: !opts.count_only,
        count_only: opts.count_only,
        deadline_ms: opts
            .timeout_ms
            .map(|ms| u32::try_from(ms).unwrap_or(u32::MAX)),
    };

    // Batch mode over the wire: one request per query-file line, one
    // connection, streamed printing. Load and parse failures follow the
    // partial-batch contract (see `staircase_server::mix`).
    if let Some(path) = &opts.query_file {
        let (lines, issues) = mix::read_query_lines(path).unwrap_or_else(|e| {
            eprintln!("xq: {path}: {e}");
            exit(EXIT_IO);
        });
        let mut failures = issues.len();
        for issue in &issues {
            eprintln!("xq: {path}:{}: {}", issue.lineno, issue.message);
        }
        for line in &lines {
            if !opts.count_only {
                println!("# {}", line.text);
            }
            let sent = client.query_streamed(&line.text, &query_opts, &mut |_| {}, &mut |text| {
                print!("{text}")
            });
            match sent {
                Ok((total, touched, batch)) => {
                    if opts.stats {
                        eprintln!("server: touched {touched}  batch {batch}");
                    }
                    if opts.count_only {
                        println!("{:>8}  {}", total, line.text);
                    }
                }
                Err(ClientError::Server { code, message }) if code == server_code::PARSE => {
                    eprintln!("xq: {path}:{}: {}: {message}", line.lineno, line.text);
                    failures += 1;
                }
                Err(other) => fail_client(&line.text, other),
            }
        }
        exit(if failures > 0 { EXIT_BATCH_PARTIAL } else { 0 });
    }

    let expr = opts.query.as_deref().unwrap_or_else(|| usage());
    let (total, touched, batch) = client
        .query_streamed(expr, &query_opts, &mut |_| {}, &mut |text| print!("{text}"))
        .unwrap_or_else(|e| fail_client("", e));
    if opts.stats {
        eprintln!("server: touched {touched}  batch {batch}");
    }
    if opts.count_only {
        println!("{total}");
    }
    exit(0);
}

fn main() {
    let opts = parse_args();

    if let Some(addr) = &opts.connect {
        run_connect(addr, &opts);
    }

    // Encoding mode.
    if let Some((src, dst)) = &opts.encode_to {
        let session = Session::open_xml(src).unwrap_or_else(|e| fail(src, e));
        let doc = session.doc();
        if let Err(e) = std::fs::write(dst, doc.to_bytes()) {
            fail(dst, e.into());
        }
        eprintln!(
            "encoded {} nodes (height {}) from {src} into {dst}",
            doc.len(),
            doc.height()
        );
        return;
    }

    if opts.query.is_none() && opts.query_file.is_none() {
        usage();
    }
    let engine = build_engine(&opts).unwrap_or_else(|e| fail("", e));

    // Document acquisition: pre-encoded plane, file, or stdin.
    let session = if let Some(path) = &opts.encoded {
        Session::open_encoded(path).unwrap_or_else(|e| fail(path, e))
    } else if let Some(path) = &opts.file {
        Session::open_xml(path).unwrap_or_else(|e| fail(path, e))
    } else {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            fail("stdin", e.into());
        }
        Session::parse_xml(&buf).unwrap_or_else(|e| fail("stdin", e))
    };
    // --threads sizes the worker pool for *every* engine; evaluation
    // fans out wherever the planner's cost hint allows.
    let session = match session_threads(&opts) {
        Some(n) => session.with_threads(n),
        None => session,
    };

    if opts.warm {
        session.warm();
    }

    // Batch mode: every expression in the query file, one shared pass.
    // Loading is buffered and per-line (`staircase_server::mix`, the
    // same loader the server's query-mix path uses): a line that fails
    // to load (bad UTF-8) or to parse is reported with its line number
    // and skipped rather than aborting the whole batch; the exit code
    // then distinguishes the partial batch from a clean run.
    if let Some(path) = &opts.query_file {
        let (lines, issues) = mix::read_query_lines(path).unwrap_or_else(|e| fail(path, e.into()));
        let mut parse_failures = issues.len();
        for issue in &issues {
            eprintln!("xq: {path}:{}: {}", issue.lineno, issue.message);
        }
        let mut queries = Vec::new();
        for line in &lines {
            match session.prepare(&line.text) {
                Ok(query) => queries.push(query),
                Err(err) => {
                    eprintln!("xq: {path}:{}: {}: {err}", line.lineno, line.text);
                    parse_failures += 1;
                }
            }
        }
        if opts.explain && !opts.stats {
            for query in &queries {
                println!("# {}", query.text());
                print_plan(&query.explain(engine));
            }
        } else if opts.explain {
            // Post-run explain: evaluate, then report planned vs
            // observed cost per executed step ([replan] marks adaptive
            // switches).
            let refs: Vec<&_> = queries.iter().collect();
            let outputs = session.run_many(&refs, engine);
            for (query, out) in queries.iter().zip(&outputs) {
                println!("# {}", query.text());
                print_report(out);
            }
        } else {
            let refs: Vec<&_> = queries.iter().collect();
            // A fresh budget per query: one tripped query never retires
            // its batch siblings.
            let budgets: Vec<_> = refs.iter().map(|_| build_budget(&opts)).collect();
            let outputs = session.run_many_governed(&refs, engine, &budgets);
            let mut tripped = 0;
            for (query, out) in queries.iter().zip(&outputs) {
                let out = match out {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("xq: {}: {e}", query.text());
                        tripped += 1;
                        continue;
                    }
                };
                if opts.stats {
                    print_stats(out);
                }
                if opts.count_only {
                    println!("{:>8}  {}", out.len(), query.text());
                } else {
                    println!("# {}", query.text());
                    for v in out {
                        println!("pre {:>8}  {}", v, render_node(session.doc(), v));
                    }
                }
            }
            if parse_failures == 0 && tripped > 0 {
                exit(EXIT_GOVERNED);
            }
        }
        if parse_failures > 0 {
            exit(EXIT_BATCH_PARTIAL);
        }
        return;
    }

    let query_text = opts.query.as_deref().unwrap_or_else(|| usage());
    let query = session.prepare(query_text).unwrap_or_else(|e| fail("", e));
    if opts.explain && !opts.stats {
        print_plan(&query.explain(engine));
        return;
    }
    let out = match build_budget(&opts) {
        Some(budget) => query
            .run_governed(engine, budget)
            .unwrap_or_else(|e| fail("", e)),
        None => query.run(engine),
    };
    if opts.explain {
        // Post-run explain: planned vs observed cost per executed step.
        print_report(&out);
        return;
    }

    if opts.stats {
        print_stats(&out);
    }
    if opts.count_only {
        println!("{}", out.len());
        return;
    }
    for v in &out {
        println!("pre {:>8}  {}", v, render_node(session.doc(), v));
    }
}

/// The physical plan, one line per step, closed by the plan-total cost
/// line (the number `Engine::auto` would have compared alternatives by).
fn print_plan(plan: &PhysicalPlan) {
    print!("{plan}");
    println!(
        "total {:<82} est cost {:>12.0}",
        "", // aligned under the per-step `op` column
        plan.estimated_cost()
    );
}

fn print_stats(out: &QueryOutput) {
    for s in &out.stats().steps {
        eprintln!(
            "step {:<40} result {:>8}  touched {:>10}  seeks {:>8}  duplicates {:>8}  \
             est cost {:>10.0}  obs cost {:>10.0}",
            s.step,
            s.result_size,
            s.nodes_touched,
            s.seeks,
            s.tuples_produced.saturating_sub(s.result_size as u64),
            s.est_cost,
            s.observed_cost()
        );
    }
}

/// The post-run report (`--explain --stats`): per executed step, the
/// operator that actually ran (`[replan]` marks mid-query switches by
/// the adaptive engine), the cost the plan carried for it, and the cost
/// observed while running it.
fn print_report(out: &QueryOutput) {
    for s in &out.stats().steps {
        println!(
            "step {:<36} op {:<44} est cost {:>12.0}  obs cost {:>12.0}",
            s.step,
            s.op,
            s.est_cost,
            s.observed_cost()
        );
    }
}
