//! Graceful-shutdown coordination: one shared flag, checked at every
//! blocking point.
//!
//! The sequence on trigger is: the acceptor stops accepting (its
//! nonblocking poll loop sees the flag within one tick), connection
//! threads answer queued replies and then close at their next read
//! tick, and the batcher drains every admitted query — nothing already
//! accepted is dropped — before its thread exits. New admissions after
//! the trigger are refused with a typed `SHUTTING_DOWN` error frame.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable shutdown flag shared by the acceptor, every connection
/// thread, and the batcher.
#[derive(Clone, Default)]
pub struct Shutdown {
    flag: Arc<AtomicBool>,
}

impl Shutdown {
    /// A fresh, untriggered flag.
    pub fn new() -> Shutdown {
        Shutdown::default()
    }

    /// Triggers shutdown. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once [`Shutdown::trigger`] has run.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for Shutdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shutdown")
            .field("triggered", &self.is_triggered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_is_visible_to_clones_and_idempotent() {
        let s = Shutdown::new();
        let c = s.clone();
        assert!(!c.is_triggered());
        s.trigger();
        s.trigger();
        assert!(c.is_triggered());
    }
}
