//! `staircase-serve` — the batching XPath query server.
//!
//! ```text
//! staircase-serve <DOC> [options]
//!
//! <DOC> is an XML file, or a pre-encoded plane with --encoded.
//!
//! options:
//!   --addr A           bind address (default 127.0.0.1:7878; port 0 = ephemeral)
//!   --threads N        session worker-pool width (default 1)
//!   --window-us W      admission window in µs (default 2000; 0 = pass-through)
//!   --max-batch B      largest admission batch (default 32)
//!   --queue-depth Q    admission queue bound before SERVER_BUSY (default 256)
//!   --read-timeout-ms  per-connection read deadline (default 30000)
//!   --exec-timeout-ms  server-side execution ceiling per query
//!                      (default 10000); a query still running when it
//!                      expires is stopped cooperatively and answered
//!                      with a TIMEOUT error frame, connection kept open
//!   --warm             build aux structures before accepting traffic
//!   --warm-tags a,b,c  pre-crack only the listed tag fragments (a
//!                      configured hot set); every other tag's fragment
//!                      stays unbuilt until a query first touches it
//! ```
//!
//! Prints `listening on <addr>` to stderr once ready, then serves until
//! a client sends a `SHUTDOWN` frame (graceful: stop accepting, drain
//! admitted batches, exit). Wire protocol: see the `staircase-server`
//! crate docs.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use staircase_server::{Server, ServerConfig};
use staircase_xpath::Session;

fn usage() -> ! {
    eprintln!(
        "usage: staircase-serve <DOC> [--encoded] [--addr A] [--threads N] [--window-us W]\n\
         \u{20}      [--max-batch B] [--queue-depth Q] [--read-timeout-ms T]\n\
         \u{20}      [--exec-timeout-ms T] [--warm] [--warm-tags a,b,c]"
    );
    exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    let mut doc_path: Option<String> = None;
    let mut encoded = false;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut threads = 1usize;
    let mut window_us = 2000u64;
    let mut warm = false;
    let mut warm_tags: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--encoded" => encoded = true,
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--threads" => {
                threads = parse_flag(&mut args);
                if threads == 0 {
                    usage();
                }
            }
            "--window-us" => window_us = parse_flag(&mut args),
            "--max-batch" => config.max_batch = parse_flag(&mut args),
            "--queue-depth" => config.queue_depth = parse_flag(&mut args),
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_flag(&mut args));
            }
            "--exec-timeout-ms" => {
                config.exec_timeout = Duration::from_millis(parse_flag(&mut args));
            }
            "--warm" => warm = true,
            "--warm-tags" => warm_tags = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if doc_path.is_none() && !other.starts_with('-') => {
                doc_path = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let Some(doc_path) = doc_path else { usage() };
    config.addr = addr;
    config.window = Duration::from_micros(window_us);

    let session = if encoded {
        Session::open_encoded(&doc_path)
    } else {
        Session::open_xml(&doc_path)
    };
    let session = match session {
        Ok(s) => s.with_threads(threads),
        Err(e) => {
            eprintln!("staircase-serve: {doc_path}: {e}");
            exit(1);
        }
    };
    if warm {
        session.warm();
    }
    if let Some(list) = &warm_tags {
        // Partial warm-up: pre-crack only the configured hot set; cold
        // tags stay unbuilt until a query first touches them.
        let names: Vec<&str> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        session.warm_tags(&names);
    }
    eprintln!(
        "loaded {} nodes (height {}), pool width {threads}, window {window_us} µs, \
         max batch {}, queue depth {}",
        session.doc().len(),
        session.doc().height(),
        config.max_batch,
        config.queue_depth,
    );

    let handle = match Server::start(Arc::new(session), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("staircase-serve: bind failed: {e}");
            exit(1);
        }
    };
    eprintln!("listening on {}", handle.local_addr());
    handle.join();
    eprintln!("staircase-serve: shut down cleanly");
}
