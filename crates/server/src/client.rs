//! A blocking client for the frame protocol — what `xq --connect` and
//! `staircase-loadgen` speak.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use staircase_accel::Pre;

use crate::protocol::{
    self, code, flags, frame, parse_done_payload, parse_error_payload, parse_ids_payload,
    query_payload_deadline, write_frame, FrameError,
};

/// How a query should be asked for and answered.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Wire engine name (see [`protocol::engine_by_name`]).
    pub engine: String,
    /// Ask for rendered result lines instead of raw pre ranks.
    pub render: bool,
    /// Ask for no result chunks at all — only the `DONE` totals.
    pub count_only: bool,
    /// Per-query execution deadline in milliseconds; the server answers
    /// a `TIMEOUT` error frame (connection kept open) if the query is
    /// still running when it expires. `None` leaves only the server's
    /// own execution ceiling.
    pub deadline_ms: Option<u32>,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            engine: "staircase".to_string(),
            render: false,
            count_only: false,
            deadline_ms: None,
        }
    }
}

/// A collected query answer.
#[derive(Debug, Clone, Default)]
pub struct QueryReply {
    /// Result pre ranks (empty under `render`/`count_only`).
    pub ids: Vec<Pre>,
    /// Rendered result lines (empty unless `render`).
    pub rendered: Vec<String>,
    /// Result cardinality, from the terminal frame.
    pub total: u32,
    /// Nodes the evaluation touched.
    pub touched: u64,
    /// Size of the admission batch this query shared a pass with
    /// (1 = it ran alone).
    pub batch_size: u32,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server broke the protocol (or exceeded the frame limit).
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// One of the [`code`] constants.
        code: u8,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code: c, message } => {
                write!(f, "server error ({}): {message}", code_name(*c))
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            oversized => ClientError::Protocol(oversized.to_string()),
        }
    }
}

/// The human name of a wire error code.
pub fn code_name(c: u8) -> &'static str {
    match c {
        code::PARSE => "PARSE",
        code::BUSY => "SERVER_BUSY",
        code::MALFORMED => "MALFORMED",
        code::OVERSIZED => "OVERSIZED",
        code::SHUTTING_DOWN => "SHUTTING_DOWN",
        code::INTERNAL => "INTERNAL",
        code::TIMEOUT => "TIMEOUT",
        code::ENGINE => "ENGINE",
        code::RESOURCE => "RESOURCE",
        code::CANCELLED => "CANCELLED",
        _ => "UNKNOWN",
    }
}

/// One connection to a running server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects (blocking) to a server.
    ///
    /// # Errors
    ///
    /// The underlying connect failing.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            // Generous: response frames are bounded by the server's
            // chunking, not by its request limit.
            max_frame: 64 << 20,
        })
    }

    /// Sends one query and collects the whole streamed answer.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed error frames (parse errors,
    /// `SERVER_BUSY`, …), [`ClientError::Io`]/[`ClientError::Protocol`]
    /// for transport trouble.
    pub fn query(&mut self, expr: &str, opts: &QueryOptions) -> Result<QueryReply, ClientError> {
        let mut reply = QueryReply::default();
        let (total, touched, batch_size) = self.query_streamed(
            expr,
            opts,
            &mut |ids| reply.ids.extend_from_slice(ids),
            &mut |text| {
                reply.rendered.extend(text.lines().map(|l| l.to_string()));
            },
        )?;
        reply.total = total;
        reply.touched = touched;
        reply.batch_size = batch_size;
        Ok(reply)
    }

    /// Sends one query and hands each chunk to a callback as it
    /// arrives — the streaming form ([`Client::query`] is this plus
    /// collection). Returns the terminal `(total, touched,
    /// batch_size)`.
    ///
    /// # Errors
    ///
    /// As for [`Client::query`].
    pub fn query_streamed(
        &mut self,
        expr: &str,
        opts: &QueryOptions,
        on_ids: &mut dyn FnMut(&[Pre]),
        on_text: &mut dyn FnMut(&str),
    ) -> Result<(u32, u64, u32), ClientError> {
        let mut request_flags = 0u8;
        if opts.render {
            request_flags |= flags::RENDER;
        }
        if opts.count_only {
            request_flags |= flags::COUNT_ONLY;
        }
        write_frame(
            &mut self.stream,
            frame::QUERY,
            &query_payload_deadline(request_flags, opts.deadline_ms, &opts.engine, expr),
        )?;
        self.read_response(on_ids, on_text)
    }

    /// Asks the server to cancel the query currently in flight on this
    /// connection. Fire-and-forget: the *query's* response (a
    /// `CANCELLED` error frame if the cancel won the race, the normal
    /// answer if it lost) is still read by whoever sent the query —
    /// typically a second thread sharing this connection via
    /// [`Client::try_clone`].
    ///
    /// # Errors
    ///
    /// The write failing.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, frame::CANCEL, &[])?;
        Ok(())
    }

    /// Clones the underlying stream so one thread can [`Client::cancel`]
    /// while another is blocked reading a query's answer.
    ///
    /// # Errors
    ///
    /// The OS-level duplication failing.
    pub fn try_clone(&self) -> io::Result<Client> {
        Ok(Client {
            stream: self.stream.try_clone()?,
            max_frame: self.max_frame,
        })
    }

    /// Asks for the server's metrics: `key value` lines.
    ///
    /// # Errors
    ///
    /// As for [`Client::query`].
    pub fn server_stats(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.stream, frame::STATS, &[])?;
        let mut text = String::new();
        self.read_response(&mut |_| {}, &mut |t| text.push_str(t))?;
        Ok(text)
    }

    /// Asks the server to shut down gracefully; returns once the
    /// server has acknowledged.
    ///
    /// # Errors
    ///
    /// As for [`Client::query`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, frame::SHUTDOWN, &[])?;
        self.read_response(&mut |_| {}, &mut |_| {})?;
        Ok(())
    }

    /// Reads chunk frames until the terminal `DONE` or `ERROR`.
    fn read_response(
        &mut self,
        on_ids: &mut dyn FnMut(&[Pre]),
        on_text: &mut dyn FnMut(&str),
    ) -> Result<(u32, u64, u32), ClientError> {
        loop {
            let f = protocol::read_frame(&mut self.stream, self.max_frame)?
                .ok_or_else(|| ClientError::Protocol("server closed mid-response".into()))?;
            match f.ty {
                frame::CHUNK => {
                    let ids = parse_ids_payload(&f.payload).map_err(ClientError::Protocol)?;
                    on_ids(&ids);
                }
                frame::RCHUNK => {
                    let text = std::str::from_utf8(&f.payload)
                        .map_err(|_| ClientError::Protocol("rendered chunk is not UTF-8".into()))?;
                    on_text(text);
                }
                frame::DONE => {
                    return parse_done_payload(&f.payload).map_err(ClientError::Protocol);
                }
                frame::ERROR => {
                    let (c, message) =
                        parse_error_payload(&f.payload).map_err(ClientError::Protocol)?;
                    return Err(ClientError::Server {
                        code: c,
                        message: message.to_string(),
                    });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response frame type 0x{other:02x}"
                    )));
                }
            }
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
