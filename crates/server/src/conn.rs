//! Per-connection protocol loop: read a frame, answer it, survive what
//! can be survived.
//!
//! Each accepted connection gets one thread running [`serve`]. Reads
//! are chunked into short OS-level ticks so the loop can observe both
//! the per-connection read deadline (idle *or* dribbling-a-partial-
//! frame connections are closed with a typed `TIMEOUT` error) and the
//! server's shutdown flag without any async machinery. Request errors
//! are answered with typed error frames; only errors that lose the
//! frame boundary (or the peer) close the connection.
//!
//! Every admitted query carries a governor `Budget` whose deadline is
//! the smaller of the client's optional per-query deadline and the
//! server's execution timeout. While the query is in flight the
//! connection thread keeps listening in short ticks: a `CANCEL` frame
//! (or the peer hanging up) flips the budget's cancel flag and the
//! executor stops the query cooperatively; any other frame that
//! arrives early is stashed and served after the in-flight answer.
//! Governed failures — deadline, budget, cancel, or an isolated
//! internal panic — answer typed `ERROR` frames and the connection
//! stays open.

use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use staircase_xpath::{parse_union, Budget, Error, Session};

use crate::batcher::{Batcher, Pending, SubmitError};
use crate::metrics::Metrics;
use crate::protocol::{
    code, done_payload, error_payload, flags, frame, ids_payload, parse_query_payload, render_line,
    write_frame, Frame, HEADER_LEN,
};
use crate::shutdown::Shutdown;
use crate::ServerConfig;

/// Source of per-connection ids (the batcher's fairness key).
static CONN_IDS: AtomicU64 = AtomicU64::new(1);

/// How often a blocked read wakes to check the deadline and the
/// shutdown flag.
const TICK: Duration = Duration::from_millis(50);

/// Rendered chunks are flushed at this payload size.
const RENDER_CHUNK_BYTES: usize = 32 * 1024;

/// Everything a connection thread needs, shared by all of them.
pub(crate) struct ConnShared {
    pub session: Arc<Session>,
    pub batcher: Arc<Batcher>,
    pub metrics: Arc<Metrics>,
    pub shutdown: Shutdown,
    pub config: ServerConfig,
}

/// What one deadline-bounded frame read produced.
enum ReadOutcome {
    Frame(Frame),
    /// The peer closed between frames.
    CleanEof,
    /// Nothing (or not everything) arrived before the deadline.
    TimedOut,
    /// The announced length exceeds the frame limit.
    Oversized(u32),
    /// The server is shutting down and this connection is idle.
    Shutdown,
    /// The stream failed.
    Dead,
}

/// Reads exactly `buf.len()` bytes, waking every [`TICK`] to check the
/// deadline and the shutdown flag. `allow_eof` treats an EOF before the
/// first byte as a clean close (frame boundary); an EOF mid-buffer is
/// always `Dead`.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    shutdown: &Shutdown,
    allow_eof: bool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && allow_eof {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Dead
                }
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Only an idle connection yields to shutdown; once a
                // frame is in flight we keep reading it (its query
                // deserves an answer) until the deadline says otherwise.
                if shutdown.is_triggered() && filled == 0 && allow_eof {
                    return ReadOutcome::Shutdown;
                }
                if Instant::now() >= deadline {
                    return ReadOutcome::TimedOut;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Dead,
        }
    }
    ReadOutcome::Frame(Frame {
        ty: 0,
        payload: Vec::new(),
    })
}

/// Reads one whole frame under the connection's read deadline.
fn read_frame_deadline(
    stream: &mut TcpStream,
    max_frame: usize,
    deadline: Instant,
    shutdown: &Shutdown,
) -> ReadOutcome {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_deadline(stream, &mut header, deadline, shutdown, true) {
        ReadOutcome::Frame(_) => {}
        other => return other,
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    if len as usize > max_frame {
        return ReadOutcome::Oversized(len);
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_deadline(stream, &mut payload, deadline, shutdown, false) {
        ReadOutcome::Frame(_) => ReadOutcome::Frame(Frame {
            ty: header[4],
            payload,
        }),
        other => other,
    }
}

/// Best-effort error frame; a failed write just means the peer is gone.
fn send_error(stream: &mut TcpStream, error_code: u8, message: &str) -> std::io::Result<()> {
    write_frame(stream, frame::ERROR, &error_payload(error_code, message))
}

/// The connection thread's body.
pub(crate) fn serve(mut stream: TcpStream, shared: &ConnShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    let client_id = CONN_IDS.fetch_add(1, Ordering::Relaxed);
    // A frame that arrived while a query was in flight, served next.
    let mut stashed: Option<Frame> = None;
    loop {
        staircase_xpath::faults::fail_point("server::conn::frame");
        let request = match stashed.take() {
            Some(f) => f,
            None => {
                let deadline = Instant::now() + shared.config.read_timeout;
                let outcome = read_frame_deadline(
                    &mut stream,
                    shared.config.max_frame,
                    deadline,
                    &shared.shutdown,
                );
                match outcome {
                    ReadOutcome::Frame(f) => f,
                    ReadOutcome::CleanEof | ReadOutcome::Shutdown | ReadOutcome::Dead => return,
                    ReadOutcome::TimedOut => {
                        shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                        let _ = send_error(&mut stream, code::TIMEOUT, "read timed out");
                        return;
                    }
                    ReadOutcome::Oversized(len) => {
                        shared
                            .metrics
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = send_error(
                            &mut stream,
                            code::OVERSIZED,
                            &format!(
                                "frame of {len} bytes exceeds the {}-byte limit",
                                shared.config.max_frame
                            ),
                        );
                        return;
                    }
                }
            }
        };
        let keep_going = match request.ty {
            frame::QUERY => {
                let (ok, leftover) = answer_query(&mut stream, shared, &request.payload, client_id);
                stashed = leftover;
                ok
            }
            // A CANCEL with nothing in flight lost the race against the
            // answer (or was speculative); it is deliberately a no-op.
            frame::CANCEL => true,
            frame::STATS => answer_stats(&mut stream, shared),
            frame::SHUTDOWN => {
                let ok = write_frame(&mut stream, frame::DONE, &done_payload(0, 0, 0)).is_ok();
                shared.shutdown.trigger();
                shared.batcher.wake_all();
                ok
            }
            other => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send_error(
                    &mut stream,
                    code::MALFORMED,
                    &format!("unknown frame type 0x{other:02x}"),
                )
                .is_ok()
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Handles one `QUERY` frame end to end. The first return value is
/// `false` when the connection must close (only I/O failures and a
/// lost batcher); the second carries a non-`CANCEL` frame that arrived
/// while the query was in flight, to be served next.
fn answer_query(
    stream: &mut TcpStream,
    shared: &ConnShared,
    payload: &[u8],
    client_id: u64,
) -> (bool, Option<Frame>) {
    let (request_flags, deadline_ms, engine_name, expr) = match parse_query_payload(payload) {
        Ok(parts) => parts,
        Err(message) => {
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return (send_error(stream, code::MALFORMED, &message).is_ok(), None);
        }
    };
    let engine = match crate::protocol::engine_by_name(engine_name) {
        Some(engine) => engine,
        None => {
            shared
                .metrics
                .rejected_requests
                .fetch_add(1, Ordering::Relaxed);
            let ok = send_error(
                stream,
                code::ENGINE,
                &format!("unknown engine {engine_name:?}"),
            )
            .is_ok();
            return (ok, None);
        }
    };
    // Parse-check here so a bad expression is answered without a
    // batcher round trip (and without holding a batch slot).
    if let Err(e) = parse_union(expr) {
        shared
            .metrics
            .rejected_requests
            .fetch_add(1, Ordering::Relaxed);
        return (
            send_error(stream, code::PARSE, &e.to_string()).is_ok(),
            None,
        );
    }
    // The governed deadline is the tighter of the client's ask and the
    // server's own execution ceiling.
    let mut exec_deadline = shared.config.exec_timeout;
    if let Some(ms) = deadline_ms {
        exec_deadline = exec_deadline.min(Duration::from_millis(u64::from(ms)));
    }
    let budget = Arc::new(Budget::new().with_deadline_in(exec_deadline));
    let (reply_tx, reply_rx) = channel();
    let submitted = shared.batcher.submit(Pending {
        expr: expr.to_string(),
        engine,
        reply: reply_tx,
        at: Instant::now(),
        budget: Arc::clone(&budget),
        client: client_id,
    });
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Busy) => {
            return (
                send_error(stream, code::BUSY, "admission queue is full").is_ok(),
                None,
            );
        }
        Err(SubmitError::ShuttingDown) => {
            return (
                send_error(stream, code::SHUTTING_DOWN, "server is shutting down").is_ok(),
                None,
            );
        }
    }
    // Wait for the reply while still listening to the socket in short
    // ticks, so a CANCEL frame (or the peer hanging up) can flip the
    // budget's cancel flag mid-query.
    let mut stashed: Option<Frame> = None;
    let mut client_gone = false;
    let reply = loop {
        match reply_rx.try_recv() {
            Ok(reply) => break reply,
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                // The batcher always answers admitted queries (it
                // drains the queue even on shutdown); a dropped sender
                // means it died.
                let _ = send_error(stream, code::INTERNAL, "query engine is gone");
                return (false, None);
            }
        }
        if client_gone || stashed.is_some() {
            // Nothing useful to read until the reply lands; don't spin.
            std::thread::sleep(TICK);
            continue;
        }
        let tick_deadline = Instant::now() + TICK;
        match read_frame_deadline(
            stream,
            shared.config.max_frame,
            tick_deadline,
            &shared.shutdown,
        ) {
            ReadOutcome::Frame(f) if f.ty == frame::CANCEL => budget.cancel(),
            ReadOutcome::Frame(f) => stashed = Some(f),
            ReadOutcome::TimedOut => {}
            ReadOutcome::Shutdown => std::thread::sleep(TICK),
            ReadOutcome::CleanEof | ReadOutcome::Dead => {
                // The peer hung up mid-query: stop paying for the
                // answer, but let the in-flight slot resolve cleanly.
                budget.cancel();
                client_gone = true;
            }
            ReadOutcome::Oversized(_) => {
                budget.cancel();
                client_gone = true;
            }
        }
    };
    if client_gone {
        // The reply has resolved; there is no one to write it to.
        shared
            .metrics
            .cancelled_queries
            .fetch_add(1, Ordering::Relaxed);
        return (false, None);
    }
    let (output, batch_size) = match reply {
        Ok(answer) => answer,
        Err(e) => {
            // Governed failures answer a typed error and keep the
            // connection (and its stashed frame) alive.
            let (error_code, counter) = match &e {
                Error::DeadlineExceeded => (code::TIMEOUT, &shared.metrics.exec_timeouts),
                Error::BudgetExhausted => (code::RESOURCE, &shared.metrics.resource_exhausted),
                Error::Cancelled => (code::CANCELLED, &shared.metrics.cancelled_queries),
                Error::Internal(_) => (code::INTERNAL, &shared.metrics.internal_errors),
                _ => (code::PARSE, &shared.metrics.rejected_requests),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            return (
                send_error(stream, error_code, &e.to_string()).is_ok(),
                stashed,
            );
        }
    };
    shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
    (
        stream_output(stream, shared, request_flags, &output, batch_size).is_ok(),
        stashed,
    )
}

/// Streams one query's answer: chunks, then the terminal `DONE`.
fn stream_output(
    stream: &mut TcpStream,
    shared: &ConnShared,
    request_flags: u8,
    output: &staircase_xpath::QueryOutput,
    batch_size: usize,
) -> std::io::Result<()> {
    if request_flags & flags::COUNT_ONLY == 0 {
        if request_flags & flags::RENDER != 0 {
            let doc = shared.session.doc();
            let mut text = String::new();
            for v in output.iter() {
                text.push_str(&render_line(doc, v));
                text.push('\n');
                if text.len() >= RENDER_CHUNK_BYTES {
                    write_frame(stream, frame::RCHUNK, text.as_bytes())?;
                    text.clear();
                }
            }
            if !text.is_empty() {
                write_frame(stream, frame::RCHUNK, text.as_bytes())?;
            }
        } else {
            let ids = output.nodes().as_slice();
            for chunk in ids.chunks(shared.config.chunk_ids.max(1)) {
                write_frame(stream, frame::CHUNK, &ids_payload(chunk))?;
            }
        }
    }
    write_frame(
        stream,
        frame::DONE,
        &done_payload(
            output.len() as u32,
            output.stats().total_touched(),
            batch_size as u32,
        ),
    )
}

/// Answers a `STATS` frame: one rendered-text chunk of `key value`
/// metric lines, then `DONE`.
fn answer_stats(stream: &mut TcpStream, shared: &ConnShared) -> bool {
    let text = shared.metrics.render();
    write_frame(stream, frame::RCHUNK, text.as_bytes())
        .and_then(|()| write_frame(stream, frame::DONE, &done_payload(0, 0, 0)))
        .is_ok()
}
