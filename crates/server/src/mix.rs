//! Query-file ("query mix") loading, shared by `xq --query-file`,
//! `xq --connect --query-file`, and `staircase-loadgen --mix` — one
//! line-numbered error-reporting path instead of three.
//!
//! The format: one XPath expression per line; blank lines and lines
//! starting with `#` are ignored. Reading is **buffered and
//! per-line**: a line that is not valid UTF-8 is reported with its
//! line number as a [`LineIssue`] and skipped, and every other line
//! still loads — the whole file is never rejected for one bad byte
//! (the old `read_to_string` path did exactly that).
//!
//! ## `EXIT_BATCH_PARTIAL` semantics (normative)
//!
//! This is the single place the partial-batch contract is defined;
//! `xq` and the server-side loaders follow it:
//!
//! * A file that cannot be opened or read at all is an I/O error —
//!   nothing runs (`xq` exits `4`).
//! * A line that fails to load (bad UTF-8) or fails to parse as XPath
//!   is reported to stderr with `file:line` and **skipped**; the
//!   remaining queries still run.
//! * If anything was skipped, the run is a *partial batch*: `xq` exits
//!   `5` (`EXIT_BATCH_PARTIAL`) instead of `0`, so scripts can tell a
//!   partial batch from a clean one even though results were produced.

use std::io::{BufRead, BufReader};
use std::path::Path;

/// A loadable query line: its 1-based line number and its trimmed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLine {
    /// 1-based line number in the file (comments and blanks count, so
    /// reported numbers match editors).
    pub lineno: usize,
    /// The trimmed expression text.
    pub text: String,
}

/// A line that could not be loaded (distinct from one that loads but
/// fails to parse as XPath — parsing is the caller's business).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineIssue {
    /// 1-based line number.
    pub lineno: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for LineIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.lineno, self.message)
    }
}

/// Reads a query file buffered, line by line. Returns the loadable
/// query lines plus per-line issues for the lines that were not
/// (currently: invalid UTF-8).
///
/// # Errors
///
/// Only file-level I/O failures (open failing, the underlying reader
/// erroring); per-line defects are returned as issues, not errors.
pub fn read_query_lines(
    path: impl AsRef<Path>,
) -> std::io::Result<(Vec<QueryLine>, Vec<LineIssue>)> {
    read_query_lines_from(std::fs::File::open(path)?)
}

/// [`read_query_lines`] over any reader (how the tests feed it bad
/// bytes without a filesystem).
///
/// # Errors
///
/// Reader-level I/O failures only.
pub fn read_query_lines_from(
    reader: impl std::io::Read,
) -> std::io::Result<(Vec<QueryLine>, Vec<LineIssue>)> {
    let mut reader = BufReader::new(reader);
    let mut lines = Vec::new();
    let mut issues = Vec::new();
    let mut raw = Vec::new();
    let mut lineno = 0usize;
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        if raw.last() == Some(&b'\n') {
            raw.pop();
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
        }
        let text = match std::str::from_utf8(&raw) {
            Ok(text) => text.trim(),
            Err(_) => {
                issues.push(LineIssue {
                    lineno,
                    message: "line is not valid UTF-8".to_string(),
                });
                continue;
            }
        };
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        lines.push(QueryLine {
            lineno,
            text: text.to_string(),
        });
    }
    Ok((lines, issues))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_blanks_and_numbering() {
        let (lines, issues) = read_query_lines_from("# mix\n//a\n\n  //b  \n".as_bytes()).unwrap();
        assert!(issues.is_empty());
        assert_eq!(
            lines,
            vec![
                QueryLine {
                    lineno: 2,
                    text: "//a".into()
                },
                QueryLine {
                    lineno: 4,
                    text: "//b".into()
                },
            ]
        );
    }

    #[test]
    fn a_bad_utf8_line_is_an_issue_not_a_file_error() {
        let bytes: &[u8] = b"//a\n\xFF\xFE\n//b\n";
        let (lines, issues) = read_query_lines_from(bytes).unwrap();
        assert_eq!(lines.len(), 2, "the good lines around the bad one load");
        assert_eq!(lines[1].lineno, 3);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].lineno, 2);
        assert!(issues[0].message.contains("UTF-8"));
    }

    #[test]
    fn crlf_files_load_cleanly() {
        let (lines, issues) = read_query_lines_from("//a\r\n//b\r\n".as_bytes()).unwrap();
        assert!(issues.is_empty());
        assert_eq!(lines[0].text, "//a");
        assert_eq!(lines[1].text, "//b");
    }

    #[test]
    fn missing_files_are_io_errors() {
        assert!(read_query_lines("/definitely/not/here.txt").is_err());
    }
}
