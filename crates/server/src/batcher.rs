//! The admission-window batcher: the piece that turns concurrent
//! independent clients into `Session::run_many` batches.
//!
//! Connection threads `submit` parse-checked requests into a
//! **bounded** admission queue; one batcher thread (`run`) drains it
//! in rounds. A round begins when the queue becomes
//! non-empty, waits until either the admission window (measured from
//! the round's *first* enqueue) expires or `max_batch` queries have
//! accumulated, then drains up to `max_batch` of them and executes each
//! engine's group as **one** `Session::run_many` call — the shared-scan
//! pass the lane executor was built for. The window deliberately trades
//! a bounded few milliseconds of latency for that throughput multiple;
//! `window = 0` disables batching outright — every query runs as its
//! own single-lane pass, even under backlog — which is the load
//! generator's baseline mode.
//!
//! Backpressure is the queue bound: while `queue_depth` queries are
//! already admitted (they stay queued until drained, so in-window
//! requests count), further submissions fail fast with
//! [`SubmitError::Busy`] and the connection answers a typed
//! `SERVER_BUSY` frame instead of queueing without bound. On shutdown
//! the batcher refuses new work ([`SubmitError::ShuttingDown`]) but
//! drains everything already admitted — an accepted query is always
//! answered.
//!
//! Two per-query refinements on top of the round discipline:
//!
//! * **Deadline-aware admission**: every pending query carries its
//!   governor [`Budget`]; one whose deadline expired (or that was
//!   cancelled) while it sat in the queue is answered with the typed
//!   error at drain time and never takes a batch slot.
//! * **Per-client fairness**: when a drain has to leave work queued
//!   (more than `max_batch` pending), the batch is filled round-robin
//!   across the submitting connections rather than strictly FIFO, so
//!   one client flooding the queue cannot starve the others — each
//!   client's own queries still run in its submission order.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use staircase_xpath::{faults, Budget, Engine, Error, Query, QueryOutput, Session, Trip};

use crate::metrics::Metrics;
use crate::shutdown::Shutdown;

/// One admitted query, waiting for its round.
pub(crate) struct Pending {
    /// The expression text (parse-checked by the connection thread, so
    /// re-preparing in the batcher cannot fail in the normal course).
    pub expr: String,
    /// The engine its group will run on.
    pub engine: Engine,
    /// Where the connection thread waits for the answer.
    pub reply: Sender<Reply>,
    /// Enqueue time: the admission window is measured from the round's
    /// oldest entry.
    pub at: Instant,
    /// The query's governor budget — deadline, cost ceiling,
    /// cancellation — shared with the connection thread (which flips
    /// the cancel flag on a `CANCEL` frame or hangup).
    pub budget: Arc<Budget>,
    /// The submitting connection's id, for the fair drain.
    pub client: u64,
}

/// Maps a budget trip to the typed query-path error.
pub(crate) fn trip_to_error(trip: Trip) -> Error {
    match trip {
        Trip::Deadline => Error::DeadlineExceeded,
        Trip::Cost => Error::BudgetExhausted,
        Trip::Cancelled => Error::Cancelled,
    }
}

/// What a connection gets back: the output plus the size of the shared
/// pass it rode in, or the (parse) error that kept it out of one.
pub(crate) type Reply = Result<(QueryOutput, usize), Error>;

/// One engine's slice of a drained batch: the prepared queries, reply
/// channels, and budgets riding the same shared pass.
type EngineGroup<'s> = (Engine, Vec<(Query<'s>, Sender<Reply>, Arc<Budget>)>);

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at `queue_depth` — backpressure.
    Busy,
    /// The server is draining for shutdown.
    ShuttingDown,
}

/// The bounded admission queue plus the window/batch policy.
pub(crate) struct Batcher {
    queue: Mutex<VecDeque<Pending>>,
    wake: Condvar,
    depth: usize,
    window: Duration,
    max_batch: usize,
    shutdown: Shutdown,
    metrics: Arc<Metrics>,
}

impl Batcher {
    pub(crate) fn new(
        depth: usize,
        window: Duration,
        max_batch: usize,
        shutdown: Shutdown,
        metrics: Arc<Metrics>,
    ) -> Batcher {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            depth: depth.max(1),
            window,
            max_batch: max_batch.max(1),
            shutdown,
            metrics,
        }
    }

    /// Admits one query, or refuses it fast.
    pub(crate) fn submit(&self, pending: Pending) -> Result<(), SubmitError> {
        if self.shutdown.is_triggered() {
            return Err(SubmitError::ShuttingDown);
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.depth {
            self.metrics
                .busy_rejections
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(SubmitError::Busy);
        }
        q.push_back(pending);
        drop(q);
        self.wake.notify_all();
        Ok(())
    }

    /// Wakes the batcher thread (used by shutdown, which otherwise
    /// could leave it parked on an empty queue).
    pub(crate) fn wake_all(&self) {
        self.wake.notify_all();
    }

    /// The batcher thread's body: rounds of wait → drain → execute,
    /// until shutdown finds the queue empty.
    pub(crate) fn run(&self, session: &Session) {
        loop {
            let batch = match self.next_batch() {
                Some(batch) => batch,
                None => return,
            };
            self.execute(session, batch);
        }
    }

    /// Blocks for the next round's batch; `None` means shutdown with an
    /// empty queue — time to exit.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if q.is_empty() {
                if self.shutdown.is_triggered() {
                    return None;
                }
                q = self.wake.wait(q).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // A round is open. Hold the admission window — unless it is
            // already full, the window is zero, or shutdown wants the
            // queue drained now. Measured from the *oldest* entry (the
            // fair drain can reorder the deque, so the front is not
            // necessarily the oldest).
            if !self.shutdown.is_triggered() && q.len() < self.max_batch {
                let oldest = q.iter().map(|p| p.at).min().expect("non-empty");
                let deadline = oldest + self.window;
                let now = Instant::now();
                if now < deadline {
                    let (guard, _) = self
                        .wake
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    continue;
                }
            }
            // A zero window disables batching outright: one query per
            // pass, even under backlog. Without this, a saturated
            // queue would still drain as shared passes and the
            // "no batching" baseline would quietly batch anyway.
            let take = if self.window.is_zero() {
                1
            } else {
                q.len().min(self.max_batch)
            };
            return Some(drain_fair(&mut q, take));
        }
    }

    /// Executes one drained batch: group by engine, one governed
    /// `Session::run_many_governed` shared pass per group, replies in
    /// admission order within each group. Queries whose budget already
    /// tripped in the queue (expired deadline, cancel) are answered
    /// immediately and never take a batch slot.
    fn execute(&self, session: &Session, batch: Vec<Pending>) {
        // Prepare everything first; parse failures (impossible for
        // connection-checked submissions, but `submit` is also a
        // library entry point) answer immediately and drop out of the
        // groups.
        let mut groups: Vec<EngineGroup<'_>> = Vec::new();
        for pending in batch {
            let Pending {
                expr,
                engine,
                reply,
                budget,
                ..
            } = pending;
            // Deadline-aware admission: dead-on-arrival queries are
            // answered with the typed error, not executed.
            if let Some(trip) = budget.check() {
                let _ = reply.send(Err(trip_to_error(trip)));
                continue;
            }
            match session.prepare(&expr) {
                Ok(query) => match groups.iter_mut().find(|(e, _)| *e == engine) {
                    Some((_, lanes)) => lanes.push((query, reply, budget)),
                    None => groups.push((engine, vec![(query, reply, budget)])),
                },
                Err(err) => {
                    // The connection may have hung up mid-wait; a dead
                    // receiver is not the batcher's problem.
                    let _ = reply.send(Err(err));
                }
            }
        }
        for (engine, lanes) in groups {
            let size = lanes.len();
            // The governed run isolates lane panics per query; this
            // catch covers the batcher's own surroundings (and the
            // `server::execute` fail point), so one poisoned pass
            // cannot take the batcher thread — and the server — down.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                faults::fail_point("server::execute");
                let refs: Vec<&Query<'_>> = lanes.iter().map(|(q, _, _)| q).collect();
                let budgets: Vec<Option<Arc<Budget>>> =
                    lanes.iter().map(|(_, _, b)| Some(Arc::clone(b))).collect();
                session.run_many_governed(&refs, engine, &budgets)
            }));
            self.metrics.record_batch(size);
            match outcome {
                Ok(outputs) => {
                    for ((_, reply, _), output) in lanes.into_iter().zip(outputs) {
                        let _ = reply.send(output.map(|o| (o, size)));
                    }
                }
                Err(_) => {
                    for (_, reply, _) in lanes {
                        let _ = reply
                            .send(Err(Error::Internal("batch execution panicked".to_string())));
                    }
                }
            }
        }
    }
}

/// Drains up to `take` entries, round-robin across client ids when the
/// queue holds more than `take` — so one flooding client cannot starve
/// the rest of a saturated round. Each client's own FIFO order is
/// preserved, both in the batch and among the entries left behind.
fn drain_fair(q: &mut VecDeque<Pending>, take: usize) -> Vec<Pending> {
    if q.len() <= take {
        return q.drain(..).collect();
    }
    // Bucket by client in first-appearance order.
    let mut ids: Vec<u64> = Vec::new();
    let mut buckets: Vec<VecDeque<Pending>> = Vec::new();
    for p in q.drain(..) {
        match ids.iter().position(|&c| c == p.client) {
            Some(i) => buckets[i].push_back(p),
            None => {
                ids.push(p.client);
                buckets.push(VecDeque::from([p]));
            }
        }
    }
    let mut batch = Vec::with_capacity(take);
    while batch.len() < take {
        for b in buckets.iter_mut() {
            if batch.len() >= take {
                break;
            }
            if let Some(p) = b.pop_front() {
                batch.push(p);
            }
        }
    }
    for b in buckets.iter_mut() {
        q.extend(b.drain(..));
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn batcher(depth: usize, window: Duration, max_batch: usize) -> (Arc<Batcher>, Shutdown) {
        let shutdown = Shutdown::new();
        let b = Arc::new(Batcher::new(
            depth,
            window,
            max_batch,
            shutdown.clone(),
            Arc::new(Metrics::default()),
        ));
        (b, shutdown)
    }

    fn pending(expr: &str) -> (Pending, std::sync::mpsc::Receiver<Reply>) {
        pending_for(expr, 0)
    }

    fn pending_for(expr: &str, client: u64) -> (Pending, std::sync::mpsc::Receiver<Reply>) {
        let (tx, rx) = channel();
        (
            Pending {
                expr: expr.to_string(),
                engine: Engine::default(),
                reply: tx,
                at: Instant::now(),
                budget: Arc::new(Budget::new()),
                client,
            },
            rx,
        )
    }

    #[test]
    fn queue_depth_is_backpressure() {
        let (b, _shutdown) = batcher(2, Duration::from_secs(60), 64);
        let (p1, _rx1) = pending("//a");
        let (p2, _rx2) = pending("//b");
        let (p3, _rx3) = pending("//c");
        assert!(b.submit(p1).is_ok());
        assert!(b.submit(p2).is_ok());
        assert_eq!(b.submit(p3), Err(SubmitError::Busy));
        assert_eq!(
            b.metrics
                .busy_rejections
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_admitted_work() {
        let session = Session::parse_xml("<a><b/><b/></a>").expect("fixture");
        let (b, shutdown) = batcher(8, Duration::from_secs(60), 64);
        let (p1, rx1) = pending("//b");
        b.submit(p1).unwrap();
        shutdown.trigger();
        let (p2, _rx2) = pending("//b");
        assert_eq!(b.submit(p2), Err(SubmitError::ShuttingDown));
        // The admitted query is still answered — the huge window is
        // skipped once shutdown is triggered — and run() returns.
        let runner = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                b.run(&session);
            })
        };
        let (out, size) = rx1
            .recv_timeout(Duration::from_secs(5))
            .expect("drained on shutdown")
            .expect("parses");
        assert_eq!((out.len(), size), (2, 1));
        runner.join().expect("batcher exits");
    }

    #[test]
    fn full_batches_skip_the_window() {
        let session = Session::parse_xml("<a><b/><b/></a>").expect("fixture");
        // Window of a minute, max_batch 2: the second submission must
        // trigger the drain, not the clock.
        let (b, shutdown) = batcher(8, Duration::from_secs(60), 2);
        let runner = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let session = session;
                b.run(&session);
            })
        };
        let (p1, rx1) = pending("//b");
        let (p2, rx2) = pending("descendant::b");
        b.submit(p1).unwrap();
        b.submit(p2).unwrap();
        for rx in [rx1, rx2] {
            let (out, size) = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("full batch drains immediately")
                .expect("parses");
            assert_eq!(out.len(), 2);
            assert_eq!(size, 2, "both lanes share one pass");
        }
        assert_eq!(
            b.metrics
                .max_batch
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
        shutdown.trigger();
        b.wake_all();
        runner.join().expect("batcher exits");
    }

    #[test]
    fn zero_window_never_batches_even_under_backlog() {
        let session = Session::parse_xml("<a><b/><b/></a>").expect("fixture");
        let (b, shutdown) = batcher(8, Duration::ZERO, 64);
        // Two queries already queued before the batcher thread starts:
        // the window-0 drain must still take them one at a time.
        let (p1, rx1) = pending("//b");
        let (p2, rx2) = pending("//b");
        b.submit(p1).unwrap();
        b.submit(p2).unwrap();
        let runner = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let session = session;
                b.run(&session);
            })
        };
        for rx in [rx1, rx2] {
            let (out, size) = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("pass-through answers")
                .expect("parses");
            assert_eq!(out.len(), 2);
            assert_eq!(size, 1, "pass-through means single-lane passes");
        }
        shutdown.trigger();
        b.wake_all();
        runner.join().expect("batcher exits");
    }

    #[test]
    fn mixed_engines_split_into_per_engine_passes() {
        let session = Session::parse_xml("<a><b/><b/></a>").expect("fixture");
        let (b, shutdown) = batcher(8, Duration::from_millis(20), 64);
        let runner = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let session = session;
                b.run(&session);
            })
        };
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        let now = Instant::now();
        b.submit(Pending {
            expr: "//b".into(),
            engine: Engine::default(),
            reply: tx1,
            at: now,
            budget: Arc::new(Budget::new()),
            client: 0,
        })
        .unwrap();
        b.submit(Pending {
            expr: "//b".into(),
            engine: Engine::auto(),
            reply: tx2,
            at: now,
            budget: Arc::new(Budget::new()),
            client: 0,
        })
        .unwrap();
        for rx in [rx1, rx2] {
            let (out, size) = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("window drains")
                .expect("parses");
            assert_eq!(out.len(), 2);
            assert_eq!(size, 1, "different engines cannot share a pass");
        }
        shutdown.trigger();
        b.wake_all();
        runner.join().expect("batcher exits");
    }

    #[test]
    fn expired_queries_are_answered_at_drain_without_a_batch_slot() {
        let session = Session::parse_xml("<a><b/><b/></a>").expect("fixture");
        let (b, _shutdown) = batcher(8, Duration::from_secs(60), 64);
        // One query already dead (cancelled in the queue), one live.
        let (dead, rx_dead) = pending("//b");
        dead.budget.cancel();
        let (live, rx_live) = pending("//b");
        b.execute(&session, vec![dead, live]);
        assert!(matches!(
            rx_dead.try_recv().expect("answered"),
            Err(Error::Cancelled)
        ));
        let (out, size) = rx_live.try_recv().expect("answered").expect("runs");
        assert_eq!(out.len(), 2);
        assert_eq!(size, 1, "the dead query took no batch slot");
    }

    #[test]
    fn saturated_drains_are_fair_across_clients() {
        // Client 1 floods five queries before client 2's one; a drain
        // of two must still include client 2.
        let mut q: VecDeque<Pending> = VecDeque::new();
        for i in 0..5 {
            let (p, _rx) = pending_for(&format!("//a{i}"), 1);
            q.push_back(p);
            std::mem::forget(_rx);
        }
        let (p, _rx) = pending_for("//z", 2);
        q.push_back(p);
        std::mem::forget(_rx);
        let batch = drain_fair(&mut q, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].client, 1);
        assert_eq!(batch[0].expr, "//a0", "per-client FIFO holds");
        assert_eq!(batch[1].client, 2, "the flooded-out client gets a slot");
        assert_eq!(q.len(), 4, "the rest stays queued");
        assert!(q.iter().all(|p| p.client == 1));
        assert_eq!(
            q.iter().map(|p| p.expr.as_str()).collect::<Vec<_>>(),
            ["//a1", "//a2", "//a3", "//a4"],
            "leftovers keep client 1's order"
        );
    }

    #[test]
    fn small_drains_stay_strict_fifo() {
        let mut q: VecDeque<Pending> = VecDeque::new();
        for (expr, client) in [("//a", 1), ("//b", 2), ("//c", 1)] {
            let (p, _rx) = pending_for(expr, client);
            q.push_back(p);
            std::mem::forget(_rx);
        }
        // take >= len: everything drains in submission order.
        let batch = drain_fair(&mut q, 8);
        assert_eq!(
            batch.iter().map(|p| p.expr.as_str()).collect::<Vec<_>>(),
            ["//a", "//b", "//c"]
        );
        assert!(q.is_empty());
    }
}
