//! The wire protocol: length-prefixed frames, typed error codes, and
//! the payload encodings both ends share.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌──────────────┬─────────┬───────────────────┐
//! │ len: u32 BE  │ ty: u8  │ payload: len bytes│
//! └──────────────┴─────────┴───────────────────┘
//! ```
//!
//! where `len` counts the payload only (the 5-byte header is fixed) and
//! `ty` is one of [`frame`]'s constants. Frames larger than the
//! server's `max_frame` are answered with an
//! [`code::OVERSIZED`] error and the connection is closed — a length
//! that huge is garbage, not a request worth resynchronizing past.
//!
//! ## Requests (client → server)
//!
//! * [`frame::QUERY`] — payload `[flags: u8][deadline_ms: u32 BE, only
//!   when `flags & DEADLINE`][engine_len: u8][engine name][XPath
//!   expression…]`. Flags: [`flags::RENDER`] asks for rendered node
//!   lines instead of raw pre ranks, [`flags::COUNT_ONLY`] suppresses
//!   result chunks entirely (the [`frame::DONE`] frame carries the
//!   total), [`flags::DEADLINE`] says a 4-byte per-query deadline in
//!   milliseconds follows the flag byte (the server clamps it to its
//!   own execution timeout). The engine name is one of `staircase |
//!   pushdown | fragmented | parallel | naive | sql | auto` (see
//!   [`engine_by_name`]).
//! * [`frame::CANCEL`] — no payload; cancels the connection's in-flight
//!   query. The query answers with an [`code::CANCELLED`] error frame
//!   (unless it won the race and completed); the connection survives.
//!   A `CANCEL` with nothing in flight is ignored.
//! * [`frame::STATS`] — no payload; the server answers with one
//!   [`frame::RCHUNK`] of `key value` metric lines and a `DONE`.
//! * [`frame::SHUTDOWN`] — no payload; the server acknowledges with
//!   `DONE` and then shuts down gracefully (stops accepting, drains
//!   in-flight batches, exits).
//!
//! ## Responses (server → client)
//!
//! A query answer is **streamed**: zero or more chunk frames followed
//! by exactly one terminal frame ([`frame::DONE`] or [`frame::ERROR`]),
//! so a client can process results incrementally instead of waiting
//! for — or buffering — the whole node vector.
//!
//! * [`frame::CHUNK`] — a run of result pre ranks, 4 bytes big-endian
//!   each, in document order.
//! * [`frame::RCHUNK`] — UTF-8 text: rendered result lines (or metric
//!   lines for `STATS`), `\n`-separated.
//! * [`frame::DONE`] — `[total: u32][touched: u64][batch: u32]`: the
//!   result cardinality, the nodes touched evaluating it, and the size
//!   of the admission batch this query rode in (1 = it ran alone).
//! * [`frame::ERROR`] — `[code: u8][message…]`; see [`code`]. Parse
//!   ([`code::PARSE`]), engine ([`code::ENGINE`]), busy
//!   ([`code::BUSY`]), shutdown ([`code::SHUTTING_DOWN`]), and the
//!   governed execution errors — [`code::TIMEOUT`] for an expired
//!   query deadline, [`code::RESOURCE`] for an exhausted cost budget,
//!   [`code::CANCELLED`] for a client cancel — leave the connection
//!   usable; framing errors ([`code::MALFORMED`] on an undecodable
//!   *frame*, [`code::OVERSIZED`], and `TIMEOUT` for a *read* timeout
//!   with no query in flight) are followed by a close. A malformed
//!   *payload* inside a well-framed message is answered with
//!   `MALFORMED` and the connection survives — the frame boundary was
//!   never lost.

use std::io::{Read, Write};

use staircase_accel::{Doc, NodeKind, Pre};
use staircase_xpath::Engine;

/// Frame type bytes.
pub mod frame {
    /// Client → server: evaluate one XPath expression.
    pub const QUERY: u8 = 0x01;
    /// Server → client: a run of big-endian `u32` result pre ranks.
    pub const CHUNK: u8 = 0x02;
    /// Server → client: rendered UTF-8 result (or metric) lines.
    pub const RCHUNK: u8 = 0x03;
    /// Server → client: terminal success frame (total, touched, batch).
    pub const DONE: u8 = 0x04;
    /// Server → client: terminal error frame (code, message).
    pub const ERROR: u8 = 0x05;
    /// Client → server: report server metrics.
    pub const STATS: u8 = 0x06;
    /// Client → server: cancel the connection's in-flight query.
    pub const CANCEL: u8 = 0x07;
    /// Client → server: graceful shutdown request.
    pub const SHUTDOWN: u8 = 0x08;
}

/// Request flag bits (first byte of a [`frame::QUERY`] payload).
pub mod flags {
    /// Stream rendered node lines ([`frame::RCHUNK`](super::frame::RCHUNK))
    /// instead of raw pre ranks.
    pub const RENDER: u8 = 0x01;
    /// Send no result chunks at all; the client only wants the
    /// cardinality in the [`frame::DONE`](super::frame::DONE) frame.
    pub const COUNT_ONLY: u8 = 0x02;
    /// A 4-byte big-endian per-query deadline (milliseconds) follows
    /// the flag byte. The server enforces the smaller of this and its
    /// own execution timeout.
    pub const DEADLINE: u8 = 0x04;
}

/// Typed error codes (first byte of a [`frame::ERROR`] payload).
pub mod code {
    /// The XPath expression did not parse. Connection survives.
    pub const PARSE: u8 = 1;
    /// The admission queue is full — back off and retry. Connection
    /// survives.
    pub const BUSY: u8 = 2;
    /// The frame or payload did not decode. The connection survives a
    /// malformed payload (the frame boundary held) and is closed after
    /// a malformed frame.
    pub const MALFORMED: u8 = 3;
    /// The announced frame length exceeds the server's limit.
    /// Connection closes.
    pub const OVERSIZED: u8 = 4;
    /// The server is draining for shutdown and admits no new queries.
    /// Connection survives (until the server exits).
    pub const SHUTTING_DOWN: u8 = 5;
    /// The server lost its execution engine mid-request. Connection
    /// closes.
    pub const INTERNAL: u8 = 6;
    /// A deadline expired. For a *query* deadline (the client's
    /// [`flags::DEADLINE`](super::flags::DEADLINE) or the server's
    /// execution timeout) the connection survives; for a *read*
    /// timeout — the connection idled or dribbled a partial frame —
    /// it closes.
    pub const TIMEOUT: u8 = 7;
    /// The request named an unknown engine. Connection survives.
    pub const ENGINE: u8 = 8;
    /// The query exhausted a resource budget (cost ceiling) and was
    /// stopped. Connection survives.
    pub const RESOURCE: u8 = 9;
    /// The query was cancelled — a [`frame::CANCEL`](super::frame::CANCEL),
    /// or the client hung up mid-query. Connection survives (when it is
    /// still there).
    pub const CANCELLED: u8 = 10;
}

/// Frame header size: `u32` payload length + `u8` frame type.
pub const HEADER_LEN: usize = 5;

/// A decoded frame: type byte plus raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the [`frame`] constants (unknown values are delivered and
    /// left to the caller to reject).
    pub ty: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including timeouts).
    Io(std::io::Error),
    /// The announced payload length exceeds the reader's limit.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The reader's limit.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Reads one frame, blocking. `Ok(None)` is a clean EOF — the peer
/// closed between frames.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the announced length exceeds
/// `max_frame` (nothing past the header is consumed);
/// [`FrameError::Io`] on stream errors, including an EOF that cuts a
/// frame in half.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // A clean EOF before the first header byte is a normal close.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    if len as usize > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame {
        ty: header[4],
        payload,
    }))
}

/// Encodes a frame (header + payload) into one buffer, ready for a
/// single `write_all`.
pub fn encode_frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.push(ty);
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the stream's error (including write timeouts).
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(ty, payload))
}

/// Builds a [`frame::QUERY`] payload without a per-query deadline.
pub fn query_payload(flags: u8, engine: &str, expr: &str) -> Vec<u8> {
    query_payload_deadline(flags, None, engine, expr)
}

/// Builds a [`frame::QUERY`] payload; `deadline_ms` (when given) sets
/// [`flags::DEADLINE`] and inserts the 4-byte deadline field.
pub fn query_payload_deadline(
    flags: u8,
    deadline_ms: Option<u32>,
    engine: &str,
    expr: &str,
) -> Vec<u8> {
    let mut p = Vec::with_capacity(6 + engine.len() + expr.len());
    match deadline_ms {
        Some(ms) => {
            p.push(flags | self::flags::DEADLINE);
            p.extend_from_slice(&ms.to_be_bytes());
        }
        None => p.push(flags & !self::flags::DEADLINE),
    }
    p.push(engine.len() as u8);
    p.extend_from_slice(engine.as_bytes());
    p.extend_from_slice(expr.as_bytes());
    p
}

/// Decodes a [`frame::QUERY`] payload into `(flags, deadline_ms,
/// engine, expr)`; `deadline_ms` is `Some` exactly when the payload
/// carries [`flags::DEADLINE`].
///
/// # Errors
///
/// A human-readable description of the defect (truncated payload,
/// engine-name length past the end, non-UTF-8 text).
pub fn parse_query_payload(payload: &[u8]) -> Result<(u8, Option<u32>, &str, &str), String> {
    if payload.is_empty() {
        return Err("query payload is empty".to_string());
    }
    let flags = payload[0];
    let mut rest = &payload[1..];
    let deadline_ms = if flags & self::flags::DEADLINE != 0 {
        if rest.len() < 4 {
            return Err(format!(
                "deadline flag set but only {} payload bytes follow the flags",
                rest.len()
            ));
        }
        let ms = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
        rest = &rest[4..];
        Some(ms)
    } else {
        None
    };
    let (&engine_len_byte, rest) = rest
        .split_first()
        .ok_or_else(|| format!("query payload of {} bytes is truncated", payload.len()))?;
    let engine_len = engine_len_byte as usize;
    if engine_len > rest.len() {
        return Err(format!(
            "engine name of {engine_len} bytes overruns the {}-byte payload",
            payload.len()
        ));
    }
    let engine = std::str::from_utf8(&rest[..engine_len])
        .map_err(|_| "engine name is not UTF-8".to_string())?;
    let expr = std::str::from_utf8(&rest[engine_len..])
        .map_err(|_| "expression is not UTF-8".to_string())?;
    Ok((flags, deadline_ms, engine, expr))
}

/// Builds a [`frame::DONE`] payload.
pub fn done_payload(total: u32, touched: u64, batch: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&total.to_be_bytes());
    p.extend_from_slice(&touched.to_be_bytes());
    p.extend_from_slice(&batch.to_be_bytes());
    p
}

/// Decodes a [`frame::DONE`] payload into `(total, touched, batch)`.
///
/// # Errors
///
/// A description of the defect when the payload is not 16 bytes.
pub fn parse_done_payload(payload: &[u8]) -> Result<(u32, u64, u32), String> {
    if payload.len() != 16 {
        return Err(format!("done payload is {} bytes, not 16", payload.len()));
    }
    let total = u32::from_be_bytes(payload[0..4].try_into().expect("4 bytes"));
    let touched = u64::from_be_bytes(payload[4..12].try_into().expect("8 bytes"));
    let batch = u32::from_be_bytes(payload[12..16].try_into().expect("4 bytes"));
    Ok((total, touched, batch))
}

/// Builds a [`frame::ERROR`] payload.
pub fn error_payload(code: u8, message: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + message.len());
    p.push(code);
    p.extend_from_slice(message.as_bytes());
    p
}

/// Decodes a [`frame::ERROR`] payload into `(code, message)`.
///
/// # Errors
///
/// A description of the defect when the payload is empty or the
/// message is not UTF-8.
pub fn parse_error_payload(payload: &[u8]) -> Result<(u8, &str), String> {
    let (&code, msg) = payload
        .split_first()
        .ok_or_else(|| "error payload is empty".to_string())?;
    let message = std::str::from_utf8(msg).map_err(|_| "error message is not UTF-8".to_string())?;
    Ok((code, message))
}

/// Builds a [`frame::CHUNK`] payload from a run of pre ranks.
pub fn ids_payload(ids: &[Pre]) -> Vec<u8> {
    let mut p = Vec::with_capacity(ids.len() * 4);
    for id in ids {
        p.extend_from_slice(&id.to_be_bytes());
    }
    p
}

/// Decodes a [`frame::CHUNK`] payload back into pre ranks.
///
/// # Errors
///
/// A description of the defect when the payload length is not a
/// multiple of four.
pub fn parse_ids_payload(payload: &[u8]) -> Result<Vec<Pre>, String> {
    if !payload.len().is_multiple_of(4) {
        return Err(format!(
            "id chunk of {} bytes is not a whole number of u32s",
            payload.len()
        ));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| Pre::from_be_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Resolves a wire engine name to a validated [`Engine`] — the same
/// seven names `xq --engine` accepts, at their default configurations
/// (variants are a client-side concern; the wire names pick policies,
/// not knobs).
pub fn engine_by_name(name: &str) -> Option<Engine> {
    match name {
        "staircase" => Some(Engine::default()),
        "pushdown" => Engine::staircase().pushdown(true).build().ok(),
        "fragmented" => Engine::staircase().fragmented(true).build().ok(),
        "parallel" => Engine::staircase().parallel(4).build().ok(),
        "naive" => Some(Engine::naive()),
        "sql" => Engine::sql()
            .eq1_window(true)
            .early_nametest(true)
            .build()
            .ok(),
        "auto" => Some(Engine::auto()),
        _ => None,
    }
}

/// Renders one result node the way `xq` prints it — shared by the
/// server's [`flags::RENDER`] path and `xq`'s local mode, so remote and
/// local output are byte-identical.
pub fn render_node(doc: &Doc, v: Pre) -> String {
    match doc.kind(v) {
        NodeKind::Element => format!("<{}>", doc.tag_name(v).unwrap_or("?")),
        NodeKind::Attribute => format!(
            "@{}={:?}",
            doc.tag_name(v).unwrap_or("?"),
            doc.content(v).unwrap_or("")
        ),
        NodeKind::Text => format!("text {:?}", truncate(doc.content(v).unwrap_or(""))),
        NodeKind::Comment => format!("comment {:?}", truncate(doc.content(v).unwrap_or(""))),
        NodeKind::Pi => format!("pi <?{}?>", doc.tag_name(v).unwrap_or("?")),
    }
}

/// The full output line for one result node (`pre <rank>  <rendered>`).
pub fn render_line(doc: &Doc, v: Pre) -> String {
    format!("pre {:>8}  {}", v, render_node(doc, v))
}

fn truncate(s: &str) -> &str {
    let end = s
        .char_indices()
        .map(|(i, _)| i)
        .take_while(|&i| i <= 40)
        .last()
        .unwrap_or(0);
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let payload = query_payload(flags::RENDER, "auto", "//bidder");
        let bytes = encode_frame(frame::QUERY, &payload);
        let mut cursor = &bytes[..];
        let f = read_frame(&mut cursor, 1 << 20).unwrap().unwrap();
        assert_eq!(f.ty, frame::QUERY);
        let (fl, deadline, engine, expr) = parse_query_payload(&f.payload).unwrap();
        assert_eq!(
            (fl, deadline, engine, expr),
            (flags::RENDER, None, "auto", "//bidder")
        );
    }

    #[test]
    fn deadline_payloads_round_trip() {
        let payload = query_payload_deadline(flags::COUNT_ONLY, Some(250), "auto", "//bidder");
        let (fl, deadline, engine, expr) = parse_query_payload(&payload).unwrap();
        assert_eq!(fl & flags::COUNT_ONLY, flags::COUNT_ONLY);
        assert_eq!(fl & flags::DEADLINE, flags::DEADLINE);
        assert_eq!((deadline, engine, expr), (Some(250), "auto", "//bidder"));
        // The deadline flag without its 4-byte field is malformed.
        assert!(parse_query_payload(&[flags::DEADLINE, 0, 1]).is_err());
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty, 1024).unwrap().is_none());
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let bytes = encode_frame(frame::QUERY, &[0u8; 10]);
        let mut cut = &bytes[..7];
        assert!(matches!(read_frame(&mut cut, 1024), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.push(frame::QUERY);
        let mut cursor = &bytes[..];
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn done_and_error_payloads_round_trip() {
        let (t, n, b) = parse_done_payload(&done_payload(7, 1234, 3)).unwrap();
        assert_eq!((t, n, b), (7, 1234, 3));
        let err = error_payload(code::BUSY, "full");
        let (c, m) = parse_error_payload(&err).unwrap();
        assert_eq!((c, m), (code::BUSY, "full"));
        assert!(parse_done_payload(&[0; 3]).is_err());
        assert!(parse_error_payload(&[]).is_err());
    }

    #[test]
    fn id_chunks_round_trip() {
        let ids = vec![0u32, 5, 1_000_000];
        assert_eq!(parse_ids_payload(&ids_payload(&ids)).unwrap(), ids);
        assert!(parse_ids_payload(&[1, 2, 3]).is_err());
    }

    #[test]
    fn malformed_query_payloads_are_described() {
        assert!(parse_query_payload(&[]).is_err());
        // A lone flag byte has no engine-length byte.
        assert!(parse_query_payload(&[0]).is_err());
        // Engine length pointing past the end of the payload.
        assert!(parse_query_payload(&[0, 200, b'a']).is_err());
        // Non-UTF-8 expression.
        assert!(parse_query_payload(&[0, 1, b'a', 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn every_wire_engine_name_resolves() {
        for name in [
            "staircase",
            "pushdown",
            "fragmented",
            "parallel",
            "naive",
            "sql",
            "auto",
        ] {
            assert!(engine_by_name(name).is_some(), "{name}");
        }
        assert!(engine_by_name("warp-drive").is_none());
    }
}
