//! Server counters: what the traffic layer did, as lock-free atomics.
//!
//! Every counter is monotonic and updated with relaxed ordering — the
//! metrics are observability, not synchronization. [`Metrics::render`]
//! is the `STATS` frame's payload: one `key value` pair per line, a
//! format both the load generator and shell pipelines can split.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one server's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Queries answered successfully.
    pub queries_ok: AtomicU64,
    /// Queries refused with `PARSE` (bad expression) or `ENGINE`
    /// (unknown engine name).
    pub rejected_requests: AtomicU64,
    /// Undecodable frames or payloads.
    pub protocol_errors: AtomicU64,
    /// Queries refused with `SERVER_BUSY` (admission queue full).
    pub busy_rejections: AtomicU64,
    /// Connections closed for idling past the read timeout.
    pub timeouts: AtomicU64,
    /// Queries stopped at a deadline — the client's per-query deadline
    /// or the server's execution timeout. The connection survives.
    pub exec_timeouts: AtomicU64,
    /// Queries stopped by a `CANCEL` frame or a mid-query hangup.
    pub cancelled_queries: AtomicU64,
    /// Queries stopped at a resource (cost) budget ceiling.
    pub resource_exhausted: AtomicU64,
    /// Queries that failed with an isolated internal execution error
    /// (a caught panic); the server and connection survive.
    pub internal_errors: AtomicU64,
    /// Shared passes executed (`Session::run_many` calls; one admission
    /// drain produces one pass per distinct engine in the batch).
    pub batches: AtomicU64,
    /// Queries that rode in those passes (so `batched_queries /
    /// batches` is the mean batch size).
    pub batched_queries: AtomicU64,
    /// Largest single shared pass.
    pub max_batch: AtomicU64,
}

impl Metrics {
    /// Records one executed pass of `n` queries.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// The `STATS` payload: one `key value` pair per line.
    pub fn render(&self) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "connections {}\nqueries_ok {}\nrejected_requests {}\nprotocol_errors {}\n\
             busy_rejections {}\ntimeouts {}\nexec_timeouts {}\ncancelled_queries {}\n\
             resource_exhausted {}\ninternal_errors {}\nbatches {}\nbatched_queries {}\n\
             max_batch {}\n",
            get(&self.connections),
            get(&self.queries_ok),
            get(&self.rejected_requests),
            get(&self.protocol_errors),
            get(&self.busy_rejections),
            get(&self.timeouts),
            get(&self.exec_timeouts),
            get(&self.cancelled_queries),
            get(&self.resource_exhausted),
            get(&self.internal_errors),
            get(&self.batches),
            get(&self.batched_queries),
            get(&self.max_batch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_counter_once() {
        let m = Metrics::default();
        m.record_batch(3);
        m.record_batch(5);
        m.queries_ok.store(8, Ordering::Relaxed);
        let text = m.render();
        for key in [
            "connections",
            "queries_ok",
            "rejected_requests",
            "protocol_errors",
            "busy_rejections",
            "timeouts",
            "exec_timeouts",
            "cancelled_queries",
            "resource_exhausted",
            "internal_errors",
            "batches",
            "batched_queries",
            "max_batch",
        ] {
            assert_eq!(
                text.lines().filter(|l| l.starts_with(key)).count(),
                1,
                "{key} in {text}"
            );
        }
        assert!(text.contains("batches 2"));
        assert!(text.contains("batched_queries 8"));
        assert!(text.contains("max_batch 5"));
    }
}
