//! # staircase-server
//!
//! The batching query server front end: the traffic layer that turns
//! concurrent independent clients into the shared-scan
//! `Session::run_many` batches the lane executor underneath was built
//! to serve.
//!
//! ```no_run
//! use std::sync::Arc;
//! use staircase_server::{Client, QueryOptions, Server, ServerConfig};
//! use staircase_xpath::Session;
//!
//! let session = Arc::new(Session::parse_xml("<a><b/><b/></a>")?);
//! let handle = Server::start(session, ServerConfig::default())?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let reply = client.query("//b", &QueryOptions::default())?;
//! assert_eq!(reply.total, 2);
//! client.shutdown_server()?;
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## The serving model
//!
//! The executor half of the server predates this crate: a
//! [`Session`] is `Sync`, owns a persistent
//! worker pool, and its `run_many` answers K queries with shared plane
//! passes wherever their planned steps line up — a measured 1.3–2×
//! over running them back to back. What this crate adds is the
//! discipline that manufactures those batches out of independent
//! clients, the same admission-window trick inference servers use to
//! amortize a shared pass over concurrent requests:
//!
//! * **Admission window** ([`batcher`]): queries from all connections
//!   land in one bounded queue. A round opens when the queue becomes
//!   non-empty and drains when either the window
//!   ([`ServerConfig::window`], a few ms) expires or
//!   [`ServerConfig::max_batch`] queries have accumulated; the drained
//!   batch executes as one `run_many` call per engine named in it. The
//!   window deliberately trades a few milliseconds of added latency for
//!   the shared-scan throughput multiple; a zero window disables
//!   batching entirely (one query per pass, even under backlog) and is
//!   the load generator's baseline.
//! * **Backpressure**: the admission queue is bounded
//!   ([`ServerConfig::queue_depth`]); when the pool cannot drain fast
//!   enough, further requests are answered with a typed `SERVER_BUSY`
//!   error frame immediately instead of queueing without bound. Clients
//!   retry or shed load; the server's memory does not grow with offered
//!   load.
//! * **Streamed results**: answers leave as a sequence of bounded
//!   chunk frames followed by a terminal stats frame, so clients
//!   process (and the server forgets) results incrementally instead of
//!   holding a materialized response per in-flight query.
//! * **Robustness**: per-connection read/write timeouts, typed error
//!   frames for malformed input (the connection survives anything that
//!   does not lose the frame boundary), and graceful shutdown — stop
//!   accepting, refuse new admissions, drain every admitted batch,
//!   exit. An accepted query is always answered.
//!
//! Threads, not async: there is no tokio in this environment (no
//! registry access), and none is needed — the acceptor and the batcher
//! are one thread each, connections are a thread apiece with blocking
//! I/O chopped into short ticks, and the actual work all happens on the
//! session's own worker pool.
//!
//! ## Failure model
//!
//! Every admitted query executes under a governor
//! [`Budget`](staircase_xpath::Budget) whose deadline is the tighter of
//! the client's optional per-query deadline (the `DEADLINE` flag in the
//! `QUERY` frame) and the server-wide [`ServerConfig::exec_timeout`].
//! What can go wrong, and what survives it:
//!
//! * **Query deadline** (`TIMEOUT` error frame): the executor stops the
//!   query cooperatively at the next enforcement boundary. Only that
//!   query fails; batch siblings in the same shared pass complete with
//!   node- and order-identical results, and the connection stays open
//!   for the next request. This is distinct from the *read* timeout
//!   ([`ServerConfig::read_timeout`]), which also answers `TIMEOUT` but
//!   closes the connection — a peer that cannot deliver a frame has
//!   lost the frame boundary.
//! * **Cost budget** (`RESOURCE`): same containment as the deadline,
//!   tripped by the touched-node ceiling instead of the clock.
//! * **Cancellation** (`CANCELLED`): while a query is in flight the
//!   connection thread keeps reading in short ticks; a `CANCEL` frame
//!   or the peer hanging up flips the budget's cancel flag. Any other
//!   frame that arrives early is stashed and served after the in-flight
//!   answer, so pipelining a request behind a long query is safe.
//! * **Execution panic** (`INTERNAL`): a panicking executor task is
//!   caught at the pool (or batch-group) boundary and isolated to the
//!   pass it rode in — each query of that pass answers `INTERNAL`, the
//!   batcher thread, the worker pool, the session, and the connection
//!   all remain usable. An `INTERNAL` caused by the batcher itself
//!   dying is the one variant that closes the connection.
//! * **Overload** (`SERVER_BUSY`) and **shutdown** (`SHUTTING_DOWN`)
//!   are refused at admission and never consume a batch slot; queries
//!   whose budget is already dead when their round drains (expired in
//!   queue) are answered without occupying a slot either.
//!
//! The corresponding counters — `exec_timeouts`, `resource_exhausted`,
//! `cancelled_queries`, `internal_errors` — are reported by the `STATS`
//! frame; see [`Metrics`].
//!
//! ## Wire protocol
//!
//! See [`protocol`] for the normative frame-by-frame spec. In short:
//! every frame is `[len: u32 BE][type: u8][payload]`; a client sends a
//! `QUERY` frame naming an engine and an XPath expression and reads
//! result chunks (`CHUNK` of big-endian pre ranks, or `RCHUNK` of
//! rendered text lines) terminated by exactly one `DONE` (total,
//! touched nodes, admission-batch size) or typed `ERROR` frame.
//! `STATS` reports server counters and `SHUTDOWN` asks for a graceful
//! exit. Two bins ship with the crate: `staircase-serve` (the server)
//! and, in `staircase-bench`, `staircase-loadgen` (an open-loop load
//! generator emitting `BENCH_server_latency.json`).

#![warn(missing_docs)]

pub mod batcher;
mod conn;
pub mod metrics;
pub mod mix;
pub mod protocol;
pub mod shutdown;

mod client;

pub use batcher::SubmitError;
pub use client::{Client, ClientError, QueryOptions, QueryReply};
pub use metrics::Metrics;
pub use protocol::{engine_by_name, render_line, render_node};
pub use shutdown::Shutdown;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use staircase_xpath::Session;

use batcher::Batcher;
use conn::ConnShared;

/// Everything tunable about a server, with defaults sized for the
/// `staircase-serve` CLI.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// The admission window: how long the batcher holds an open round
    /// for more queries to join. Zero means pass-through.
    pub window: Duration,
    /// Largest admission batch one round may drain.
    pub max_batch: usize,
    /// Bound of the admission queue; submissions beyond it are answered
    /// `SERVER_BUSY`.
    pub queue_depth: usize,
    /// A connection that takes longer than this to deliver a frame —
    /// idle or dribbling — is closed with a `TIMEOUT` error.
    pub read_timeout: Duration,
    /// Per-write timeout for responses; a client that stops reading is
    /// disconnected rather than parked on forever.
    pub write_timeout: Duration,
    /// Largest accepted frame (requests *and* the limit announced to
    /// payload builders).
    pub max_frame: usize,
    /// How many pre ranks one `CHUNK` frame carries.
    pub chunk_ids: usize,
    /// Server-side ceiling on a single query's execution time. Every
    /// admitted query runs under a governor deadline of
    /// `min(client deadline, exec_timeout)`; tripping it answers a
    /// `TIMEOUT` error frame and the connection survives (unlike the
    /// read timeout, which closes it).
    pub exec_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window: Duration::from_millis(2),
            max_batch: 32,
            queue_depth: 256,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: 1 << 20,
            chunk_ids: 4096,
            exec_timeout: Duration::from_secs(10),
        }
    }
}

/// The server: [`Server::start`] is the only entry point.
pub struct Server;

impl Server {
    /// Binds the listener, spawns the acceptor and batcher threads, and
    /// returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// The bind or the nonblocking-mode switch failing.
    pub fn start(session: Arc<Session>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        // Nonblocking accept + short sleeps: the acceptor must observe
        // the shutdown flag without a connection arriving to unblock it.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Shutdown::new();
        let metrics = Arc::new(Metrics::default());
        let batcher = Arc::new(Batcher::new(
            config.queue_depth,
            config.window,
            config.max_batch,
            shutdown.clone(),
            Arc::clone(&metrics),
        ));
        let shared = Arc::new(ConnShared {
            session: Arc::clone(&session),
            batcher: Arc::clone(&batcher),
            metrics: Arc::clone(&metrics),
            shutdown: shutdown.clone(),
            config,
        });
        let runner = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.run(&session))
        };
        let acceptor = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || accept_loop(listener, &shared, &shutdown))
        };
        Ok(ServerHandle {
            local_addr,
            shutdown,
            batcher,
            metrics,
            acceptor: Some(acceptor),
            runner: Some(runner),
        })
    }
}

/// The acceptor thread: poll-accept until shutdown, then join every
/// connection thread (they close within a read tick of the flag).
fn accept_loop(listener: TcpListener, shared: &Arc<ConnShared>, shutdown: &Shutdown) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.is_triggered() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || conn::serve(stream, &shared)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate one handle per client ever served.
        conns.retain(|h| !h.is_finished());
    }
    drop(listener);
    for handle in conns {
        let _ = handle.join();
    }
}

/// A running server: its address, its metrics, and its lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Shutdown,
    batcher: Arc<Batcher>,
    metrics: Arc<Metrics>,
    acceptor: Option<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (the actual port when the config said 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Triggers graceful shutdown: stop accepting, refuse new
    /// admissions, drain everything admitted. Idempotent; returns
    /// without waiting — pair with [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shutdown.trigger();
        self.batcher.wake_all();
    }

    /// Waits for the server to exit (either after
    /// [`ServerHandle::shutdown`] or a client's `SHUTDOWN` frame).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// [`ServerHandle::shutdown`] + [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.runner.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not leave detached server threads
        // accepting traffic; trigger and reap them.
        self.shutdown.trigger();
        self.batcher.wake_all();
        self.join_threads();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("shutting_down", &self.shutdown.is_triggered())
            .finish()
    }
}
