//! Protocol-level robustness tests over a real listener: malformed and
//! oversized frames, read timeouts, backpressure (`SERVER_BUSY`), and
//! graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use staircase_server::protocol::{self, code, flags, frame};
use staircase_server::{Client, ClientError, QueryOptions, Server, ServerConfig, ServerHandle};
use staircase_xpath::Session;

const SAMPLE: &str = "<site><open_auctions><open_auction id='a0'><bidder><increase>1</increase>\
    </bidder><bidder><increase>2</increase></bidder></open_auction>\
    </open_auctions></site>";

fn start(config: ServerConfig) -> ServerHandle {
    let session = Arc::new(Session::parse_xml(SAMPLE).expect("fixture parses"));
    Server::start(session, config).expect("ephemeral bind succeeds")
}

fn opts(engine: &str) -> QueryOptions {
    QueryOptions {
        engine: engine.to_string(),
        render: false,
        count_only: false,
        deadline_ms: None,
    }
}

#[test]
fn queries_round_trip_on_every_engine() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for engine in [
        "staircase",
        "pushdown",
        "fragmented",
        "parallel",
        "naive",
        "sql",
        "auto",
    ] {
        let reply = client
            .query("/descendant::increase/ancestor::bidder", &opts(engine))
            .unwrap_or_else(|e| panic!("{engine}: {e}"));
        assert_eq!(reply.total, 2, "{engine}");
        assert_eq!(reply.ids.len(), 2, "{engine}");
        assert!(reply.touched > 0, "{engine}");
        assert!(reply.batch_size >= 1, "{engine}");
    }
    handle.shutdown_and_join();
}

#[test]
fn count_only_and_render_modes() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let counted = client
        .query(
            "//bidder",
            &QueryOptions {
                count_only: true,
                ..opts("staircase")
            },
        )
        .unwrap();
    assert_eq!(counted.total, 2);
    assert!(counted.ids.is_empty(), "count-only sends no chunks");

    let rendered = client
        .query(
            "//bidder",
            &QueryOptions {
                render: true,
                ..opts("staircase")
            },
        )
        .unwrap();
    assert_eq!(rendered.rendered.len(), 2);
    for line in &rendered.rendered {
        assert!(line.starts_with("pre "), "{line}");
        assert!(line.contains("<bidder>"), "{line}");
    }
    handle.shutdown_and_join();
}

#[test]
fn parse_and_engine_errors_leave_the_connection_usable() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let err = client.query("///bad[", &opts("staircase")).unwrap_err();
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::PARSE),
        "{err:?}"
    );
    let err = client.query("//bidder", &opts("warp-drive")).unwrap_err();
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::ENGINE),
        "{err:?}"
    );
    // Same connection, still serving.
    let reply = client.query("//bidder", &opts("staircase")).unwrap();
    assert_eq!(reply.total, 2);
    handle.shutdown_and_join();
}

#[test]
fn malformed_payload_is_answered_and_survived() {
    let handle = start(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();

    // A QUERY frame whose engine-name length overruns the payload.
    let bad = protocol::encode_frame(frame::QUERY, &[flags::COUNT_ONLY, 250, b'x']);
    stream.write_all(&bad).unwrap();
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert_eq!(f.ty, frame::ERROR);
    let (c, msg) = protocol::parse_error_payload(&f.payload).unwrap();
    assert_eq!(c, code::MALFORMED, "{msg}");

    // An unknown frame type is also answered in place.
    stream
        .write_all(&protocol::encode_frame(0x7F, &[]))
        .unwrap();
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    let (c, _) = protocol::parse_error_payload(&f.payload).unwrap();
    assert_eq!(c, code::MALFORMED);

    // The connection survived both: a clean query still answers.
    stream
        .write_all(&protocol::encode_frame(
            frame::QUERY,
            &protocol::query_payload(flags::COUNT_ONLY, "staircase", "//bidder"),
        ))
        .unwrap();
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert_eq!(f.ty, frame::DONE);
    let (total, _, _) = protocol::parse_done_payload(&f.payload).unwrap();
    assert_eq!(total, 2);
    handle.shutdown_and_join();
}

#[test]
fn oversized_frames_error_and_close() {
    let config = ServerConfig {
        max_frame: 1024,
        ..ServerConfig::default()
    };
    let handle = start(config);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    // Announce a 2 MiB payload against a 1 KiB limit; no need to send it.
    let mut header = Vec::new();
    header.extend_from_slice(&(2u32 << 20).to_be_bytes());
    header.push(frame::QUERY);
    stream.write_all(&header).unwrap();
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert_eq!(f.ty, frame::ERROR);
    let (c, msg) = protocol::parse_error_payload(&f.payload).unwrap();
    assert_eq!(c, code::OVERSIZED);
    assert!(msg.contains("1024"), "{msg}");
    // The server closes after an oversized frame.
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "connection closed");
    handle.shutdown_and_join();
}

#[test]
fn idle_connections_time_out_with_a_typed_error() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = start(config);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    // Send nothing; the server must close us out with TIMEOUT.
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    assert_eq!(f.ty, frame::ERROR);
    let (c, _) = protocol::parse_error_payload(&f.payload).unwrap();
    assert_eq!(c, code::TIMEOUT);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout fired way late: {:?}",
        started.elapsed()
    );
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "connection closed");
    assert!(
        handle
            .metrics()
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}

#[test]
fn a_dribbled_partial_frame_times_out_too() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = start(config);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    // Three header bytes, then silence: the deadline covers the whole
    // frame, not just the first byte.
    stream.write_all(&[0, 0, 0]).unwrap();
    let f = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
    let (c, _) = protocol::parse_error_payload(&f.payload).unwrap();
    assert_eq!(c, code::TIMEOUT);
    handle.shutdown_and_join();
}

#[test]
fn saturated_admission_queue_answers_server_busy() {
    // A huge window and a queue depth of 1: the first query parks in
    // the open round, the second must bounce with SERVER_BUSY.
    let config = ServerConfig {
        window: Duration::from_millis(500),
        queue_depth: 1,
        max_batch: 64,
        ..ServerConfig::default()
    };
    let handle = start(config);
    let addr = handle.local_addr();

    let parked = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query("//bidder", &opts("staircase")).unwrap()
    });
    // Give the first query time to be admitted into the open window.
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(addr).unwrap();
    let err = client.query("//bidder", &opts("staircase")).unwrap_err();
    assert!(
        matches!(err, ClientError::Server { code: c, .. } if c == code::BUSY),
        "{err:?}"
    );
    let parked_reply = parked.join().expect("parked client answered");
    assert_eq!(parked_reply.total, 2);

    // Backpressure is per-request, not per-connection: the window has
    // drained (the parked client got its answer), so the same
    // connection that bounced is served again.
    let reply = client.query("//bidder", &opts("staircase")).unwrap();
    assert_eq!(reply.total, 2);
    assert!(
        handle
            .metrics()
            .busy_rejections
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_join();
}

#[test]
fn stats_frame_reports_counters() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.query("//bidder", &opts("staircase")).unwrap();
    let stats = client.server_stats().unwrap();
    let queries: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("queries_ok "))
        .and_then(|v| v.parse().ok())
        .expect("queries_ok line");
    assert_eq!(queries, 1, "{stats}");
    assert!(stats.contains("batches 1"), "{stats}");
    handle.shutdown_and_join();
}

#[test]
fn shutdown_frame_drains_and_exits() {
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let reply = client.query("//bidder", &opts("auto")).unwrap();
    assert_eq!(reply.total, 2);
    client.shutdown_server().unwrap();
    // join() returns because the SHUTDOWN frame triggered the exit.
    handle.join();
    // New queries on the old connection are refused or the connection
    // is closed — either way, no silent hang.
    let outcome = client.query("//bidder", &opts("auto"));
    assert!(outcome.is_err(), "server is gone: {outcome:?}");
}
