//! The encoded document (`doc` table) and its streaming loader.

use staircase_storage::Bat;
use staircase_xml::{Document, Event, NodeId, PullParser};

use crate::tags::{TagId, TagInterner, NO_TAG};
use crate::{Level, Post, Pre};

/// Parent pre-rank sentinel for the root node.
pub const NO_PARENT: Pre = u32::MAX;

/// The kind of an encoded node.
///
/// Attributes use "a special encoding … which allows them to be filtered
/// out if needed" (paper §3): they are ordinary plane nodes distinguished
/// only by this kind tag, placed in document order directly after their
/// owning element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NodeKind {
    /// An element node.
    Element = 0,
    /// An attribute node (filtered from every axis except `attribute`).
    Attribute = 1,
    /// A text node.
    Text = 2,
    /// A comment node.
    Comment = 3,
    /// A processing instruction node.
    Pi = 4,
}

impl NodeKind {
    fn from_u8(v: u8) -> NodeKind {
        match v {
            0 => NodeKind::Element,
            1 => NodeKind::Attribute,
            2 => NodeKind::Text,
            3 => NodeKind::Comment,
            _ => NodeKind::Pi,
        }
    }
}

/// The XPath-accelerator encoding of one document: the paper's `doc` table.
///
/// Columns are dense and indexed positionally by preorder rank (`pre` is a
/// *void* column, cf. §4.1): `post` (the only column the staircase join's
/// inner loop reads), `level`, `kind`, `tag`, `parent`, and an optional
/// content arena for value reconstruction.
#[derive(Debug, Clone)]
pub struct Doc {
    post: Bat<Post>,
    level: Vec<Level>,
    kind: Vec<u8>,
    tag: Vec<TagId>,
    parent: Vec<Pre>,
    /// Content index per node (`u32::MAX` = none); points into `arena`.
    content: Vec<u32>,
    arena: Vec<String>,
    tags: TagInterner,
    height: Level,
}

impl Doc {
    /// Parses XML text and encodes it. Content (text/attribute values) is
    /// retained so the document can be reconstructed.
    pub fn from_xml(input: &str) -> Result<Doc, staircase_xml::Error> {
        let mut b = EncodingBuilder::new();
        let mut parser = PullParser::new(input);
        // Consecutive text/CDATA events merge into one text node (the XPath
        // data model has no adjacent text siblings).
        let mut pending_text = String::new();
        macro_rules! flush_text {
            () => {
                if !pending_text.is_empty() {
                    b.text(&pending_text);
                    pending_text.clear();
                }
            };
        }
        loop {
            match parser.next_event()? {
                Event::StartTag {
                    name,
                    attributes,
                    self_closing,
                } => {
                    flush_text!();
                    b.open_element(name);
                    for a in &attributes {
                        b.attribute(a.name, &a.value);
                    }
                    if self_closing {
                        b.close_element();
                    }
                }
                Event::EndTag { .. } => {
                    flush_text!();
                    b.close_element();
                }
                Event::Text(t) => pending_text.push_str(&t),
                Event::CData(t) => pending_text.push_str(t),
                Event::Comment(c) => {
                    flush_text!();
                    b.comment(c);
                }
                Event::ProcessingInstruction { target, data } => {
                    flush_text!();
                    b.pi(target, data);
                }
                Event::Eof => break,
            }
        }
        Ok(b.finish())
    }

    /// Encodes an in-memory [`Document`] tree.
    pub fn from_document(doc: &Document) -> Doc {
        let mut b = EncodingBuilder::new();
        fn walk(doc: &Document, id: NodeId, b: &mut EncodingBuilder) {
            match doc.kind(id) {
                staircase_xml::NodeKind::Document => {
                    for c in doc.children(id) {
                        walk(doc, c, b);
                    }
                }
                staircase_xml::NodeKind::Element { name, attributes } => {
                    b.open_element(name);
                    for (k, v) in attributes {
                        b.attribute(k, v);
                    }
                    for c in doc.children(id) {
                        walk(doc, c, b);
                    }
                    b.close_element();
                }
                staircase_xml::NodeKind::Text(t) => {
                    b.text(t);
                }
                staircase_xml::NodeKind::Comment(c) => {
                    b.comment(c);
                }
                staircase_xml::NodeKind::Pi { target, data } => {
                    b.pi(target, data);
                }
            }
        }
        walk(doc, doc.document_node(), &mut b);
        b.finish()
    }

    /// Reconstructs a [`Document`] tree (requires retained content).
    pub fn to_document(&self) -> Document {
        let mut out = Document::new();
        let mut stack: Vec<(Pre, NodeId)> = vec![];
        let mut pre = 0 as Pre;
        while (pre as usize) < self.len() {
            // Pop completed elements: `pre` is past their subtree.
            while let Some(&(open, _)) = stack.last() {
                if !self.is_descendant_window(open, pre) {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent_id = stack
                .last()
                .map(|&(_, id)| id)
                .unwrap_or(out.document_node());
            match self.kind(pre) {
                NodeKind::Element => {
                    let name = self.tag_name(pre).unwrap_or("?").to_string();
                    // Attribute nodes directly follow their element.
                    let mut attrs = Vec::new();
                    let mut next = pre + 1;
                    while (next as usize) < self.len() && self.kind(next) == NodeKind::Attribute {
                        attrs.push((
                            self.tag_name(next).unwrap_or("?").to_string(),
                            self.content(next).unwrap_or("").to_string(),
                        ));
                        next += 1;
                    }
                    let id = out.append_element(parent_id, &name, attrs);
                    stack.push((pre, id));
                    pre = next;
                    continue;
                }
                NodeKind::Attribute => unreachable!("attributes are consumed by their element"),
                NodeKind::Text => out.append_text(parent_id, self.content(pre).unwrap_or("")),
                NodeKind::Comment => {
                    out.append_child(
                        parent_id,
                        staircase_xml::NodeKind::Comment(self.content(pre).unwrap_or("").into()),
                    );
                }
                NodeKind::Pi => {
                    let target = self.tag_name(pre).unwrap_or("?").to_string();
                    out.append_child(
                        parent_id,
                        staircase_xml::NodeKind::Pi {
                            target,
                            data: self.content(pre).unwrap_or("").into(),
                        },
                    );
                }
            }
            pre += 1;
        }
        out
    }

    /// `true` if `v` lies in the (inclusive-of-self) descendant window of
    /// `c`: `pre(v) >= pre(c) && post(v) <= post(c)`.
    #[inline]
    fn is_descendant_window(&self, c: Pre, v: Pre) -> bool {
        v >= c && self.post(v) <= self.post(c)
    }

    /// Number of encoded nodes (all kinds, attributes included).
    #[inline]
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// `true` for an empty document.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// The root node (pre rank 0). Panics on an empty document.
    #[inline]
    pub fn root(&self) -> Pre {
        assert!(!self.is_empty(), "empty document has no root");
        0
    }

    /// Postorder rank of `v`.
    #[inline]
    pub fn post(&self, v: Pre) -> Post {
        self.post.tail()[v as usize]
    }

    /// The whole postorder column — what the staircase join scans.
    #[inline]
    pub fn post_column(&self) -> &[Post] {
        self.post.tail()
    }

    /// Depth of `v` below the root (root = 0).
    #[inline]
    pub fn level(&self, v: Pre) -> Level {
        self.level[v as usize]
    }

    /// Node kind of `v`.
    #[inline]
    pub fn kind(&self, v: Pre) -> NodeKind {
        NodeKind::from_u8(self.kind[v as usize])
    }

    /// The kind column (raw `u8`s, one per node).
    #[inline]
    pub fn kind_column(&self) -> &[u8] {
        &self.kind
    }

    /// Tag id of `v` ([`NO_TAG`] for text/comment nodes; attribute nodes
    /// carry their attribute name, PI nodes their target).
    #[inline]
    pub fn tag(&self, v: Pre) -> TagId {
        self.tag[v as usize]
    }

    /// The tag column.
    #[inline]
    pub fn tag_column(&self) -> &[TagId] {
        &self.tag
    }

    /// Tag name of `v`, if it has one.
    pub fn tag_name(&self, v: Pre) -> Option<&str> {
        self.tags.name(self.tag(v))
    }

    /// Pre rank of `v`'s parent ([`NO_PARENT`] for the root).
    #[inline]
    pub fn parent(&self, v: Pre) -> Pre {
        self.parent[v as usize]
    }

    /// Stored content of `v` (text body, attribute value, comment text,
    /// PI data), if retained.
    pub fn content(&self, v: Pre) -> Option<&str> {
        let idx = self.content[v as usize];
        (idx != u32::MAX).then(|| self.arena[idx as usize].as_str())
    }

    /// The tag-name interner.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Looks up the id of `name` if it occurs in the document.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.tags.get(name)
    }

    /// Height `h` of the document: the maximum level, i.e. the length of
    /// the longest root-to-leaf path counted in edges. The paper computes
    /// `h` at document-loading time and uses it to bound `level(v)` in
    /// Equation (1).
    #[inline]
    pub fn height(&self) -> Level {
        self.height
    }

    /// **Equation (1)** — the exact number of nodes in the descendant
    /// region of `v` (attributes included):
    ///
    /// ```text
    /// |(v)/descendant| = post(v) − pre(v) + level(v)
    /// ```
    #[inline]
    pub fn subtree_size(&self, v: Pre) -> u32 {
        // post − pre may be transiently negative (leaves early in document
        // order); the sum with level is always ≥ 0.
        (self.post(v) as i64 - v as i64 + self.level(v) as i64) as u32
    }

    /// The guaranteed-descendant run length used by the copy phase of
    /// estimation-based skipping (Algorithm 4): the first
    /// `post(v) − pre(v)` nodes after `v` in preorder are descendants of
    /// `v` (their count underestimates Eq. 1 by exactly `level(v) ≤ h`).
    #[inline]
    pub fn guaranteed_descendants(&self, v: Pre) -> u32 {
        self.post(v).saturating_sub(v)
    }

    /// The height-bounded descendant window of `v` — the paper's line-7
    /// predicate pair: descendants satisfy
    /// `pre ∈ (pre(v), post(v) + h]` and `post ∈ [pre(v) − h, post(v))`.
    ///
    /// Returns `((pre_lo, pre_hi), (post_lo, post_hi))`, all inclusive.
    pub fn descendant_window(&self, v: Pre) -> ((Pre, Pre), (Post, Post)) {
        let h = self.height as u32;
        let pre_hi = (self.post(v) + h).min(self.len().saturating_sub(1) as u32);
        let post_lo = v.saturating_sub(h);
        ((v + 1, pre_hi), (post_lo, self.post(v).saturating_sub(1)))
    }

    /// Iterates all pre ranks.
    pub fn pres(&self) -> impl ExactSizeIterator<Item = Pre> {
        0..self.len() as Pre
    }

    /// Iterates the children of `v` in document order (attributes
    /// included; filter by [`Doc::kind`] if needed). Skips over whole
    /// subtrees using Equation (1), so cost is `O(#children)`.
    pub fn children(&self, v: Pre) -> Children<'_> {
        Children {
            doc: self,
            next: v + 1,
            end: v + 1 + self.subtree_size(v),
        }
    }

    /// Iterates the descendants of `v` in document order (the contiguous
    /// preorder run after `v`).
    pub fn descendants(&self, v: Pre) -> impl ExactSizeIterator<Item = Pre> {
        v + 1..v + 1 + self.subtree_size(v)
    }

    /// Iterates `v`'s ancestors bottom-up (parent first).
    pub fn ancestors(&self, v: Pre) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.parent(v),
        }
    }

    /// Exhaustively checks the encoding invariants; returns a description
    /// of the first violation, if any. Intended for validating documents
    /// decoded from untrusted bytes (see `Doc::from_bytes`).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        if n > u32::MAX as usize {
            return Err("document exceeds 2^32 nodes".into());
        }
        // post must be a permutation of 0..n.
        let mut seen = vec![false; n];
        for v in self.pres() {
            let q = self.post(v) as usize;
            if q >= n {
                return Err(format!("post({v}) = {q} out of range"));
            }
            if seen[q] {
                return Err(format!("duplicate post rank {q}"));
            }
            seen[q] = true;
        }
        let mut max_level: Level = 0;
        for v in self.pres() {
            let p = self.parent(v);
            if v == 0 {
                if p != NO_PARENT {
                    return Err("root has a parent".into());
                }
                if self.level(0) != 0 {
                    return Err("root level is not 0".into());
                }
                continue;
            }
            if p == NO_PARENT {
                return Err(format!("node {v} has no parent"));
            }
            if p >= v {
                return Err(format!("parent({v}) = {p} is not earlier in preorder"));
            }
            if self.post(p) <= self.post(v) {
                return Err(format!("parent({v}) = {p} does not enclose it"));
            }
            if self.level(p) + 1 != self.level(v) {
                return Err(format!("level({v}) inconsistent with parent {p}"));
            }
            max_level = max_level.max(self.level(v));
            let kind = self.kind(v);
            if (kind == NodeKind::Element || kind == NodeKind::Attribute)
                && self.tags.name(self.tag(v)).is_none()
            {
                return Err(format!("node {v} references unknown tag {}", self.tag(v)));
            }
        }
        if max_level != self.height {
            return Err(format!(
                "stored height {} != computed {max_level}",
                self.height
            ));
        }
        Ok(())
    }

    /// The content arena and per-node content index (persistence support).
    pub(crate) fn content_columns(&self) -> (&[String], &[u32]) {
        (&self.arena, &self.content)
    }

    /// Reassembles a document from raw columns (persistence support).
    /// Callers must supply mutually consistent columns; this is `pub`
    /// within the crate only.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        post: Vec<Post>,
        level: Vec<Level>,
        kind: Vec<u8>,
        tag: Vec<TagId>,
        parent: Vec<Pre>,
        content: Vec<u32>,
        arena: Vec<String>,
        tags: TagInterner,
        height: Level,
    ) -> Doc {
        // Decoded interners carry no occurrence counts; recount the
        // per-tag fragment sizes from the raw columns so planners see the
        // same statistics whether the document was built or decoded.
        let mut tags = tags;
        tags.clear_element_counts();
        let element = NodeKind::Element as u8;
        for (k, &t) in kind.iter().zip(&tag) {
            if *k == element {
                tags.record_element(t);
            }
        }
        Doc {
            post: Bat::from_tail(0, post),
            level,
            kind,
            tag,
            parent,
            content,
            arena,
            tags,
            height,
        }
    }

    /// Pre ranks of all *element* nodes with tag `tag`, in document order.
    pub fn elements_with_tag(&self, tag: TagId) -> Vec<Pre> {
        self.pres()
            .filter(|&p| self.kind(p) == NodeKind::Element && self.tag(p) == tag)
            .collect()
    }

    /// Per-kind node counts `(elements, attributes, texts, comments, pis)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = [0usize; 5];
        for &k in &self.kind {
            c[k as usize] += 1;
        }
        (c[0], c[1], c[2], c[3], c[4])
    }
}

/// Iterator over the children of a node (see [`Doc::children`]).
pub struct Children<'d> {
    doc: &'d Doc,
    next: Pre,
    end: Pre,
}

impl Iterator for Children<'_> {
    type Item = Pre;

    fn next(&mut self) -> Option<Pre> {
        if self.next >= self.end {
            return None;
        }
        let child = self.next;
        // Jump over the child's entire subtree to its next sibling.
        self.next = child + 1 + self.doc.subtree_size(child);
        Some(child)
    }
}

/// Iterator over a node's ancestors, bottom-up (see [`Doc::ancestors`]).
pub struct Ancestors<'d> {
    doc: &'d Doc,
    next: Pre,
}

impl Iterator for Ancestors<'_> {
    type Item = Pre;

    fn next(&mut self) -> Option<Pre> {
        if self.next == NO_PARENT {
            return None;
        }
        let a = self.next;
        self.next = self.doc.parent(a);
        Some(a)
    }
}

/// Streaming builder for [`Doc`] — the "document loading" phase.
///
/// Drives the single counter pair the encoding needs: `pre` is assigned
/// when a node is opened, `post` when it is closed; leaves open and close
/// immediately. Attribute nodes are emitted directly after their element,
/// before any content — XPath document order.
#[derive(Debug)]
pub struct EncodingBuilder {
    post: Vec<Post>,
    level: Vec<Level>,
    kind: Vec<u8>,
    tag: Vec<TagId>,
    parent: Vec<Pre>,
    content: Vec<u32>,
    arena: Vec<String>,
    tags: TagInterner,
    /// Stack of open element pre ranks.
    open: Vec<Pre>,
    next_post: Post,
    height: Level,
    store_content: bool,
}

impl EncodingBuilder {
    /// A builder that retains node content.
    pub fn new() -> EncodingBuilder {
        EncodingBuilder::with_content(true)
    }

    /// A builder that drops node content (used by the generator's direct
    /// path, where multi-million-node documents would otherwise spend most
    /// of their memory on filler strings).
    pub fn without_content() -> EncodingBuilder {
        EncodingBuilder::with_content(false)
    }

    fn with_content(store_content: bool) -> EncodingBuilder {
        EncodingBuilder {
            post: Vec::new(),
            level: Vec::new(),
            kind: Vec::new(),
            tag: Vec::new(),
            parent: Vec::new(),
            content: Vec::new(),
            arena: Vec::new(),
            tags: TagInterner::new(),
            open: Vec::new(),
            next_post: 0,
            height: 0,
            store_content,
        }
    }

    /// Pre-allocates columns for `n` expected nodes.
    pub fn reserve(&mut self, n: usize) {
        self.post.reserve(n);
        self.level.reserve(n);
        self.kind.reserve(n);
        self.tag.reserve(n);
        self.parent.reserve(n);
        self.content.reserve(n);
    }

    /// Current depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Number of nodes emitted so far.
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// `true` before the first node.
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    fn push_node(&mut self, kind: NodeKind, tag: TagId, content: Option<&str>) -> Pre {
        if kind == NodeKind::Element {
            self.tags.record_element(tag);
        }
        let pre = self.level.len() as Pre;
        let level = self.open.len() as Level;
        self.post.push(0); // patched on close for elements, below for leaves
        self.level.push(level);
        self.height = self.height.max(level);
        self.kind.push(kind as u8);
        self.tag.push(tag);
        self.parent
            .push(self.open.last().copied().unwrap_or(NO_PARENT));
        match content {
            Some(c) if self.store_content => {
                self.content.push(self.arena.len() as u32);
                self.arena.push(c.to_string());
            }
            _ => self.content.push(u32::MAX),
        }
        pre
    }

    fn close_leaf(&mut self, pre: Pre) {
        self.post[pre as usize] = self.next_post;
        self.next_post += 1;
    }

    /// Opens an element named `tag`; returns its pre rank.
    pub fn open_element(&mut self, tag: &str) -> Pre {
        let id = self.tags.intern(tag);
        let pre = self.push_node(NodeKind::Element, id, None);
        self.open.push(pre);
        pre
    }

    /// Opens an element by already-interned tag id (generator fast path).
    pub fn open_element_id(&mut self, tag: TagId) -> Pre {
        debug_assert!(self.tags.name(tag).is_some(), "unknown tag id");
        let pre = self.push_node(NodeKind::Element, tag, None);
        self.open.push(pre);
        pre
    }

    /// Interns a tag name without emitting a node (generator setup).
    pub fn intern(&mut self, tag: &str) -> TagId {
        self.tags.intern(tag)
    }

    /// Closes the innermost open element. Panics if none is open.
    pub fn close_element(&mut self) {
        let pre = self.open.pop().expect("close_element without open element");
        self.post[pre as usize] = self.next_post;
        self.next_post += 1;
    }

    /// Emits an attribute node on the innermost open element.
    pub fn attribute(&mut self, name: &str, value: &str) -> Pre {
        assert!(!self.open.is_empty(), "attribute outside any element");
        let id = self.tags.intern(name);
        let pre = self.push_node(NodeKind::Attribute, id, Some(value));
        self.close_leaf(pre);
        pre
    }

    /// Emits an attribute node by interned name id (generator fast path).
    pub fn attribute_id(&mut self, name: TagId) -> Pre {
        assert!(!self.open.is_empty(), "attribute outside any element");
        let pre = self.push_node(NodeKind::Attribute, name, None);
        self.close_leaf(pre);
        pre
    }

    /// Emits a text node.
    pub fn text(&mut self, body: &str) -> Pre {
        let pre = self.push_node(NodeKind::Text, NO_TAG, Some(body));
        self.close_leaf(pre);
        pre
    }

    /// Emits a text node without content (generator fast path).
    pub fn text_marker(&mut self) -> Pre {
        let pre = self.push_node(NodeKind::Text, NO_TAG, None);
        self.close_leaf(pre);
        pre
    }

    /// Emits a comment node.
    pub fn comment(&mut self, body: &str) -> Pre {
        let pre = self.push_node(NodeKind::Comment, NO_TAG, Some(body));
        self.close_leaf(pre);
        pre
    }

    /// Emits a processing-instruction node.
    pub fn pi(&mut self, target: &str, data: &str) -> Pre {
        let id = self.tags.intern(target);
        let pre = self.push_node(NodeKind::Pi, id, Some(data));
        self.close_leaf(pre);
        pre
    }

    /// Finalises the encoding. Panics if elements are still open.
    pub fn finish(self) -> Doc {
        assert!(
            self.open.is_empty(),
            "finish with {} open element(s)",
            self.open.len()
        );
        debug_assert_eq!(self.next_post as usize, self.post.len());
        Doc {
            post: Bat::from_tail(0, self.post),
            level: self.level,
            kind: self.kind,
            tag: self.tag,
            parent: self.parent,
            content: self.content,
            arena: self.arena,
            tags: self.tags,
            height: self.height,
        }
    }
}

impl Default for EncodingBuilder {
    fn default() -> Self {
        EncodingBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1/2 document: a(b(c),d,e(f(g,h),i(j))).
    pub(crate) fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    #[test]
    fn figure2_pre_post_table() {
        let doc = figure1();
        // pre/post exactly as printed in Figure 2.
        let expected: [(&str, Pre, Post); 10] = [
            ("a", 0, 9),
            ("b", 1, 1),
            ("c", 2, 0),
            ("d", 3, 2),
            ("e", 4, 8),
            ("f", 5, 5),
            ("g", 6, 3),
            ("h", 7, 4),
            ("i", 8, 7),
            ("j", 9, 6),
        ];
        assert_eq!(doc.len(), 10);
        for (name, pre, post) in expected {
            assert_eq!(doc.tag_name(pre), Some(name), "tag at pre {pre}");
            assert_eq!(doc.post(pre), post, "post({name})");
        }
    }

    #[test]
    fn figure2_levels_and_height() {
        let doc = figure1();
        let levels: Vec<Level> = doc.pres().map(|p| doc.level(p)).collect();
        assert_eq!(levels, [0, 1, 2, 1, 1, 2, 3, 3, 2, 3]);
        assert_eq!(doc.height(), 3);
    }

    #[test]
    fn fragment_sizes_match_columns_and_survive_persistence() {
        let doc = Doc::from_xml("<a x='1'><b/><b/><c>t</c><b y='2'/></a>").expect("fixture parses");
        let count = |d: &Doc, name: &str| {
            d.tag_id(name)
                .map(|t| d.tags().element_count(t))
                .unwrap_or(0)
        };
        assert_eq!(count(&doc, "b"), 3);
        assert_eq!(count(&doc, "c"), 1);
        assert_eq!(count(&doc, "a"), 1);
        // Attribute names intern but contribute no element occurrences.
        assert_eq!(count(&doc, "x"), 0);
        for (t, _) in doc.tags().iter() {
            assert_eq!(doc.tags().element_count(t), doc.elements_with_tag(t).len());
        }
        // The decode path recounts from the raw columns.
        let reloaded = Doc::from_bytes(&doc.to_bytes()).expect("roundtrip decodes");
        for (t, name) in doc.tags().iter() {
            assert_eq!(
                reloaded.tags().element_count(t),
                doc.tags().element_count(t),
                "{name}"
            );
        }
    }

    #[test]
    fn equation_1_exact_on_figure1() {
        let doc = figure1();
        // Manually counted descendant set sizes.
        let expected = [9u32, 1, 0, 0, 5, 2, 0, 0, 1, 0];
        for p in doc.pres() {
            assert_eq!(
                doc.subtree_size(p),
                expected[p as usize],
                "subtree of pre {p}"
            );
        }
    }

    #[test]
    fn parents_follow_tree() {
        let doc = figure1();
        let parents: Vec<Pre> = doc.pres().map(|p| doc.parent(p)).collect();
        assert_eq!(parents, [NO_PARENT, 0, 1, 0, 0, 4, 5, 5, 4, 8]);
    }

    #[test]
    fn attributes_are_plane_nodes_after_element() {
        let doc = Doc::from_xml(r#"<a x="1" y="2"><b/></a>"#).unwrap();
        // pre order: a, @x, @y, b
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.kind(0), NodeKind::Element);
        assert_eq!(doc.kind(1), NodeKind::Attribute);
        assert_eq!(doc.kind(2), NodeKind::Attribute);
        assert_eq!(doc.kind(3), NodeKind::Element);
        assert_eq!(doc.tag_name(1), Some("x"));
        assert_eq!(doc.content(1), Some("1"));
        // Attributes lie inside a's descendant region.
        assert!(doc.post(1) < doc.post(0));
        assert!(
            doc.post(2) < doc.post(3),
            "attributes close before following siblings"
        );
    }

    #[test]
    fn text_comment_pi_nodes_encoded() {
        let doc = Doc::from_xml("<a>hi<!--c--><?t d?></a>").unwrap();
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.kind(1), NodeKind::Text);
        assert_eq!(doc.content(1), Some("hi"));
        assert_eq!(doc.kind(2), NodeKind::Comment);
        assert_eq!(doc.kind(3), NodeKind::Pi);
        assert_eq!(doc.tag_name(3), Some("t"));
    }

    #[test]
    fn post_is_permutation_of_pre() {
        let doc = figure1();
        let mut posts: Vec<Post> = doc.post_column().to_vec();
        posts.sort_unstable();
        let expected: Vec<Post> = (0..doc.len() as Post).collect();
        assert_eq!(posts, expected);
    }

    #[test]
    fn guaranteed_descendants_underestimates_by_at_most_level() {
        let doc = figure1();
        for p in doc.pres() {
            let exact = doc.subtree_size(p);
            let guess = doc.guaranteed_descendants(p);
            assert!(guess <= exact);
            // Without saturation the gap is exactly level(p); saturation
            // (post < pre on early leaves) can only shrink it.
            assert!(exact - guess <= doc.level(p) as u32);
            if doc.post(p) >= p {
                assert_eq!(exact - guess, doc.level(p) as u32);
            }
        }
    }

    #[test]
    fn descendant_window_contains_all_descendants() {
        let doc = figure1();
        for c in doc.pres() {
            let ((pl, ph), (ql, qh)) = doc.descendant_window(c);
            for v in doc.pres() {
                let is_desc = v > c && doc.post(v) < doc.post(c);
                if is_desc {
                    assert!(v >= pl && v <= ph, "pre window misses {v} under {c}");
                    assert!(doc.post(v) >= ql && doc.post(v) <= qh);
                }
            }
        }
    }

    #[test]
    fn roundtrip_through_document() {
        let xml = r#"<site><people><person id="p0"><name>Jo</name></person></people><open_auctions/></site>"#;
        let doc = Doc::from_xml(xml).unwrap();
        let rebuilt = doc.to_document();
        assert_eq!(rebuilt.to_xml(), xml);
    }

    #[test]
    fn builder_direct_matches_from_xml() {
        let via_xml = Doc::from_xml("<a><b>t</b><c/></a>").unwrap();
        let mut b = EncodingBuilder::new();
        b.open_element("a");
        b.open_element("b");
        b.text("t");
        b.close_element();
        b.open_element("c");
        b.close_element();
        b.close_element();
        let direct = b.finish();
        assert_eq!(via_xml.post_column(), direct.post_column());
        assert_eq!(via_xml.len(), direct.len());
    }

    #[test]
    fn without_content_drops_arena() {
        let mut b = EncodingBuilder::without_content();
        b.open_element("a");
        b.text("payload");
        b.close_element();
        let doc = b.finish();
        assert_eq!(doc.content(1), None);
        assert_eq!(doc.kind(1), NodeKind::Text);
    }

    #[test]
    #[should_panic(expected = "open element")]
    fn close_without_open_panics() {
        let mut b = EncodingBuilder::new();
        b.close_element();
    }

    #[test]
    #[should_panic(expected = "finish with")]
    fn finish_with_open_panics() {
        let mut b = EncodingBuilder::new();
        b.open_element("a");
        let _ = b.finish();
    }

    #[test]
    fn kind_counts_tally() {
        let doc = Doc::from_xml(r#"<a x="1">t<!--c--><?p d?><b/></a>"#).unwrap();
        assert_eq!(doc.kind_counts(), (2, 1, 1, 1, 1));
    }

    #[test]
    fn elements_with_tag_in_document_order() {
        let doc = Doc::from_xml("<a><b/><a><b/></a></a>").unwrap();
        let b_id = doc.tag_id("b").unwrap();
        assert_eq!(doc.elements_with_tag(b_id), vec![1, 3]);
    }

    #[test]
    fn children_iterator_skips_subtrees() {
        let doc = figure1();
        // a's children: b (1), d (3), e (4) — skipping over c inside b.
        assert_eq!(doc.children(0).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(doc.children(4).collect::<Vec<_>>(), vec![5, 8]); // f, i
        assert_eq!(doc.children(2).count(), 0); // leaf
    }

    #[test]
    fn descendants_iterator_is_contiguous_run() {
        let doc = figure1();
        assert_eq!(doc.descendants(4).collect::<Vec<_>>(), vec![5, 6, 7, 8, 9]);
        assert_eq!(doc.descendants(9).count(), 0);
    }

    #[test]
    fn ancestors_iterator_bottom_up() {
        let doc = figure1();
        assert_eq!(doc.ancestors(6).collect::<Vec<_>>(), vec![5, 4, 0]); // f, e, a
        assert_eq!(doc.ancestors(0).count(), 0);
    }

    #[test]
    fn validate_accepts_well_formed_encodings() {
        assert_eq!(figure1().validate(), Ok(()));
        let doc = Doc::from_xml(r#"<a x="1">t<!--c--><b><c/></b></a>"#).unwrap();
        assert_eq!(doc.validate(), Ok(()));
        assert_eq!(EncodingBuilder::new().finish().validate(), Ok(()));
    }

    #[test]
    fn validate_detects_corruption() {
        let doc = figure1();
        // Corrupt via the persistence layer: flip bytes and re-decode.
        let good = doc.to_bytes();
        // post column starts at offset 16; make two entries collide.
        let mut bad = good.to_vec();
        bad[16] = bad[20];
        bad[17] = bad[21];
        bad[18] = bad[22];
        bad[19] = bad[23];
        if let Ok(decoded) = Doc::from_bytes(&bad) {
            assert!(decoded.validate().is_err(), "corruption must be detected");
        }
    }
}
