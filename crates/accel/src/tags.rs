//! Tag-name interning.
//!
//! Tag names are interned into dense `u32` ids so the `tag` column of the
//! `doc` table is a fixed-width integer column — the shape the paper's DB2
//! baseline indexes via concatenated `(pre, post, tag)` keys, and the shape
//! the tag-name fragmentation strategy (§6) partitions on.

use std::collections::HashMap;

/// A dense identifier for an interned tag (or attribute) name.
pub type TagId = u32;

/// Sentinel tag id for nodes without a name (text, comments).
pub const NO_TAG: TagId = u32::MAX;

/// Bidirectional map between tag names and [`TagId`]s.
///
/// Besides the name↔id mapping, the interner tracks how many *element*
/// nodes carry each tag — the per-tag fragment sizes the §6 tag-name
/// fragmentation strategy partitions on. Keeping the counts here makes
/// them an O(1) lookup at query-planning time, with no need to build the
/// fragment index itself first.
#[derive(Debug, Clone, Default)]
pub struct TagInterner {
    by_name: HashMap<String, TagId>,
    names: Vec<String>,
    element_counts: Vec<u32>,
}

impl TagInterner {
    /// An empty interner.
    pub fn new() -> TagInterner {
        TagInterner::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as TagId;
        assert!(id != NO_TAG, "tag space exhausted");
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.element_counts.push(0);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.by_name.get(name).copied()
    }

    /// The name behind `id` (`None` for [`NO_TAG`] or unknown ids).
    pub fn name(&self, id: TagId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as TagId, n.as_str()))
    }

    /// How many element nodes carry `id` — the size of `id`'s §6 tag
    /// fragment (0 for [`NO_TAG`], unknown ids, and attribute-only names).
    pub fn element_count(&self, id: TagId) -> usize {
        self.element_counts
            .get(id as usize)
            .map(|&c| c as usize)
            .unwrap_or(0)
    }

    /// Sum of all fragment sizes (= number of element nodes).
    pub fn total_elements(&self) -> usize {
        self.element_counts.iter().map(|&c| c as usize).sum()
    }

    /// Records one element occurrence of `id` (no-op for [`NO_TAG`]).
    pub(crate) fn record_element(&mut self, id: TagId) {
        if let Some(c) = self.element_counts.get_mut(id as usize) {
            *c += 1;
        }
    }

    /// Zeroes all element counts (before a recount from raw columns).
    pub(crate) fn clear_element_counts(&mut self) {
        self.element_counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("person");
        let b = t.intern("person");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = TagInterner::new();
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("b"), 1);
        assert_eq!(t.intern("c"), 2);
    }

    #[test]
    fn name_roundtrip() {
        let mut t = TagInterner::new();
        let id = t.intern("bidder");
        assert_eq!(t.name(id), Some("bidder"));
        assert_eq!(t.get("bidder"), Some(id));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.name(NO_TAG), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = TagInterner::new();
        t.intern("x");
        t.intern("y");
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, [(0, "x"), (1, "y")]);
    }

    #[test]
    fn element_counts_track_recorded_occurrences() {
        let mut t = TagInterner::new();
        let x = t.intern("x");
        let y = t.intern("y");
        t.record_element(x);
        t.record_element(x);
        t.record_element(y);
        assert_eq!(t.element_count(x), 2);
        assert_eq!(t.element_count(y), 1);
        assert_eq!(t.total_elements(), 3);
        // Unknown ids and the sentinel count as zero, silently.
        assert_eq!(t.element_count(99), 0);
        assert_eq!(t.element_count(NO_TAG), 0);
        t.record_element(NO_TAG);
        assert_eq!(t.total_elements(), 3);
        t.clear_element_counts();
        assert_eq!(t.total_elements(), 0);
    }
}
