//! Context node sequences.

use crate::{Doc, Pre};

/// A context node sequence: duplicate-free pre ranks in document order.
///
/// XPath requires step results to be duplicate-free and document-ordered;
/// because the staircase join *produces* exactly that shape, a `Context`
/// can be fed into the next step without any post-processing — property
/// (4) of the basic algorithm (§3.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Context {
    pres: Vec<Pre>,
}

impl Context {
    /// An empty context.
    pub fn empty() -> Context {
        Context { pres: Vec::new() }
    }

    /// The singleton context `(v)`.
    pub fn singleton(v: Pre) -> Context {
        Context { pres: vec![v] }
    }

    /// Builds a context from arbitrary pre ranks: sorts and deduplicates.
    pub fn from_unsorted(mut pres: Vec<Pre>) -> Context {
        pres.sort_unstable();
        pres.dedup();
        Context { pres }
    }

    /// Wraps a vector that is already sorted and duplicate-free.
    ///
    /// The invariant is checked in debug builds; production callers are the
    /// join operators themselves, whose outputs carry the invariant by
    /// construction.
    pub fn from_sorted(pres: Vec<Pre>) -> Context {
        debug_assert!(
            pres.windows(2).all(|w| w[0] < w[1]),
            "context not sorted/unique"
        );
        Context { pres }
    }

    /// The pre ranks as a slice (document order).
    #[inline]
    pub fn as_slice(&self) -> &[Pre] {
        &self.pres
    }

    /// Number of context nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.pres.len()
    }

    /// `true` for the empty context.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pres.is_empty()
    }

    /// Iterates the pre ranks in document order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Pre> + '_ {
        self.pres.iter().copied()
    }

    /// Consumes the context, yielding the underlying vector.
    pub fn into_vec(self) -> Vec<Pre> {
        self.pres
    }

    /// Keeps only nodes whose tag matches `tag` (the *name test*).
    pub fn name_test(&self, doc: &Doc, tag: &str) -> Context {
        match doc.tag_id(tag) {
            Some(id) => Context {
                pres: self
                    .pres
                    .iter()
                    .copied()
                    .filter(|&p| doc.tag(p) == id && doc.kind(p) == crate::NodeKind::Element)
                    .collect(),
            },
            None => Context::empty(),
        }
    }

    /// `true` if `v` is a member (binary search).
    pub fn contains(&self, v: Pre) -> bool {
        self.pres.binary_search(&v).is_ok()
    }
}

impl From<Vec<Pre>> for Context {
    fn from(pres: Vec<Pre>) -> Context {
        Context::from_unsorted(pres)
    }
}

impl FromIterator<Pre> for Context {
    fn from_iter<T: IntoIterator<Item = Pre>>(iter: T) -> Context {
        Context::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Context {
    type Item = Pre;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Pre>>;

    fn into_iter(self) -> Self::IntoIter {
        self.pres.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let c = Context::from_unsorted(vec![5, 1, 3, 1, 5]);
        assert_eq!(c.as_slice(), &[1, 3, 5]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(Context::singleton(7).as_slice(), &[7]);
        assert!(Context::empty().is_empty());
    }

    #[test]
    fn contains_uses_order() {
        let c = Context::from_unsorted(vec![2, 4, 6]);
        assert!(c.contains(4));
        assert!(!c.contains(5));
    }

    #[test]
    fn name_test_filters() {
        let doc = Doc::from_xml("<a><b/><c/><b/></a>").unwrap();
        let all: Context = doc.pres().collect();
        let bs = all.name_test(&doc, "b");
        assert_eq!(bs.as_slice(), &[1, 3]);
        assert!(all.name_test(&doc, "zzz").is_empty());
    }

    #[test]
    fn name_test_excludes_attributes_with_same_name() {
        let doc = Doc::from_xml(r#"<a b="1"><b/></a>"#).unwrap();
        let all: Context = doc.pres().collect();
        // @b is pre 1, <b> is pre 2; only the element passes.
        assert_eq!(all.name_test(&doc, "b").as_slice(), &[2]);
    }

    #[test]
    fn from_iterator() {
        let c: Context = [9u32, 3, 9, 1].into_iter().collect();
        assert_eq!(c.as_slice(), &[1, 3, 9]);
    }
}
