//! XPath axes as pre/post-plane predicates and regions.
//!
//! For any context node the four partitioning axes split the plane into
//! rectangular quadrants (paper Figures 1 and 2); the remaining axes are
//! super-/subsets of those quadrants or are recovered through the `parent`
//! and `level` columns. The [`Axis::contains`] predicate here is the
//! *reference semantics*: deliberately simple, obviously correct, and used
//! by the naive baseline and by every property test that validates the
//! staircase join.

use crate::doc::{Doc, NodeKind};
use crate::{Post, Pre};

/// The XPath axes supported by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The context node itself.
    SelfAxis,
    /// Direct children.
    Child,
    /// The parent node.
    Parent,
    /// All nodes in the subtree below the context node.
    Descendant,
    /// `descendant` plus self.
    DescendantOrSelf,
    /// All nodes on the path from the context node to the root.
    Ancestor,
    /// `ancestor` plus self.
    AncestorOrSelf,
    /// Nodes after the context node in document order, minus descendants.
    Following,
    /// Nodes before the context node in document order, minus ancestors.
    Preceding,
    /// Following siblings (same parent, later in document order).
    FollowingSibling,
    /// Preceding siblings.
    PrecedingSibling,
    /// Attribute nodes of the context node.
    Attribute,
}

impl Axis {
    /// All twelve supported axes.
    pub const ALL: [Axis; 12] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Parent,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Attribute,
    ];

    /// The four axes that partition the document (plus the context node).
    pub const PARTITIONING: [Axis; 4] = [
        Axis::Preceding,
        Axis::Descendant,
        Axis::Ancestor,
        Axis::Following,
    ];

    /// The XPath name of the axis (`ancestor-or-self`, …).
    pub fn name(&self) -> &'static str {
        match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
        }
    }

    /// Parses an XPath axis name.
    pub fn parse(name: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Reference semantics: is `v` reachable from context node `c` along
    /// this axis?
    ///
    /// Every axis except `attribute` excludes attribute nodes from its
    /// results (XPath semantics; paper §3, "no axis produces attribute
    /// nodes").
    pub fn contains(&self, doc: &Doc, c: Pre, v: Pre) -> bool {
        let is_attr = doc.kind(v) == NodeKind::Attribute;
        match self {
            Axis::Attribute => is_attr && doc.parent(v) == c,
            _ if is_attr => false,
            Axis::SelfAxis => v == c,
            Axis::Child => doc.parent(v) == c,
            Axis::Parent => doc.parent(c) == v,
            Axis::Descendant => v > c && doc.post(v) < doc.post(c),
            Axis::DescendantOrSelf => v >= c && doc.post(v) <= doc.post(c),
            Axis::Ancestor => v < c && doc.post(v) > doc.post(c),
            Axis::AncestorOrSelf => v <= c && doc.post(v) >= doc.post(c),
            Axis::Following => v > c && doc.post(v) > doc.post(c),
            Axis::Preceding => v < c && doc.post(v) < doc.post(c),
            Axis::FollowingSibling => doc.parent(v) == doc.parent(c) && v != c && v > c,
            Axis::PrecedingSibling => doc.parent(v) == doc.parent(c) && v != c && v < c,
        }
    }

    /// `true` for the axes whose result region is a plane rectangle.
    pub fn is_partitioning(&self) -> bool {
        matches!(
            self,
            Axis::Descendant | Axis::Ancestor | Axis::Following | Axis::Preceding
        )
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rectangle in the pre/post plane: the document region one of the
/// partitioning axes selects for a single context node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive pre-rank bounds.
    pub pre: (Pre, Pre),
    /// Inclusive post-rank bounds.
    pub post: (Post, Post),
}

impl Region {
    /// The region of `axis` for context node `c`. Returns `None` for
    /// non-partitioning axes (their result is not a rectangle).
    pub fn of(doc: &Doc, axis: Axis, c: Pre) -> Option<Region> {
        let max_pre = doc.len().saturating_sub(1) as Pre;
        let max_post = max_pre; // post ranks cover the same range

        // Inclusive bounds strictly below/above x; (1, 0) encodes "empty".
        let below = |x: u32| if x == 0 { (1, 0) } else { (0, x - 1) };
        let above = |x: u32, max: u32| if x >= max { (1, 0) } else { (x + 1, max) };
        let (cp, cq) = (c, doc.post(c));
        let r = match axis {
            Axis::Descendant => Region {
                pre: above(cp, max_pre),
                post: below(cq),
            },
            Axis::Ancestor => Region {
                pre: below(cp),
                post: above(cq, max_post),
            },
            Axis::Following => Region {
                pre: above(cp, max_pre),
                post: above(cq, max_post),
            },
            Axis::Preceding => Region {
                pre: below(cp),
                post: below(cq),
            },
            _ => return None,
        };
        Some(r)
    }

    /// `true` if node `v` (with post rank `q`) lies in the rectangle.
    #[inline]
    pub fn contains(&self, v: Pre, q: Post) -> bool {
        self.pre.0 <= v && v <= self.pre.1 && self.post.0 <= q && q <= self.post.1
    }

    /// `true` if the rectangle can contain no node at all.
    pub fn is_empty(&self) -> bool {
        self.pre.0 > self.pre.1 || self.post.0 > self.post.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    fn names(doc: &Doc, pres: impl IntoIterator<Item = Pre>) -> Vec<String> {
        pres.into_iter()
            .map(|p| doc.tag_name(p).unwrap().to_string())
            .collect()
    }

    fn axis_result(doc: &Doc, axis: Axis, c: Pre) -> Vec<Pre> {
        doc.pres().filter(|&v| axis.contains(doc, c, v)).collect()
    }

    #[test]
    fn figure1_regions_from_f() {
        let doc = figure1();
        let f = 5;
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::Preceding, f)),
            ["b", "c", "d"]
        );
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::Descendant, f)),
            ["g", "h"]
        );
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::Ancestor, f)),
            ["a", "e"]
        );
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::Following, f)),
            ["i", "j"]
        );
    }

    #[test]
    fn figure2_ancestors_of_g() {
        let doc = figure1();
        let g = 6;
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::Ancestor, g)),
            ["a", "e", "f"]
        );
    }

    #[test]
    fn four_axes_partition_document() {
        let doc = figure1();
        for c in doc.pres() {
            let mut covered = vec![0u8; doc.len()];
            covered[c as usize] += 1;
            for axis in Axis::PARTITIONING {
                for v in axis_result(&doc, axis, c) {
                    covered[v as usize] += 1;
                }
            }
            assert!(
                covered.iter().all(|&n| n == 1),
                "partition broken at context {c}"
            );
        }
    }

    #[test]
    fn region_rectangles_match_predicates() {
        let doc = figure1();
        for c in doc.pres() {
            for axis in Axis::PARTITIONING {
                let region = Region::of(&doc, axis, c).unwrap();
                for v in doc.pres() {
                    // Region covers attributes too; Figure 1 has none.
                    assert_eq!(
                        region.contains(v, doc.post(v)),
                        axis.contains(&doc, c, v),
                        "{axis} c={c} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn sibling_axes() {
        let doc = figure1();
        // b(1), d(3), e(4) are the children of a.
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::FollowingSibling, 1)),
            ["d", "e"]
        );
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::PrecedingSibling, 4)),
            ["b", "d"]
        );
    }

    #[test]
    fn child_parent_self() {
        let doc = figure1();
        assert_eq!(names(&doc, axis_result(&doc, Axis::Child, 4)), ["f", "i"]);
        assert_eq!(names(&doc, axis_result(&doc, Axis::Parent, 5)), ["e"]);
        assert_eq!(axis_result(&doc, Axis::SelfAxis, 7), vec![7]);
        assert_eq!(axis_result(&doc, Axis::Parent, 0), Vec::<Pre>::new());
    }

    #[test]
    fn or_self_variants() {
        let doc = figure1();
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::AncestorOrSelf, 6)),
            ["a", "e", "f", "g"]
        );
        assert_eq!(
            names(&doc, axis_result(&doc, Axis::DescendantOrSelf, 5)),
            ["f", "g", "h"]
        );
    }

    #[test]
    fn attributes_filtered_from_all_axes_but_attribute() {
        let doc = Doc::from_xml(r#"<a x="1"><b y="2"/><c/></a>"#).unwrap();
        // pre: a=0, @x=1, b=2, @y=3, c=4
        for axis in Axis::ALL {
            if axis == Axis::Attribute {
                continue;
            }
            for c in doc.pres() {
                assert!(
                    !axis.contains(&doc, c, 1) && !axis.contains(&doc, c, 3),
                    "axis {axis} leaked an attribute for context {c}"
                );
            }
        }
        assert_eq!(axis_result(&doc, Axis::Attribute, 0), vec![1]);
        assert_eq!(axis_result(&doc, Axis::Attribute, 2), vec![3]);
        assert_eq!(axis_result(&doc, Axis::Attribute, 4), Vec::<Pre>::new());
    }

    #[test]
    fn axis_name_roundtrip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.name()), Some(axis));
        }
        assert_eq!(Axis::parse("bogus"), None);
    }

    #[test]
    fn empty_region_detection() {
        let doc = figure1();
        // Descendants of the last node (j, pre 9, a leaf).
        let r = Region::of(&doc, Axis::Descendant, 9).unwrap();
        assert!(doc.pres().all(|v| !r.contains(v, doc.post(v))));
        // Ancestors of the root.
        let r = Region::of(&doc, Axis::Ancestor, 0).unwrap();
        assert!(doc.pres().all(|v| !r.contains(v, doc.post(v))));
    }

    /// Figure 7: the empty-region lemmas the skipping techniques rest on.
    #[test]
    fn figure7_empty_regions() {
        let doc = figure1();
        for a in doc.pres() {
            for b in doc.pres() {
                if b <= a {
                    continue;
                }
                if Axis::Descendant.contains(&doc, a, b) {
                    // (a) b descends from a: no node may follow a yet be an
                    // ancestor of b (region S), nor precede a yet be an
                    // ancestor of b... region U: ancestors of b that precede a.
                    for v in doc.pres() {
                        let anc_of_b = Axis::Ancestor.contains(&doc, b, v);
                        assert!(
                            !(anc_of_b && Axis::Following.contains(&doc, a, v)),
                            "region S must be empty (a={a}, b={b}, v={v})"
                        );
                        assert!(
                            !(anc_of_b && Axis::Preceding.contains(&doc, a, v)),
                            "region U must be empty (a={a}, b={b}, v={v})"
                        );
                    }
                } else if Axis::Following.contains(&doc, a, b) {
                    // (b) a, b on preceding/following axis: no common
                    // descendants (region Z).
                    for v in doc.pres() {
                        assert!(
                            !(Axis::Descendant.contains(&doc, a, v)
                                && Axis::Descendant.contains(&doc, b, v)),
                            "region Z must be empty (a={a}, b={b}, v={v})"
                        );
                    }
                }
            }
        }
    }
}
