//! # staircase-accel
//!
//! The **XPath accelerator** document encoding (Grust, SIGMOD 2002) that the
//! staircase join operates on: every document node `v` is mapped to its
//! preorder and postorder traversal ranks,
//!
//! ```text
//! v  ↦  ⟨pre(v), post(v)⟩,
//! ```
//!
//! placing the document on a two-dimensional *pre/post plane* in which the
//! four partitioning XPath axes (`preceding`, `descendant`, `ancestor`,
//! `following`) of any node are rectangular regions (paper Figure 2).
//!
//! The crate provides:
//!
//! * [`Doc`] — the encoded document ("the `doc` table"): dense columns for
//!   `post`, `level`, `kind`, `tag`, `parent`, with `pre` as a virtual
//!   (void) column, stored via [`staircase_storage::Bat`].
//! * [`EncodingBuilder`] — a streaming loader; [`Doc::from_xml`] /
//!   [`Doc::from_document`] wire it to the XML substrate.
//! * [`Axis`] / [`Region`] — axis semantics as plane predicates and
//!   rectangles; the *reference* implementation baselines and property
//!   tests are checked against.
//! * [`Context`] — a duplicate-free, document-ordered context sequence.
//! * Equation (1) machinery: [`Doc::subtree_size`] (exact) and the
//!   height-bounded descendant window used by both the estimation-based
//!   skipping and the tree-aware baseline predicate (paper line 7).

#![warn(missing_docs)]

mod context;
mod doc;
mod persist;
mod region;
mod tags;

pub use context::Context;
pub use doc::{Doc, EncodingBuilder, NodeKind, NO_PARENT};
pub use persist::DecodeError;
pub use region::{Axis, Region};
pub use tags::{TagId, TagInterner, NO_TAG};

/// A preorder rank — the primary node identifier throughout the system.
pub type Pre = u32;
/// A postorder rank.
pub type Post = u32;
/// A node's depth below the root (root has level 0).
pub type Level = u16;
