//! Binary persistence for encoded documents.
//!
//! The paper assumes documents are encoded once ("at document loading
//! time") and queried many times; this module makes the encoded form a
//! first-class storable artifact so loading a multi-million-node plane is
//! a bulk column read instead of an XML re-parse.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "SCJ1" | u32 version | u32 n | u32 height
//! post[n]  : u32        level[n] : u16
//! kind[n]  : u8         tag[n]   : u32
//! parent[n]: u32
//! tags     : u32 count, then (u32 len, bytes)*
//! arena    : u32 count, then (u32 len, bytes)*
//! content  : u32 flag (0 = no content column), then content[n] : u32
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::doc::Doc;
use crate::tags::TagInterner;

const MAGIC: &[u8; 4] = b"SCJ1";
const VERSION: u32 = 1;

/// Errors produced when decoding a persisted document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `SCJ1` magic.
    BadMagic,
    /// Format version not understood by this build.
    UnsupportedVersion(u32),
    /// Input ended prematurely or a length field is inconsistent.
    Truncated,
    /// A string section is not valid UTF-8.
    BadString,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a staircase document (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadString => write!(f, "invalid UTF-8 in string section"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Doc {
    /// Serializes the encoding into a byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let mut buf = BytesMut::with_capacity(16 + n * 15);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(n as u32);
        buf.put_u32_le(self.height() as u32);
        for v in self.pres() {
            buf.put_u32_le(self.post(v));
        }
        for v in self.pres() {
            buf.put_u16_le(self.level(v));
        }
        buf.put_slice(self.kind_column());
        for &t in self.tag_column() {
            buf.put_u32_le(t);
        }
        for v in self.pres() {
            buf.put_u32_le(self.parent(v));
        }
        put_strings(&mut buf, self.tags().iter().map(|(_, s)| s));
        let (arena, content) = self.content_columns();
        put_strings(&mut buf, arena.iter().map(String::as_str));
        if arena.is_empty() {
            // No retained content: the column is all-sentinel, skip it.
            buf.put_u32_le(0);
        } else {
            buf.put_u32_le(1);
            for &c in content {
                buf.put_u32_le(c);
            }
        }
        buf.freeze()
    }

    /// Decodes a document previously written by [`Doc::to_bytes`].
    pub fn from_bytes(mut input: &[u8]) -> Result<Doc, DecodeError> {
        if input.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        input.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = input.get_u32_le();
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let n = input.get_u32_le() as usize;
        let height = input.get_u32_le() as u16;

        let post = read_u32s(&mut input, n)?;
        let level = read_u16s(&mut input, n)?;
        let kind = read_u8s(&mut input, n)?;
        let tag = read_u32s(&mut input, n)?;
        let parent = read_u32s(&mut input, n)?;
        let tag_names = read_strings(&mut input)?;
        let arena = read_strings(&mut input)?;
        if input.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let content = if input.get_u32_le() == 1 {
            read_u32s(&mut input, n)?
        } else {
            vec![u32::MAX; n]
        };

        let mut tags = TagInterner::new();
        for name in &tag_names {
            tags.intern(name);
        }
        Ok(Doc::from_raw_parts(
            post, level, kind, tag, parent, content, arena, tags, height,
        ))
    }
}

fn put_strings<'a>(buf: &mut BytesMut, strings: impl Iterator<Item = &'a str>) {
    let items: Vec<&str> = strings.collect();
    buf.put_u32_le(items.len() as u32);
    for s in items {
        buf.put_u32_le(s.len() as u32);
        buf.put_slice(s.as_bytes());
    }
}

fn read_strings(input: &mut &[u8]) -> Result<Vec<String>, DecodeError> {
    if input.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let count = input.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if input.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let len = input.get_u32_le() as usize;
        if input.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = input.split_at(len);
        let s = std::str::from_utf8(head).map_err(|_| DecodeError::BadString)?;
        out.push(s.to_string());
        *input = rest;
    }
    Ok(out)
}

fn read_u32s(input: &mut &[u8], n: usize) -> Result<Vec<u32>, DecodeError> {
    if input.remaining() < n * 4 {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(input.get_u32_le());
    }
    Ok(out)
}

fn read_u16s(input: &mut &[u8], n: usize) -> Result<Vec<u16>, DecodeError> {
    if input.remaining() < n * 2 {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(input.get_u16_le());
    }
    Ok(out)
}

fn read_u8s(input: &mut &[u8], n: usize) -> Result<Vec<u8>, DecodeError> {
    if input.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    let out = head.to_vec();
    *input = rest;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Doc {
        Doc::from_xml(r#"<site><person id="p0"><name>Jo &amp; Co</name></person><x/></site>"#)
            .unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        let doc = sample();
        let bytes = doc.to_bytes();
        let back = Doc::from_bytes(&bytes).unwrap();
        assert_eq!(doc.len(), back.len());
        assert_eq!(doc.post_column(), back.post_column());
        assert_eq!(doc.kind_column(), back.kind_column());
        assert_eq!(doc.tag_column(), back.tag_column());
        assert_eq!(doc.height(), back.height());
        for v in doc.pres() {
            assert_eq!(doc.level(v), back.level(v));
            assert_eq!(doc.parent(v), back.parent(v));
            assert_eq!(doc.tag_name(v), back.tag_name(v));
            assert_eq!(doc.content(v), back.content(v));
        }
    }

    #[test]
    fn roundtrip_preserves_documents() {
        let doc = sample();
        let back = Doc::from_bytes(&doc.to_bytes()).unwrap();
        assert_eq!(doc.to_document().to_xml(), back.to_document().to_xml());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Doc::from_bytes(b"NOPE").unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            Doc::from_bytes(b"NOPE0000000000000000").unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn unsupported_version_rejected() {
        let doc = sample();
        let mut bytes = doc.to_bytes().to_vec();
        bytes[4] = 99;
        assert_eq!(
            Doc::from_bytes(&bytes).unwrap_err(),
            DecodeError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let doc = sample();
        let bytes = doc.to_bytes();
        // Chop at a sample of byte positions; every prefix must fail
        // cleanly, never panic.
        for cut in (0..bytes.len() - 1).step_by(7) {
            let err = Doc::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn empty_document_roundtrips() {
        let doc = crate::EncodingBuilder::new().finish();
        let back = Doc::from_bytes(&doc.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
