//! Property tests for the XPath-accelerator encoding: the paper's plane
//! identities must hold on arbitrary trees, not just the running example.

use proptest::prelude::*;
use staircase_accel::{Axis, Context, Doc, EncodingBuilder, NodeKind};

fn arb_doc() -> impl Strategy<Value = Doc> {
    // Sequence of build operations executed against an EncodingBuilder:
    // 0 => open element, 1 => close (if possible), 2 => text leaf,
    // 3 => attribute (if element open), 4 => comment.
    (proptest::collection::vec(0u8..5, 1..200), 0usize..4).prop_map(|(ops, tag_salt)| {
        let tags = ["a", "b", "c", "d"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        let mut just_opened = true;
        let mut just_text = false;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    b.open_element(tags[(i + tag_salt) % tags.len()]);
                    depth += 1;
                    just_opened = true;
                    just_text = false;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                    just_opened = false;
                    just_text = false;
                }
                2 if !just_text => {
                    // The data model forbids adjacent text siblings.
                    b.text("t");
                    just_opened = false;
                    just_text = true;
                }
                3 if just_opened => {
                    // Attributes may only directly follow a start tag.
                    b.attribute(tags[i % tags.len()], "v");
                }
                4 => {
                    b.comment("c");
                    just_opened = false;
                    just_text = false;
                }
                _ => {}
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

/// Brute-force descendant count straight from the region predicate.
fn brute_descendants(doc: &Doc, c: u32) -> u32 {
    doc.pres()
        .filter(|&v| v > c && doc.post(v) < doc.post(c))
        .count() as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// post is a permutation of 0..n.
    #[test]
    fn post_is_permutation(doc in arb_doc()) {
        let mut posts = doc.post_column().to_vec();
        posts.sort_unstable();
        prop_assert!(posts.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    /// Equation (1) is exact for every node, attributes included.
    #[test]
    fn equation_1_exact(doc in arb_doc()) {
        for v in doc.pres() {
            prop_assert_eq!(doc.subtree_size(v), brute_descendants(&doc, v), "node {}", v);
        }
    }

    /// level(v) ≤ h for all v, and some node attains h.
    #[test]
    fn height_bounds_levels(doc in arb_doc()) {
        let h = doc.height();
        prop_assert!(doc.pres().all(|v| doc.level(v) <= h));
        prop_assert!(doc.pres().any(|v| doc.level(v) == h));
    }

    /// The four partitioning axes plus self cover each non-attribute node
    /// exactly once (attributes belong to no partitioning axis).
    #[test]
    fn axes_partition_plane(doc in arb_doc()) {
        // Check a few context nodes to keep runtime sane.
        let step = (doc.len() / 5).max(1);
        for c in (0..doc.len() as u32).step_by(step) {
            for v in doc.pres() {
                let hits = Axis::PARTITIONING
                    .iter()
                    .filter(|a| a.contains(&doc, c, v))
                    .count()
                    + usize::from(v == c && doc.kind(v) != NodeKind::Attribute);
                let expected = usize::from(doc.kind(v) != NodeKind::Attribute);
                prop_assert_eq!(hits, expected, "context {} node {}", c, v);
            }
        }
    }

    /// parent(v) is the tightest enclosing node: an ancestor at level-1.
    #[test]
    fn parent_column_consistent(doc in arb_doc()) {
        for v in doc.pres() {
            let p = doc.parent(v);
            if v == 0 {
                prop_assert_eq!(p, staircase_accel::NO_PARENT);
            } else {
                prop_assert!(p < v);
                prop_assert!(doc.post(p) > doc.post(v));
                prop_assert_eq!(doc.level(p) + 1, doc.level(v));
            }
        }
    }

    /// Encoding → Document → Encoding is the identity on all columns.
    #[test]
    fn roundtrip_through_tree(doc in arb_doc()) {
        let rebuilt = Doc::from_document(&doc.to_document());
        prop_assert_eq!(doc.len(), rebuilt.len());
        prop_assert_eq!(doc.post_column(), rebuilt.post_column());
        prop_assert_eq!(doc.kind_column(), rebuilt.kind_column());
        for v in doc.pres() {
            prop_assert_eq!(doc.level(v), rebuilt.level(v));
            prop_assert_eq!(doc.parent(v), rebuilt.parent(v));
            prop_assert_eq!(doc.tag_name(v), rebuilt.tag_name(v));
        }
    }

    /// The height-bounded descendant window (paper line 7) never loses a
    /// descendant.
    #[test]
    fn descendant_window_sound(doc in arb_doc()) {
        for c in doc.pres() {
            let ((pl, ph), (ql, qh)) = doc.descendant_window(c);
            for v in doc.pres() {
                if v > c && doc.post(v) < doc.post(c) {
                    prop_assert!(pl <= v && v <= ph, "pre window c={} v={}", c, v);
                    prop_assert!(ql <= doc.post(v) && doc.post(v) <= qh);
                }
            }
        }
    }

    /// Context name tests agree with a brute-force filter.
    #[test]
    fn name_test_agrees(doc in arb_doc()) {
        let all: Context = doc.pres().collect();
        for tag in ["a", "b", "zzz"] {
            let got = all.name_test(&doc, tag);
            let want: Vec<u32> = doc
                .pres()
                .filter(|&v| doc.kind(v) == NodeKind::Element && doc.tag_name(v) == Some(tag))
                .collect();
            prop_assert_eq!(got.as_slice(), &want[..]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Persistence round-trips arbitrary encodings bit-exactly, and the
    /// decoded document passes full validation.
    #[test]
    fn persistence_roundtrip(doc in arb_doc()) {
        let bytes = doc.to_bytes();
        let back = Doc::from_bytes(&bytes).expect("self-produced bytes decode");
        prop_assert_eq!(doc.len(), back.len());
        prop_assert_eq!(doc.post_column(), back.post_column());
        prop_assert_eq!(doc.kind_column(), back.kind_column());
        prop_assert_eq!(doc.tag_column(), back.tag_column());
        for v in doc.pres() {
            prop_assert_eq!(doc.parent(v), back.parent(v));
            prop_assert_eq!(doc.level(v), back.level(v));
            prop_assert_eq!(doc.content(v), back.content(v));
        }
        prop_assert_eq!(back.validate(), Ok(()));
    }

    /// Truncated inputs never decode successfully (and never panic).
    #[test]
    fn persistence_rejects_truncation(doc in arb_doc(), frac in 0.0f64..1.0) {
        let bytes = doc.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(Doc::from_bytes(&bytes[..cut]).is_err());
    }

    /// Every generated encoding passes validation.
    #[test]
    fn arbitrary_docs_validate(doc in arb_doc()) {
        prop_assert_eq!(doc.validate(), Ok(()));
    }
}
