//! # staircase-bench
//!
//! The experiment harness: every table and figure of the paper's
//! evaluation (§4.4) has a regenerator here, shared between the `repro`
//! binary (`cargo run -p staircase-bench --release --bin repro`) and the
//! Criterion benches (`cargo bench`).
//!
//! | Paper artifact | Regenerator |
//! |---|---|
//! | Table 1 (intermediary result sizes)            | [`experiments::table1`] |
//! | Figure 11(a) duplicates avoided (Q2)           | [`experiments::fig11a`] |
//! | Figure 11(b) staircase join performance (Q2)   | [`experiments::fig11b`] |
//! | Figure 11(c) skipping: nodes accessed (Q1)     | [`experiments::fig11c`] |
//! | Figure 11(d) skipping: execution time (Q1)     | [`experiments::fig11d`] |
//! | Figure 11(e) comparison, Q1                    | [`experiments::fig11e`] |
//! | Figure 11(f) comparison, Q2                    | [`experiments::fig11f`] |
//! | §4.3 copy-phase bandwidth                      | [`experiments::bandwidth`] |
//! | §6 tag-name fragmentation (Q1)                 | [`experiments::fragmentation`] |
//! | §3.2/§6 partitioned parallelism                | [`experiments::parallel`] |

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod workload;

pub use table::Table;
pub use workload::{Workload, BATCH_MIXED, BATCH_VERTICAL, QUERY_Q1, QUERY_Q2};
