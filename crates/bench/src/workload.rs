//! Shared experiment workloads: generated documents plus the paper's two
//! benchmark queries.

use staircase_accel::{Context, Doc};
use staircase_core::TagIndex;
use staircase_xmlgen::{generate, XmarkConfig};
use staircase_xpath::Session;

/// Q1 of the paper: `/descendant::profile/descendant::education`.
pub const QUERY_Q1: &str = "/descendant::profile/descendant::education";
/// Q2 of the paper: `/descendant::increase/ancestor::bidder`.
pub const QUERY_Q2: &str = "/descendant::increase/ancestor::bidder";

/// The vertical batch workload: eight descendant/ancestor queries
/// sharing plenty of plane regions — every first step starts at the
/// root. Shared by the `batch_throughput` Criterion bench and the
/// JSON-emitting `bench_batch_throughput` runner.
pub const BATCH_VERTICAL: [&str; 8] = [
    QUERY_Q1,
    QUERY_Q2,
    "/descendant::bidder",
    "/descendant::date/ancestor::open_auction",
    "/descendant::person",
    "/descendant::increase",
    "/descendant::open_auction/descendant::date",
    "/descendant::education/ancestor::person",
];

/// The mixed batch workload: semijoin predicates, fragment-join-planned
/// name tests, horizontal axes — the step shapes early batching could
/// not share — with the overlap a server's query log actually has (hot
/// tags recur, popular axis shapes repeat).
pub const BATCH_MIXED: [&str; 8] = [
    "/descendant::bidder[increase]",
    "/descendant::bidder[date]",
    "/descendant::bidder[increase]/ancestor::open_auction",
    "/descendant::open_auction[bidder]/descendant::date",
    "/descendant::bidder/following::node()",
    "/descendant::open_auction/following::node()",
    "/descendant::person/preceding::node()",
    "/descendant::education/preceding::node()",
];

/// A generated document wrapped in a [`Session`], so every experiment
/// shares one set of lazily built auxiliary structures (tag fragments,
/// SQL B-tree) instead of rebuilding them per engine.
pub struct Workload {
    /// Scale factor used for generation (≈ MB of XML text).
    pub scale: f64,
    session: Session,
}

impl Workload {
    /// Generates the workload for `scale` (deterministic).
    pub fn generate(scale: f64) -> Workload {
        Workload {
            scale,
            session: Session::new(generate(XmarkConfig::new(scale))),
        }
    }

    /// Generates the workload for `scale` on a session whose worker
    /// pool has `threads` executors — the width-sweep entry point of
    /// the batch-throughput benches.
    pub fn generate_with_threads(scale: f64, threads: usize) -> Workload {
        Workload {
            scale,
            session: Session::new(generate(XmarkConfig::new(scale))).with_threads(threads),
        }
    }

    /// The session owning the document and its cached structures.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The encoded document.
    pub fn doc(&self) -> &Doc {
        self.session.doc()
    }

    /// Tag fragments (for pushdown / fragmentation experiments), built on
    /// first use and cached by the session.
    pub fn tags(&self) -> &TagIndex {
        self.session.tag_index()
    }

    /// The paper's sweep of document sizes (1.1 → 1111 MB), shrunk by
    /// `factor` so the three-decade *shape* survives at laptop runtimes:
    /// `factor = 1.0` reproduces the paper's sizes.
    pub fn paper_scales(factor: f64) -> Vec<f64> {
        [1.1, 11.0, 111.0, 1111.0]
            .iter()
            .map(|s| s * factor)
            .collect()
    }

    /// Root context `(r)` — every paper query starts at the root.
    pub fn root(&self) -> Context {
        Context::singleton(self.doc().root())
    }

    /// All `increase` elements (Q2's first intermediate after name test).
    pub fn increases(&self) -> Context {
        self.tags()
            .fragment_by_name(self.doc(), "increase")
            .iter()
            .copied()
            .collect()
    }

    /// All `profile` elements (Q1's first intermediate after name test).
    pub fn profiles(&self) -> Context {
        self.tags()
            .fragment_by_name(self.doc(), "profile")
            .iter()
            .copied()
            .collect()
    }
}

/// Median wall-clock duration of `runs` executions of `f`, in
/// milliseconds.
pub fn time_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(out);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_query_targets() {
        let w = Workload::generate(0.3);
        assert!(!w.increases().is_empty());
        assert!(!w.profiles().is_empty());
        assert_eq!(w.root().as_slice(), &[0]);
    }

    #[test]
    fn paper_scales_shrinkable() {
        assert_eq!(Workload::paper_scales(1.0), vec![1.1, 11.0, 111.0, 1111.0]);
        let small = Workload::paper_scales(0.01);
        assert!((small[0] - 0.011).abs() < 1e-9);
    }

    #[test]
    fn time_ms_returns_positive() {
        let t = time_ms(3, || (0..10_000u64).sum::<u64>());
        assert!(t >= 0.0);
    }

    #[test]
    fn workload_reuses_aux_structures() {
        let w = Workload::generate(0.1);
        let _ = w.profiles();
        let _ = w.increases();
        let _ = w.tags();
        assert_eq!(
            w.session().aux_builds().tag_index,
            1,
            "one TagIndex for all fragments"
        );
    }
}
