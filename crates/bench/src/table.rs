//! Plain-text result tables (with CSV export).

use std::fmt;

/// A printable experiment result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption (e.g. `Figure 11(a): duplicates avoided`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// CSV rendering (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        for r in &self.rows {
            print_row(f, r)?;
        }
        Ok(())
    }
}

/// Helper: `format!` each cell via `ToString`.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$($x.to_string()),*][..]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_prints() {
        let mut t = Table::new("demo", &["size", "value"]);
        t.row(cells!(1, "a"));
        t.row(cells!(100, "bb"));
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("size"));
        assert!(s.contains("100"));
    }

    #[test]
    fn csv_export() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(cells!(1, 2));
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(cells!(1));
    }
}
