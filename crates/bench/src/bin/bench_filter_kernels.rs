//! `bench_filter_kernels` — scalar vs masked name-test filtering over
//! a scan window.
//!
//! The workload is the hot shape of the pre/post-plane operators: a
//! name test over a contiguous pre-rank window (the `following`
//! suffix, a descendant partition's copy phase, a fused lane's shared
//! base). Three kernels, identical survivors asserted each round:
//!
//! * `scalar` — the pre-mask per-element loop: two column loads and a
//!   data-dependent branch per node;
//! * `mask` — the per-tag [`TagBitmap`] window select the engine runs
//!   for gap-free candidate runs once `DocStats::bitmap_worthwhile`
//!   prices the (lazily built, cached) bitmap in: word-aligned slices,
//!   ~64 positions per load, zero words skipped wholesale;
//! * `mask_columns` — the gathered-column kernel
//!   ([`mask::select_tag_candidates`]), the masked path for gappy
//!   candidate lists and sessions without a resolved tag index.
//!
//! Writes `BENCH_filter_kernels.json`: one record per doc size ×
//! selectivity × kernel with ns/node and speedup over scalar. The
//! bitmap build itself is recorded as `mask_build` (paid once per tag,
//! amortized over every later touch by the cost-model gate).
//!
//! ```text
//! cargo run -p staircase-bench --release --bin bench_filter_kernels
//!     [--smoke]      3 repetitions instead of 200 (CI keep-alive mode)
//!     [--out PATH]   output path (default BENCH_filter_kernels.json)
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use staircase_accel::NodeKind;
use staircase_core::{mask, TagBitmap};

const SIZES: [usize; 2] = [10_000, 100_000];
const SELECTIVITIES: [f64; 4] = [0.001, 0.01, 0.10, 0.50];
/// The benchmarked tag id; the decoy ids dilute it to the target rate.
const TID: u32 = 7;

struct Record {
    nodes: usize,
    selectivity: f64,
    kernel: &'static str,
    ns_per_node: f64,
    speedup_vs_scalar: f64,
    survivors: usize,
}

/// Deterministic xorshift64* stream (no external RNG dependency).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Synthetic parallel columns: every position is an element; the tag
/// equals [`TID`] at the target rate and a rotating decoy otherwise.
fn columns(n: usize, selectivity: f64, seed: u64) -> (Vec<u8>, Vec<u32>) {
    let mut rng = Rng(seed | 1);
    let kinds = vec![NodeKind::Element as u8; n];
    let tags = (0..n)
        .map(|v| {
            if rng.next_f64() < selectivity {
                TID
            } else {
                // Decoys never collide with TID.
                let decoy = (v as u32) % 16;
                decoy + u32::from(decoy >= TID)
            }
        })
        .collect();
    (kinds, tags)
}

/// The pre-mask per-element window filter, kept verbatim as baseline.
fn scalar_filter(kind: &[u8], tags: &[u32], want: u8, tid: u32, n: u32, out: &mut Vec<u32>) {
    for v in 0..n {
        if kind[v as usize] == want && tags[v as usize] == tid {
            out.push(v);
        }
    }
}

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_filter_kernels.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = if smoke { 3 } else { 200 };
    let element = NodeKind::Element as u8;

    let mut records: Vec<Record> = Vec::new();
    for &n in &SIZES {
        for &sel in &SELECTIVITIES {
            let (kinds, tags) = columns(n, sel, 0x5747_u64 ^ n as u64);
            let cands: Vec<u32> = (0..n as u32).collect();

            let mut out = Vec::with_capacity(n);
            let scalar_secs = best_secs(reps, || {
                out.clear();
                scalar_filter(&kinds, &tags, element, TID, n as u32, &mut out);
                std::hint::black_box(out.len());
            });
            let want = out.clone();

            let build_secs = best_secs(reps, || {
                std::hint::black_box(TagBitmap::build(&kinds, element, &tags, TID).ones());
            });
            let bitmap = TagBitmap::build(&kinds, element, &tags, TID);
            let window_secs = best_secs(reps, || {
                out.clear();
                bitmap.select_window(0, n, &mut out);
                std::hint::black_box(out.len());
            });
            assert_eq!(
                out, want,
                "bitmap window select must match the scalar filter"
            );

            let columns_secs = best_secs(reps, || {
                out.clear();
                mask::select_tag_candidates(&kinds, &tags, element, TID, &cands, &mut out);
                std::hint::black_box(out.len());
            });
            assert_eq!(out, want, "column mask must match the scalar filter");

            let scalar_ns = scalar_secs / n as f64 * 1e9;
            for (kernel, secs) in [
                ("scalar", scalar_secs),
                ("mask", window_secs),
                ("mask_columns", columns_secs),
                ("mask_build", build_secs),
            ] {
                let ns = secs / n as f64 * 1e9;
                records.push(Record {
                    nodes: n,
                    selectivity: sel,
                    kernel,
                    ns_per_node: ns,
                    speedup_vs_scalar: scalar_ns / ns,
                    survivors: want.len(),
                });
                eprintln!(
                    "n {n:>7}  sel {sel:>5.3}  {kernel:<12} {ns:>7.3} ns/node  ({:>6.2}x vs scalar, {} survivors)",
                    scalar_ns / ns,
                    want.len(),
                );
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"filter_kernels\",");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"note\": \"name test over a contiguous scan window; mask = per-tag bitmap window select, mask_columns = gathered kind/tag mask kernel, mask_build = one-off lazy bitmap build (amortized by the cost-model gate)\","
    );
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"doc_nodes\": {}, \"selectivity\": {}, \"kernel\": \"{}\", \
             \"ns_per_node\": {:.4}, \"speedup_vs_scalar\": {:.3}, \"survivors\": {}}}",
            r.nodes, r.selectivity, r.kernel, r.ns_per_node, r.speedup_vs_scalar, r.survivors
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
