//! `bench_twig` — worst-case-optimal twig matching vs step-at-a-time.
//!
//! Two workloads over the same query shapes:
//!
//! * **skewed** — the adversarial rare-under-common documents from
//!   `staircase_xmlgen::generate_skewed` (`--skew` sets the Zipf
//!   exponent): a huge `a[b]` frontier of which only a planted sliver
//!   leads to the rare `c[d]` tail. Step-at-a-time plans materialize
//!   the whole frontier; the fused `StepOp::Twig` leapfrog runs its
//!   pivot cursor over the tiny `c` fragment instead.
//! * **uniform** — the XMark-like generator at comparable size, where
//!   step-at-a-time is already near-optimal and `Engine::auto` must
//!   *decline* twig fusion rather than regress.
//!
//! Per workload × engine (fragmented step-at-a-time, forced twig,
//! auto) the harness records wall time (best of `--iters`), result
//! cardinality, nodes touched, leapfrog seeks, and the **peak
//! intermediate** (largest per-step context), and asserts all engines
//! agree on the result before writing `BENCH_twig.json`.
//!
//! ```text
//! cargo run -p staircase-bench --release --bin bench_twig --
//!     [--skew Z]      Zipf exponent for the skewed documents (1.2)
//!     [--scale S]     document scale, ≈ 50k nodes per unit (4.0)
//!     [--iters N]     timed runs per engine, best kept (5)
//!     [--seed U]      skewed-generator seed (default 0x5EED)
//!     [--out PATH]    output path (BENCH_twig.json)
//!     [--smoke]       small doc, 2 iters (CI keep-alive)
//! ```
//!
//! CI runs `--smoke` on every push and uploads the JSON as an
//! artifact, alongside the other BENCH JSONs.

use std::fmt::Write as _;
use std::time::Instant;

use staircase_xmlgen::{generate, generate_skewed, SkewConfig, XmarkConfig};
use staircase_xpath::{Engine, Session, StepOp};

struct Config {
    skew: f64,
    scale: f64,
    iters: usize,
    seed: u64,
    out_path: String,
}

/// One engine's measurements on one query.
struct Measurement {
    engine: &'static str,
    ms: f64,
    rows: usize,
    touched: u64,
    seeks: u64,
    peak_intermediate: usize,
    fused_steps: usize,
}

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        (
            "step",
            Engine::staircase()
                .fragmented(true)
                .build()
                .expect("fragmented step engine is valid"),
        ),
        ("twig", Engine::twig()),
        ("auto", Engine::auto()),
    ]
}

fn measure(session: &Session, expr: &str, cfg: &Config) -> Vec<Measurement> {
    let query = session.prepare(expr).expect("benchmark query parses");
    let mut out = Vec::new();
    for (name, engine) in engines() {
        let fused_steps = query
            .explain(engine)
            .branches()
            .iter()
            .flat_map(|b| b.steps())
            .filter(|s| matches!(s.operator(), StepOp::Twig(_)))
            .count();
        let mut best_ms = f64::INFINITY;
        let mut kept = None;
        for _ in 0..cfg.iters {
            let started = Instant::now();
            let result = query.run(engine);
            let ms = started.elapsed().as_secs_f64() * 1e3;
            if ms < best_ms {
                best_ms = ms;
                kept = Some(result);
            }
        }
        let result = kept.expect("at least one iteration ran");
        let stats = result.stats();
        out.push(Measurement {
            engine: name,
            ms: best_ms,
            rows: result.len(),
            touched: stats.total_touched(),
            seeks: stats.total_seeks(),
            peak_intermediate: stats.steps.iter().map(|s| s.result_size).max().unwrap_or(0),
            fused_steps,
        });
    }
    // The whole point is that only the access pattern changes.
    for pair in out.windows(2) {
        assert_eq!(
            pair[0].rows, pair[1].rows,
            "{expr}: {} and {} disagree on cardinality",
            pair[0].engine, pair[1].engine
        );
    }
    out
}

fn by<'m>(ms: &'m [Measurement], engine: &str) -> &'m Measurement {
    ms.iter()
        .find(|m| m.engine == engine)
        .expect("engine measured")
}

fn write_queries(json: &mut String, results: &[(&str, Vec<Measurement>)]) {
    json.push_str("  \"queries\": [\n");
    for (qi, (expr, ms)) in results.iter().enumerate() {
        let _ = writeln!(json, "    {{\"query\": \"{expr}\", \"engines\": [");
        for (ei, m) in ms.iter().enumerate() {
            let _ = write!(
                json,
                "      {{\"engine\": \"{}\", \"ms\": {:.3}, \"rows\": {}, \
                 \"touched\": {}, \"seeks\": {}, \"peak_intermediate\": {}, \
                 \"fused_steps\": {}}}",
                m.engine, m.ms, m.rows, m.touched, m.seeks, m.peak_intermediate, m.fused_steps
            );
            json.push_str(if ei + 1 < ms.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ]}");
        json.push_str(if qi + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]");
}

fn main() {
    let mut cfg = Config {
        skew: 1.2,
        scale: 4.0,
        iters: 5,
        seed: 0x5EED,
        out_path: "BENCH_twig.json".to_string(),
    };
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match a.as_str() {
            "--skew" => cfg.skew = next("--skew").parse().expect("--skew takes a number"),
            "--scale" => cfg.scale = next("--scale").parse().expect("number"),
            "--iters" => cfg.iters = next("--iters").parse().expect("number"),
            "--seed" => cfg.seed = next("--seed").parse().expect("number"),
            "--out" => cfg.out_path = next("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if smoke {
        cfg.scale = cfg.scale.min(0.5);
        cfg.iters = cfg.iters.min(2);
    }
    assert!(cfg.iters > 0, "--iters must be positive");

    // The adversarial query family the skewed generator is built for;
    // both descendant-chain and child-edge predicates so the leapfrog's
    // two edge kinds are exercised.
    let twig_queries = [
        "/descendant::a[descendant::b]/descendant::c[descendant::d]",
        "/descendant::a[child::b]/descendant::c[child::d]",
    ];
    // Uniform-workload shapes over the XMark vocabulary, twig-eligible
    // so `Engine::auto` has a real fuse-or-not decision to get right.
    let uniform_queries = [
        "/descendant::open_auction[descendant::bidder]/descendant::increase",
        "/descendant::person[child::profile]/descendant::education",
    ];

    let skewed = Session::new(generate_skewed(
        SkewConfig::new(cfg.scale, cfg.skew).with_seed(cfg.seed),
    ));
    skewed.warm();
    eprintln!(
        "skewed document: scale {}, zipf {}, {} nodes",
        cfg.scale,
        cfg.skew,
        skewed.doc().len()
    );
    let skew_results: Vec<(&str, Vec<Measurement>)> = twig_queries
        .iter()
        .map(|q| (*q, measure(&skewed, q, &cfg)))
        .collect();
    for (q, ms) in &skew_results {
        for m in ms {
            eprintln!(
                "  skew {:>4} {q}: {:.3} ms, {} rows, touched {}, seeks {}, peak {}",
                m.engine, m.ms, m.rows, m.touched, m.seeks, m.peak_intermediate
            );
        }
    }

    let uniform = Session::new(generate(XmarkConfig::new(cfg.scale)));
    uniform.warm();
    eprintln!(
        "uniform document: scale {}, {} nodes",
        cfg.scale,
        uniform.doc().len()
    );
    let uniform_results: Vec<(&str, Vec<Measurement>)> = uniform_queries
        .iter()
        .map(|q| (*q, measure(&uniform, q, &cfg)))
        .collect();
    for (q, ms) in &uniform_results {
        for m in ms {
            eprintln!(
                "  unif {:>4} {q}: {:.3} ms, {} rows, touched {}, seeks {}, peak {}",
                m.engine, m.ms, m.rows, m.touched, m.seeks, m.peak_intermediate
            );
        }
    }

    // Headline ratios: the skewed win (worst query's speedup, so the
    // claim holds across the family) and auto's worst uniform ratio.
    let speedup_skew = skew_results
        .iter()
        .map(|(_, ms)| by(ms, "step").ms / by(ms, "twig").ms.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let peak_shrink = skew_results
        .iter()
        .map(|(_, ms)| {
            by(ms, "step").peak_intermediate as f64
                / (by(ms, "twig").peak_intermediate.max(1)) as f64
        })
        .fold(f64::INFINITY, f64::min);
    let auto_uniform_ratio = uniform_results
        .iter()
        .map(|(_, ms)| by(ms, "auto").ms / by(ms, "step").ms.max(1e-9))
        .fold(0.0, f64::max);
    eprintln!(
        "skewed twig speedup ≥ {speedup_skew:.1}×, peak-intermediate shrink ≥ {peak_shrink:.1}×, \
         auto/step uniform ratio ≤ {auto_uniform_ratio:.3}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"twig\",");
    let _ = writeln!(json, "  \"zipf\": {},", cfg.skew);
    let _ = writeln!(json, "  \"scale\": {},", cfg.scale);
    let _ = writeln!(json, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(json, "  \"skewed_nodes\": {},", skewed.doc().len());
    let _ = writeln!(json, "  \"uniform_nodes\": {},", uniform.doc().len());
    let _ = writeln!(json, "  \"speedup_skew\": {:.2},", speedup_skew);
    let _ = writeln!(json, "  \"peak_intermediate_shrink\": {:.2},", peak_shrink);
    let _ = writeln!(json, "  \"auto_uniform_ratio\": {:.3},", auto_uniform_ratio);
    json.push_str("  \"skewed\": {\n  ");
    write_queries(&mut json, &skew_results);
    json.push_str("\n  },\n  \"uniform\": {\n  ");
    write_queries(&mut json, &uniform_results);
    json.push_str("\n  }\n}\n");
    std::fs::write(&cfg.out_path, json).expect("write bench json");
    eprintln!("wrote {}", cfg.out_path);
}
