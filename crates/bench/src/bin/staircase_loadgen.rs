//! `staircase-loadgen` — open-loop load generator for the query server.
//!
//! Drives a `staircase-serve` instance (or a self-hosted in-process
//! server) with a fixed-rate request schedule and records latency from
//! each request's *scheduled* send time, not its actual send time, so a
//! server that falls behind pays for its backlog in the percentiles
//! (no coordinated omission).
//!
//! By default it self-hosts the server twice over one generated
//! document — once with `--window-us 0` (pass-through, every query its
//! own `run_many` call) and once with the admission window enabled —
//! and writes both modes to `BENCH_server_latency.json` so the batching
//! win on shared-scan mixes is recorded next to the pass-through
//! baseline.
//!
//! ```text
//! cargo run -p staircase-bench --release --bin staircase-loadgen --
//!     [--qps Q]          target request rate per mode (default 400)
//!     [--duration-s D]   seconds of load per mode (default 5)
//!     [--concurrency C]  client connections (default 8)
//!     [--window-us W]    admission window for the batched mode (2000)
//!     [--max-batch B]    admission batch cap (default 32)
//!     [--scale S]        xmlgen scale for the self-hosted doc (0.4)
//!     [--engine E]       wire engine name (default staircase)
//!     [--mix PATH]       query mix file, one XPath per line
//!                        (default: the BATCH_MIXED workload)
//!     [--deadline-ms N]  attach a per-query governor deadline to every
//!                        request; server-side TIMEOUT answers are
//!                        counted per mode instead of failing the run
//!     [--addr A]         drive an external server instead of
//!                        self-hosting (single mode, no window sweep)
//!     [--out PATH]       output path (BENCH_server_latency.json)
//!     [--smoke]          1 s per mode at modest qps (CI keep-alive)
//! ```
//!
//! Each mode records, besides the latency percentiles, the governed-
//! failure counts the client observed — `busy` (backpressure),
//! `timeout` (deadline trips), `cancelled` — so a run under deadline
//! pressure shows *where* the load shed instead of a bare error total.
//!
//! CI runs `--smoke` on every push and uploads the JSON as an artifact,
//! alongside `BENCH_batch_throughput.json`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use staircase_bench::BATCH_MIXED;
use staircase_server::{mix, Client, ClientError, QueryOptions, Server, ServerConfig};
use staircase_xmlgen::{generate, XmarkConfig};
use staircase_xpath::Session;

struct Config {
    qps: f64,
    duration: Duration,
    concurrency: usize,
    window_us: u64,
    max_batch: usize,
    scale: f64,
    engine: String,
    mix_path: Option<String>,
    deadline_ms: Option<u32>,
    addr: Option<String>,
    out_path: String,
}

/// One mode's worth of measurements, plus the server-side counters
/// scraped from its STATS frame.
struct ModeResult {
    mode: &'static str,
    window_us: u64,
    ok: u64,
    busy: u64,
    timeout: u64,
    cancelled: u64,
    errors: u64,
    achieved_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    batches: u64,
    avg_batch: f64,
}

/// What one mode's drive observed, client side.
struct DriveCounts {
    latencies: Vec<f64>,
    ok: u64,
    busy: u64,
    timeout: u64,
    cancelled: u64,
    errors: u64,
    achieved_qps: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stat_line(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key).map(str::trim_start))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Open-loop drive: `concurrency` connections share one fixed-rate
/// schedule; connection `w` owns requests `w, w+C, w+2C, …`, each sent
/// at `start + i/qps` (or immediately if already late — the lateness is
/// the point) and timed from that scheduled instant.
fn drive(addr: &str, queries: &[String], cfg: &Config) -> DriveCounts {
    let total = (cfg.qps * cfg.duration.as_secs_f64()).round() as usize;
    let interval = Duration::from_secs_f64(1.0 / cfg.qps);
    let busy = Arc::new(AtomicU64::new(0));
    let timeout = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let workers: Vec<_> = (0..cfg.concurrency)
        .map(|w| {
            let addr = addr.to_string();
            let queries = queries.to_vec();
            let engine = cfg.engine.clone();
            let deadline_ms = cfg.deadline_ms;
            let concurrency = cfg.concurrency;
            let busy = Arc::clone(&busy);
            let timeout = Arc::clone(&timeout);
            let cancelled = Arc::clone(&cancelled);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                use staircase_server::protocol::code;
                let mut client = Client::connect(&addr).expect("loadgen connect");
                let opts = QueryOptions {
                    engine,
                    render: false,
                    count_only: true,
                    deadline_ms,
                };
                let mut latencies: Vec<f64> = Vec::new();
                let mut i = w;
                while i < total {
                    let scheduled = started + interval.mul_f64(i as f64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    match client.query(&queries[i % queries.len()], &opts) {
                        Ok(_) => latencies.push(scheduled.elapsed().as_secs_f64() * 1e3),
                        Err(ClientError::Server { code: c, .. }) if c == code::BUSY => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { code: c, .. })
                            if c == code::TIMEOUT || c == code::RESOURCE =>
                        {
                            timeout.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { code: c, .. }) if c == code::CANCELLED => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += concurrency;
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    for worker in workers {
        latencies.extend(worker.join().expect("loadgen worker"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ok = latencies.len() as u64;
    DriveCounts {
        ok,
        busy: busy.load(Ordering::Relaxed),
        timeout: timeout.load(Ordering::Relaxed),
        cancelled: cancelled.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        achieved_qps: ok as f64 / elapsed,
        latencies,
    }
}

/// Drive one mode against a live server and fold the measurements and
/// the server's STATS counters into a `ModeResult`.
fn run_mode(
    mode: &'static str,
    window_us: u64,
    addr: &str,
    queries: &[String],
    cfg: &Config,
) -> ModeResult {
    let counts = drive(addr, queries, cfg);
    let stats = Client::connect(addr)
        .ok()
        .and_then(|mut c| c.server_stats().ok())
        .unwrap_or_default();
    let batches = stat_line(&stats, "batches ");
    let batched = stat_line(&stats, "batched_queries ");
    let result = ModeResult {
        mode,
        window_us,
        ok: counts.ok,
        busy: counts.busy,
        timeout: counts.timeout,
        cancelled: counts.cancelled,
        errors: counts.errors,
        achieved_qps: counts.achieved_qps,
        p50_ms: percentile(&counts.latencies, 50.0),
        p95_ms: percentile(&counts.latencies, 95.0),
        p99_ms: percentile(&counts.latencies, 99.0),
        batches,
        avg_batch: if batches > 0 {
            batched as f64 / batches as f64
        } else {
            0.0
        },
    };
    eprintln!(
        "{mode:>12} (window {window_us:>5} µs): {} ok, {} busy, {} timeout, {} cancelled, \
         {} err, {:.0} qps, p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms, avg batch {:.2}",
        result.ok,
        result.busy,
        result.timeout,
        result.cancelled,
        result.errors,
        result.achieved_qps,
        result.p50_ms,
        result.p95_ms,
        result.p99_ms,
        result.avg_batch
    );
    result
}

/// Self-host a server over `session` with the given window, drive it,
/// and shut it down.
fn hosted_mode(
    mode: &'static str,
    window_us: u64,
    session: &Arc<Session>,
    queries: &[String],
    cfg: &Config,
) -> ModeResult {
    let server_config = ServerConfig {
        window: Duration::from_micros(window_us),
        max_batch: cfg.max_batch,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(session), server_config).expect("loadgen server binds");
    let addr = handle.local_addr().to_string();
    let result = run_mode(mode, window_us, &addr, queries, cfg);
    handle.shutdown_and_join();
    result
}

fn main() {
    let mut cfg = Config {
        qps: 400.0,
        duration: Duration::from_secs(5),
        concurrency: 8,
        window_us: 2000,
        max_batch: 32,
        scale: 0.4,
        engine: "staircase".to_string(),
        mix_path: None,
        deadline_ms: None,
        addr: None,
        out_path: "BENCH_server_latency.json".to_string(),
    };
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match a.as_str() {
            "--qps" => cfg.qps = next("--qps").parse().expect("--qps takes a number"),
            "--duration-s" => {
                cfg.duration =
                    Duration::from_secs_f64(next("--duration-s").parse().expect("number"))
            }
            "--concurrency" => cfg.concurrency = next("--concurrency").parse().expect("number"),
            "--window-us" => cfg.window_us = next("--window-us").parse().expect("number"),
            "--max-batch" => cfg.max_batch = next("--max-batch").parse().expect("number"),
            "--scale" => cfg.scale = next("--scale").parse().expect("number"),
            "--engine" => cfg.engine = next("--engine"),
            "--mix" => cfg.mix_path = Some(next("--mix")),
            "--deadline-ms" => {
                cfg.deadline_ms = Some(next("--deadline-ms").parse().expect("number"))
            }
            "--addr" => cfg.addr = Some(next("--addr")),
            "--out" => cfg.out_path = next("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if smoke {
        cfg.qps = cfg.qps.min(200.0);
        cfg.duration = Duration::from_secs(1);
    }
    assert!(
        cfg.qps > 0.0 && cfg.concurrency > 0,
        "qps and concurrency must be positive"
    );

    // The query mix: a file of one-XPath-per-line (shared loader with
    // `xq --query-file` and the same skip/report contract), or the
    // shared-scan BATCH_MIXED workload.
    let queries: Vec<String> = match &cfg.mix_path {
        Some(path) => {
            let (lines, issues) = mix::read_query_lines(path).expect("read query mix");
            for issue in &issues {
                eprintln!(
                    "loadgen: {path}:{}: {} (skipped)",
                    issue.lineno, issue.message
                );
            }
            assert!(!lines.is_empty(), "query mix {path} has no usable lines");
            lines.into_iter().map(|l| l.text).collect()
        }
        None => BATCH_MIXED.iter().map(|s| s.to_string()).collect(),
    };

    let modes: Vec<ModeResult> = if let Some(addr) = cfg.addr.clone() {
        // External server: one mode, whatever window it was started with.
        vec![run_mode("external", cfg.window_us, &addr, &queries, &cfg)]
    } else {
        let session = Arc::new(Session::new(generate(XmarkConfig::new(cfg.scale))));
        session.warm();
        eprintln!(
            "self-hosted document: scale {}, {} nodes; {} queries in mix",
            cfg.scale,
            session.doc().len(),
            queries.len()
        );
        vec![
            hosted_mode("passthrough", 0, &session, &queries, &cfg),
            hosted_mode("batched", cfg.window_us, &session, &queries, &cfg),
        ]
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server_latency\",");
    let _ = writeln!(json, "  \"qps_target\": {},", cfg.qps);
    let _ = writeln!(json, "  \"duration_s\": {},", cfg.duration.as_secs_f64());
    let _ = writeln!(json, "  \"concurrency\": {},", cfg.concurrency);
    let _ = writeln!(json, "  \"engine\": \"{}\",", cfg.engine);
    let _ = writeln!(json, "  \"mix_queries\": {},", queries.len());
    json.push_str("  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"window_us\": {}, \"ok\": {}, \"busy\": {}, \
             \"timeout\": {}, \"cancelled\": {}, \"errors\": {}, \"achieved_qps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"batches\": {}, \
             \"avg_batch\": {:.2}}}",
            m.mode,
            m.window_us,
            m.ok,
            m.busy,
            m.timeout,
            m.cancelled,
            m.errors,
            m.achieved_qps,
            m.p50_ms,
            m.p95_ms,
            m.p99_ms,
            m.batches,
            m.avg_batch
        );
        json.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&cfg.out_path, json).expect("write bench json");
    eprintln!("wrote {}", cfg.out_path);
}
