//! `bench_batch_throughput` — the perf-trajectory recorder for the
//! parallel lane executor.
//!
//! Runs the vertical and mixed batch workloads through
//! `Session::run_many` at pool widths 1, 2, and 4 and writes
//! `BENCH_batch_throughput.json` (machine-readable: one record per
//! workload × engine × width with wall time, throughput, speedup over
//! width 1, and the touched-node total — which must be *identical*
//! across widths, asserted here, since morsels change who reads a
//! position, never whether it is read).
//!
//! ```text
//! cargo run -p staircase-bench --release --bin bench_batch_throughput
//!     [--smoke]      3 repetitions instead of 120 (CI keep-alive mode)
//!     [--scale S]    xmlgen scale factor (default 0.4, ≈ 20k nodes)
//!     [--out PATH]   output path (default BENCH_batch_throughput.json)
//! ```
//!
//! CI runs `--smoke` on every push and uploads the JSON as an artifact,
//! so the throughput trajectory accumulates run over run.

use std::fmt::Write as _;
use std::time::Instant;

use staircase_bench::{Workload, BATCH_MIXED, BATCH_VERTICAL};
use staircase_xpath::{Engine, Query, Session};

const WIDTHS: [usize; 3] = [1, 2, 4];

struct Record {
    workload: &'static str,
    engine: &'static str,
    width: usize,
    best_ms: f64,
    queries_per_sec: f64,
    speedup_vs_width1: f64,
    touched: u64,
}

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut smoke = false;
    let mut scale = 0.4f64;
    let mut out_path = "BENCH_batch_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a number");
            }
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown flag {other}"),
        }
    }
    let reps = if smoke { 3 } else { 120 };

    // One session per width over the same generated document.
    let workloads: Vec<Workload> = WIDTHS
        .iter()
        .map(|&w| Workload::generate_with_threads(scale, w))
        .collect();
    for w in &workloads {
        w.session().warm();
    }
    let nodes = workloads[0].doc().len();
    eprintln!(
        "document: scale {scale}, {nodes} nodes, height {}; reps {reps}",
        workloads[0].doc().height()
    );

    let engines: [(&str, Engine); 3] = [
        ("staircase", Engine::default()),
        (
            "fragmented",
            Engine::staircase().fragmented(true).build().unwrap(),
        ),
        ("auto", Engine::auto()),
    ];
    let cases: [(&str, &[&str]); 2] = [("vertical", &BATCH_VERTICAL), ("mixed", &BATCH_MIXED)];

    let mut records: Vec<Record> = Vec::new();
    for (workload_name, exprs) in cases {
        for (engine_name, engine) in engines {
            let mut base_ms = 0.0f64;
            let mut base_touched = 0u64;
            for (wi, w) in workloads.iter().enumerate() {
                let session: &Session = w.session();
                let queries: Vec<Query> = exprs
                    .iter()
                    .map(|e| session.prepare(e).expect("workload query parses"))
                    .collect();
                let refs: Vec<&Query> = queries.iter().collect();
                let secs = best_secs(reps, || {
                    std::hint::black_box(session.run_many(&refs, engine));
                });
                let touched: u64 = session
                    .run_many(&refs, engine)
                    .iter()
                    .map(|o| o.stats().total_touched())
                    .sum();
                if wi == 0 {
                    base_ms = secs * 1e3;
                    base_touched = touched;
                } else {
                    assert_eq!(
                        touched, base_touched,
                        "{workload_name}/{engine_name}: touched totals must not depend on width"
                    );
                }
                records.push(Record {
                    workload: workload_name,
                    engine: engine_name,
                    width: WIDTHS[wi],
                    best_ms: secs * 1e3,
                    queries_per_sec: exprs.len() as f64 / secs,
                    speedup_vs_width1: base_ms / (secs * 1e3),
                    touched,
                });
                eprintln!(
                    "{workload_name:>8}/{engine_name:<10} width {:>2}: {:>8.3} ms  ({:.2}x vs width 1, touched {touched})",
                    WIDTHS[wi],
                    secs * 1e3,
                    base_ms / (secs * 1e3),
                );
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"batch_throughput\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"doc_nodes\": {nodes},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"width\": {}, \
             \"best_ms\": {:.4}, \"queries_per_sec\": {:.1}, \
             \"speedup_vs_width1\": {:.3}, \"touched_nodes\": {}}}",
            r.workload,
            r.engine,
            r.width,
            r.best_ms,
            r.queries_per_sec,
            r.speedup_vs_width1,
            r.touched
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
