//! `bench_adaptive` — mid-query re-planning and cracked fragments.
//!
//! Four measurements around the two feedback loops:
//!
//! * **misleading** — the misleading-statistics documents from
//!   `staircase_xmlgen::generate_misleading`: every global statistic is
//!   honest, yet `//a/descendant::b`'s true frontier is ~three orders
//!   of magnitude above the Equation-1 estimate and heavily nested.
//!   Static `Engine::auto` prices the card-scaled SQL plan as cheap
//!   and pays its unpruned per-context scans; `Engine::adaptive`
//!   observes the real frontier at the step boundary and switches to
//!   the pruning staircase join. Recorded ratios: adaptive vs auto
//!   (the win) and adaptive vs the best fixed engine (the oracle gap).
//! * **uniform** — the XMark-like generator, where the estimates are
//!   right and re-planning must stay out of the way (adaptive/auto
//!   ratio ≈ 1).
//! * **convergence** — on a fresh lazy session, how many queries until
//!   a hot tag's cracked fragment is promoted to fully sorted
//!   (bounded by `CRACK_CONVERGE_TOUCHES`), and that cold tags stay
//!   unbuilt throughout.
//! * **amortization** — first-query latency of a lazy session vs one
//!   pre-cracked with `Session::warm_tags`, and how fast the lazy
//!   session's per-query time converges to the warmed steady state.
//!
//! All engines are asserted node-count-identical per query before
//! `BENCH_adaptive.json` is written.
//!
//! ```text
//! cargo run -p staircase-bench --release --bin bench_adaptive --
//!     [--scale S]     document scale, ≈ 50k nodes per unit (10.0)
//!     [--iters N]     timed runs per engine, best kept (5)
//!     [--seed U]      misleading-generator seed (default 0x1517)
//!     [--out PATH]    output path (BENCH_adaptive.json)
//!     [--smoke]       small doc, 2 iters (CI keep-alive)
//! ```
//!
//! CI runs `--smoke` on every push and uploads the JSON as an
//! artifact, alongside the other BENCH JSONs.

use std::fmt::Write as _;
use std::time::Instant;

use staircase_core::CRACK_CONVERGE_TOUCHES;
use staircase_xmlgen::{generate, generate_misleading, MisleadConfig, XmarkConfig};
use staircase_xpath::{Engine, Session};

/// The query family the misleading generator is built for: the `b`
/// frontier explodes after step 2, and step 3 is where the static and
/// observed cost rankings disagree.
const MISLEAD_QUERY: &str = "/descendant::a/descendant::b/descendant::node()";

struct Config {
    scale: f64,
    iters: usize,
    seed: u64,
    out_path: String,
}

/// One engine's measurements on one query.
struct Measurement {
    engine: &'static str,
    ms: f64,
    rows: usize,
    touched: u64,
    seeks: u64,
    replans: usize,
}

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        ("adaptive", Engine::adaptive()),
        ("auto", Engine::auto()),
        (
            "staircase",
            Engine::staircase()
                .build()
                .expect("plain staircase engine is valid"),
        ),
        (
            "fragmented",
            Engine::staircase()
                .fragmented(true)
                .build()
                .expect("fragmented step engine is valid"),
        ),
    ]
}

fn measure(session: &Session, expr: &str, cfg: &Config) -> Vec<Measurement> {
    let query = session.prepare(expr).expect("benchmark query parses");
    let mut out = Vec::new();
    for (name, engine) in engines() {
        let mut best_ms = f64::INFINITY;
        let mut kept = None;
        for _ in 0..cfg.iters {
            let started = Instant::now();
            let result = query.run(engine);
            let ms = started.elapsed().as_secs_f64() * 1e3;
            if ms < best_ms {
                best_ms = ms;
                kept = Some(result);
            }
        }
        let result = kept.expect("at least one iteration ran");
        let stats = result.stats();
        out.push(Measurement {
            engine: name,
            ms: best_ms,
            rows: result.len(),
            touched: stats.total_touched(),
            seeks: stats.total_seeks(),
            replans: stats.steps.iter().filter(|s| s.replanned).count(),
        });
    }
    // Re-planning may only change the access pattern, never the answer.
    for pair in out.windows(2) {
        assert_eq!(
            pair[0].rows, pair[1].rows,
            "{expr}: {} and {} disagree on cardinality",
            pair[0].engine, pair[1].engine
        );
    }
    out
}

fn by<'m>(ms: &'m [Measurement], engine: &str) -> &'m Measurement {
    ms.iter()
        .find(|m| m.engine == engine)
        .expect("engine measured")
}

/// The oracle: the best fixed (non-adaptive, non-auto) engine's time.
fn oracle_ms(ms: &[Measurement]) -> f64 {
    ms.iter()
        .filter(|m| m.engine != "adaptive" && m.engine != "auto")
        .map(|m| m.ms)
        .fold(f64::INFINITY, f64::min)
}

fn write_queries(json: &mut String, results: &[(&str, Vec<Measurement>)]) {
    json.push_str("  \"queries\": [\n");
    for (qi, (expr, ms)) in results.iter().enumerate() {
        let _ = writeln!(json, "    {{\"query\": \"{expr}\", \"engines\": [");
        for (ei, m) in ms.iter().enumerate() {
            let _ = write!(
                json,
                "      {{\"engine\": \"{}\", \"ms\": {:.3}, \"rows\": {}, \
                 \"touched\": {}, \"seeks\": {}, \"replans\": {}}}",
                m.engine, m.ms, m.rows, m.touched, m.seeks, m.replans
            );
            json.push_str(if ei + 1 < ms.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ]}");
        json.push_str(if qi + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]");
}

/// Queries until the hot tag's fragment is promoted on a fresh lazy
/// session, plus the fate of the cold tags (they must stay unbuilt).
fn convergence(cfg: &Config) -> (usize, bool) {
    let session = Session::new(generate_misleading(
        MisleadConfig::new(cfg.scale).with_seed(cfg.seed),
    ));
    // Windowed fragment touches: the fragmented engine cracks `b` one
    // context window at a time.
    let engine = Engine::staircase()
        .fragmented(true)
        .build()
        .expect("fragmented step engine is valid");
    let query = session
        .prepare("/descendant::a/descendant::b")
        .expect("convergence query parses");
    let mut until_built = 0usize;
    for i in 1..=(CRACK_CONVERGE_TOUCHES as usize + 2) {
        query.run(engine);
        if session.tag_fragment_built("b") {
            until_built = i;
            break;
        }
    }
    let cold_untouched = ["w", "f", "p0", "p3"]
        .iter()
        .all(|t| !session.tag_fragment_built(t));
    (until_built, cold_untouched)
}

/// Per-query times of a lazy session vs one pre-cracked with
/// `warm_tags`, over `runs` repeats of the hot query.
fn amortization(cfg: &Config, runs: usize) -> (Vec<f64>, Vec<f64>) {
    let time_series = |session: &Session| -> Vec<f64> {
        let query = session
            .prepare("/descendant::a/descendant::b")
            .expect("amortization query parses");
        (0..runs)
            .map(|_| {
                let started = Instant::now();
                query.run(
                    Engine::staircase()
                        .fragmented(true)
                        .build()
                        .expect("fragmented step engine is valid"),
                );
                started.elapsed().as_secs_f64() * 1e3
            })
            .collect()
    };
    let mislead = MisleadConfig::new(cfg.scale).with_seed(cfg.seed);
    let lazy = Session::new(generate_misleading(mislead));
    let warmed = Session::new(generate_misleading(mislead));
    warmed.warm_tags(&["a", "b"]);
    (time_series(&lazy), time_series(&warmed))
}

fn main() {
    let mut cfg = Config {
        scale: 10.0,
        iters: 5,
        seed: 0x1517,
        out_path: "BENCH_adaptive.json".to_string(),
    };
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match a.as_str() {
            "--scale" => cfg.scale = next("--scale").parse().expect("number"),
            "--iters" => cfg.iters = next("--iters").parse().expect("number"),
            "--seed" => cfg.seed = next("--seed").parse().expect("number"),
            "--out" => cfg.out_path = next("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    if smoke {
        // Scale 4 is the smallest document where the misleading
        // workload's cost-ranking flip (and thus the replan) occurs.
        cfg.scale = cfg.scale.min(4.0);
        cfg.iters = cfg.iters.min(2);
    }
    assert!(cfg.iters > 0, "--iters must be positive");

    let mislead = Session::new(generate_misleading(
        MisleadConfig::new(cfg.scale).with_seed(cfg.seed),
    ));
    mislead.warm();
    eprintln!(
        "misleading document: scale {}, {} nodes, height {}",
        cfg.scale,
        mislead.doc().len(),
        mislead.doc().height()
    );
    let mislead_results = vec![(MISLEAD_QUERY, measure(&mislead, MISLEAD_QUERY, &cfg))];
    for (q, ms) in &mislead_results {
        for m in ms {
            eprintln!(
                "  mislead {:>10} {q}: {:.3} ms, {} rows, touched {}, seeks {}, replans {}",
                m.engine, m.ms, m.rows, m.touched, m.seeks, m.replans
            );
        }
    }

    // Uniform XMark: estimates are accurate, the static plan is right,
    // and the adaptive engine's only job is to not regress.
    let uniform_queries = [
        "/descendant::open_auction/descendant::bidder/descendant::increase",
        "/descendant::person/child::profile",
    ];
    let uniform = Session::new(generate(XmarkConfig::new(cfg.scale.min(4.0))));
    uniform.warm();
    eprintln!(
        "uniform document: scale {}, {} nodes",
        cfg.scale.min(4.0),
        uniform.doc().len()
    );
    let uniform_results: Vec<(&str, Vec<Measurement>)> = uniform_queries
        .iter()
        .map(|q| (*q, measure(&uniform, q, &cfg)))
        .collect();
    for (q, ms) in &uniform_results {
        for m in ms {
            eprintln!(
                "  uniform {:>10} {q}: {:.3} ms, {} rows, replans {}",
                m.engine, m.ms, m.rows, m.replans
            );
        }
    }

    let (until_built, cold_untouched) = convergence(&cfg);
    assert!(cold_untouched, "cold tags must stay unbuilt");
    assert!(
        until_built > 0 && until_built <= CRACK_CONVERGE_TOUCHES as usize,
        "hot tag converged in {until_built} queries (limit {CRACK_CONVERGE_TOUCHES})"
    );
    eprintln!(
        "cracking: hot tag fully sorted after {until_built} queries \
         (limit {CRACK_CONVERGE_TOUCHES}), cold tags unbuilt: {cold_untouched}"
    );

    let amortize_runs = 10usize;
    let (lazy_ms, warmed_ms) = amortization(&cfg, amortize_runs);
    // Steady state: the best of the last three runs, robust to noise.
    let steady = |xs: &[f64]| {
        xs[xs.len().saturating_sub(3)..]
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
    };
    let amortized_ratio = steady(&lazy_ms) / steady(&warmed_ms).max(1e-9);
    let first_query_ratio = lazy_ms[0] / steady(&warmed_ms).max(1e-9);
    eprintln!(
        "amortization: lazy first query {:.3} ms ({first_query_ratio:.2}× warmed steady), \
         lazy steady/warmed steady {amortized_ratio:.3}",
        lazy_ms[0]
    );

    // Headline ratios.
    let mislead_ms = &mislead_results[0].1;
    let speedup_vs_auto = by(mislead_ms, "auto").ms / by(mislead_ms, "adaptive").ms.max(1e-9);
    let adaptive_over_oracle = by(mislead_ms, "adaptive").ms / oracle_ms(mislead_ms).max(1e-9);
    let adaptive_uniform_ratio = uniform_results
        .iter()
        .map(|(_, ms)| by(ms, "adaptive").ms / by(ms, "auto").ms.max(1e-9))
        .fold(0.0, f64::max);
    let mislead_replans = by(mislead_ms, "adaptive").replans;
    assert!(
        mislead_replans > 0,
        "the misleading workload must trigger at least one replan"
    );
    eprintln!(
        "adaptive speedup vs auto ≥ {speedup_vs_auto:.1}×, adaptive/oracle ≤ \
         {adaptive_over_oracle:.2}, adaptive/auto uniform ratio ≤ {adaptive_uniform_ratio:.3}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"adaptive\",");
    let _ = writeln!(json, "  \"scale\": {},", cfg.scale);
    let _ = writeln!(json, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(json, "  \"mislead_nodes\": {},", mislead.doc().len());
    let _ = writeln!(json, "  \"uniform_nodes\": {},", uniform.doc().len());
    let _ = writeln!(json, "  \"speedup_vs_auto\": {:.2},", speedup_vs_auto);
    let _ = writeln!(
        json,
        "  \"adaptive_over_oracle\": {:.3},",
        adaptive_over_oracle
    );
    let _ = writeln!(
        json,
        "  \"adaptive_uniform_ratio\": {:.3},",
        adaptive_uniform_ratio
    );
    let _ = writeln!(json, "  \"mislead_replans\": {},", mislead_replans);
    let _ = writeln!(
        json,
        "  \"cracking\": {{\"queries_until_built\": {until_built}, \
         \"converge_limit\": {CRACK_CONVERGE_TOUCHES}, \
         \"cold_tags_built\": {}}},",
        !cold_untouched
    );
    let fmt_series = |xs: &[f64]| {
        let mut s = String::from("[");
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(s, "{x:.3}");
            if i + 1 < xs.len() {
                s.push_str(", ");
            }
        }
        s.push(']');
        s
    };
    let _ = writeln!(
        json,
        "  \"amortization\": {{\"lazy_ms\": {}, \"warmed_ms\": {}, \
         \"steady_ratio\": {amortized_ratio:.3}, \
         \"first_query_ratio\": {first_query_ratio:.3}}},",
        fmt_series(&lazy_ms),
        fmt_series(&warmed_ms)
    );
    json.push_str("  \"misleading\": {\n  ");
    write_queries(&mut json, &mislead_results);
    json.push_str("\n  },\n  \"uniform\": {\n  ");
    write_queries(&mut json, &uniform_results);
    json.push_str("\n  }\n}\n");
    std::fs::write(&cfg.out_path, json).expect("write bench json");
    eprintln!("wrote {}", cfg.out_path);
}
