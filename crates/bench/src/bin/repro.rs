//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--factor F] [--runs N] [--csv DIR]
//!
//! EXPERIMENT: all | table1 | fig11a | fig11b | fig11c | fig11d
//!           | fig11e | fig11f | bandwidth | fragmentation | parallel
//!           | profile
//! --factor F  shrink the paper's 1.1/11/111/1111 MB document sweep by F
//!             (default 0.05 → ≈ 2.7 k – 2.8 M nodes; use 1.0 for the
//!             paper's full sizes if you have the patience and RAM)
//! --runs N    timing repetitions per point (median reported; default 3)
//! --csv DIR   additionally write each table as DIR/<name>.csv
//! ```

use staircase_bench::experiments as exp;
use staircase_bench::{Table, Workload};

struct Args {
    experiment: String,
    factor: f64,
    runs: usize,
    csv: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".into(),
        factor: 0.05,
        runs: 3,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--factor" => {
                args.factor = it
                    .next()
                    .ok_or("--factor needs a value")?
                    .parse()
                    .map_err(|e| format!("--factor: {e}"))?;
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--csv" => {
                args.csv = Some(it.next().ok_or("--csv needs a directory")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: repro [EXPERIMENT] [--factor F] [--runs N] [--csv DIR]".to_string(),
                );
            }
            other if !other.starts_with('-') => args.experiment = other.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn emit(table: &Table, csv: &Option<String>) {
    println!("{table}");
    if let Some(dir) = csv {
        std::fs::create_dir_all(dir).expect("create csv dir");
        // Slug from the title's identifying prefix — up to the first ':'
        // (which keeps the figure letter), else up to the first '(':
        // alphanumeric runs joined by '-'.
        let head: &str = match table.title.find(':') {
            Some(i) => &table.title[..i],
            None => table.title.split('(').next().unwrap_or(&table.title),
        };
        let mut name = String::new();
        let mut gap = false;
        for c in head.chars() {
            if c.is_ascii_alphanumeric() {
                if gap && !name.is_empty() {
                    name.push('-');
                }
                name.push(c.to_ascii_lowercase());
                gap = false;
            } else {
                gap = true;
            }
        }
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("  (csv written to {path})");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "generating workloads (factor {}, paper sweep 1.1/11/111/1111 MB → scales {:?}) …",
        args.factor,
        Workload::paper_scales(args.factor)
    );
    let t0 = std::time::Instant::now();
    let workloads: Vec<Workload> = Workload::paper_scales(args.factor)
        .into_iter()
        .map(|s| {
            let w = Workload::generate(s);
            eprintln!(
                "  scale {:>8.3} → {:>9} nodes (height {})",
                s,
                w.doc().len(),
                w.doc().height()
            );
            w
        })
        .collect();
    eprintln!("workloads ready in {:.1}s\n", t0.elapsed().as_secs_f64());
    let largest = workloads.last().expect("at least one workload");

    let run = |name: &str| args.experiment == "all" || args.experiment == name;

    if run("profile") && args.experiment == "profile" {
        // Structural profile only (document statistics).
        for w in &workloads {
            let p = staircase_xmlgen::DocProfile::measure(w.doc());
            println!("scale {:>8.3}: {p:#?}", w.scale);
        }
        return;
    }

    if run("verify") || args.experiment == "all" {
        let ok = exp::verify_engines_agree(&workloads[0]);
        eprintln!(
            "engine cross-check on smallest workload: {}",
            if ok { "OK" } else { "MISMATCH" }
        );
        assert!(ok, "engines disagree — results would be meaningless");
    }

    if run("table1") {
        emit(&exp::table1(largest), &args.csv);
    }
    if run("fig11a") {
        emit(&exp::fig11a(&workloads), &args.csv);
    }
    if run("fig11b") {
        emit(&exp::fig11b(&workloads, args.runs), &args.csv);
    }
    if run("fig11c") {
        emit(&exp::fig11c(&workloads), &args.csv);
    }
    if run("fig11d") {
        emit(&exp::fig11d(&workloads, args.runs), &args.csv);
    }
    if run("fig11e") {
        emit(&exp::fig11e(&workloads, args.runs), &args.csv);
    }
    if run("fig11f") {
        emit(&exp::fig11f(&workloads, args.runs), &args.csv);
    }
    if run("bandwidth") {
        emit(&exp::bandwidth(largest, args.runs), &args.csv);
    }
    if run("fragmentation") {
        emit(&exp::fragmentation(largest, args.runs), &args.csv);
    }
    if run("parallel") {
        emit(&exp::parallel(largest, &[1, 2, 4, 8], args.runs), &args.csv);
    }
    if run("storage") {
        // Keep the XML text in memory affordable: cap the scale.
        let scale = workloads
            .iter()
            .map(|w| w.scale)
            .fold(0.0, f64::max)
            .min(20.0);
        emit(&exp::storage(scale, args.runs), &args.csv);
    }
    if run("density") {
        emit(&exp::context_density(largest), &args.csv);
    }
}
