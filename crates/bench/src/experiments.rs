//! Regenerators for every table and figure of the paper's evaluation.
//!
//! Each function returns a [`Table`] whose *shape* is comparable with the
//! paper's plot/table: same series, same sweep, same counted quantities.
//! Absolute timings obviously differ (2003 Pentium 4 vs this machine), but
//! who wins, by what factor, and how curves scale with document size is
//! reproduced. `EXPERIMENTS.md` records paper-vs-measured side by side.

use staircase_accel::{Axis, Context};
use staircase_baselines::naive_step;
use staircase_core::{ancestor, ancestor_parallel, descendant, descendant_parallel, Variant};
use staircase_storage::scan::{append_run, append_run_unrolled};
use staircase_xpath::Engine;

/// Staircase join with §4.4 query-time name-test pushdown.
fn pushdown_engine() -> Engine {
    Engine::staircase()
        .pushdown(true)
        .build()
        .expect("pushdown engine config is valid")
}

/// Staircase join over §6 prebuilt per-tag fragments.
fn fragmented_engine() -> Engine {
    Engine::staircase()
        .fragmented(true)
        .build()
        .expect("fragmented engine config is valid")
}

/// The SQL baseline with the paper's line-7 window and early name test.
fn sql_engine(eq1_window: bool) -> Engine {
    Engine::sql()
        .eq1_window(eq1_window)
        .early_nametest(true)
        .build()
        .expect("sql engine config is valid")
}

use crate::cells;
use crate::table::Table;
use crate::workload::{time_ms, Workload, QUERY_Q1, QUERY_Q2};

/// **Table 1** — number of nodes in intermediary results for Q1 and Q2.
///
/// Paper values (1 GB / 50 844 982-node document):
/// Q1: 47 015 212, 127 984, 1 849 360, 63 793;
/// Q2: 47 015 212, 597 777, 706 193, 597 777.
pub fn table1(w: &Workload) -> Table {
    let mut t = Table::new(
        format!(
            "Table 1: intermediary result sizes (scale {}, {} nodes)",
            w.scale,
            w.doc().len()
        ),
        &[
            "query",
            "step1 axis",
            "step1 nametest",
            "step2 axis",
            "step2 nametest",
        ],
    );
    let root = w.root();

    // Q1: /descendant::profile/descendant::education
    let (d1, _) = descendant(w.doc(), &root, Variant::EstimationSkipping);
    let profiles = d1.name_test(w.doc(), "profile");
    let (d2, _) = descendant(w.doc(), &profiles, Variant::EstimationSkipping);
    let educations = d2.name_test(w.doc(), "education");
    t.row(cells!(
        QUERY_Q1,
        d1.len(),
        profiles.len(),
        d2.len(),
        educations.len()
    ));

    // Q2: /descendant::increase/ancestor::bidder
    let increases = d1.name_test(w.doc(), "increase");
    let (a2, _) = ancestor(w.doc(), &increases, Variant::Skipping);
    let bidders = a2.name_test(w.doc(), "bidder");
    t.row(cells!(
        QUERY_Q2,
        d1.len(),
        increases.len(),
        a2.len(),
        bidders.len()
    ));
    t
}

/// **Figure 11(a)** — duplicates avoided: nodes the naive strategy
/// produces for Q2's ancestor step versus the staircase join's
/// duplicate-free result, across document sizes.
pub fn fig11a(workloads: &[Workload]) -> Table {
    let mut t = Table::new(
        "Figure 11(a): avoiding duplicates (Q2 ancestor step)",
        &[
            "scale",
            "nodes",
            "naive produced",
            "staircase result",
            "duplicates avoided",
            "dup %",
        ],
    );
    for w in workloads {
        let ctx = w.increases();
        // The naive strategy produces |ancestor(c)| = level(c) tuples per
        // context node; summing the level column gives the exact tuple
        // count without paying the naive engine's quadratic scan cost at
        // large scales. (tests cross-check this against an actual
        // `naive_step` run on small documents.)
        let naive_produced: u64 = ctx.iter().map(|c| w.doc().level(c) as u64).sum();
        let (got, _) = ancestor(w.doc(), &ctx, Variant::Skipping);
        let dup = naive_produced - got.len() as u64;
        let pct = 100.0 * dup as f64 / naive_produced.max(1) as f64;
        t.row(cells!(
            w.scale,
            w.doc().len(),
            naive_produced,
            got.len(),
            dup,
            format!("{pct:.1}")
        ));
    }
    t
}

/// Cross-check used by tests: the analytic naive tuple count of
/// [`fig11a`] equals what the executable naive engine actually produces.
pub fn naive_count_crosscheck(w: &Workload) -> (u64, u64) {
    let ctx = w.increases();
    let analytic: u64 = ctx.iter().map(|c| w.doc().level(c) as u64).sum();
    let (_, naive) = naive_step(w.doc(), &ctx, Axis::Ancestor);
    (analytic, naive.tuples_produced)
}

/// **Figure 11(b)** — staircase join performance on Q2: execution time
/// versus document size (expect a linear trend — constant ns/node).
pub fn fig11b(workloads: &[Workload], runs: usize) -> Table {
    let mut t = Table::new(
        "Figure 11(b): staircase join performance (Q2)",
        &["scale", "nodes", "time ms", "ns/node"],
    );
    for w in workloads {
        let query = w.session().prepare(QUERY_Q2).expect("Q2 parses");
        let ms = time_ms(runs, || query.run(Engine::default()));
        let ns_per_node = ms * 1e6 / w.doc().len() as f64;
        t.row(cells!(
            w.scale,
            w.doc().len(),
            format!("{ms:.2}"),
            format!("{ns_per_node:.2}")
        ));
    }
    t
}

/// **Figure 11(c)** — effectiveness of skipping: nodes accessed by the
/// second axis step of Q1 under the three join variants, against the
/// result size.
pub fn fig11c(workloads: &[Workload]) -> Table {
    let mut t = Table::new(
        "Figure 11(c): skipping, nodes accessed (Q1 second step)",
        &[
            "scale",
            "nodes",
            "no skipping",
            "skipping",
            "skipping (estimated)",
            "result size",
        ],
    );
    for w in workloads {
        let profiles = w.profiles();
        let (r, basic) = descendant(w.doc(), &profiles, Variant::Basic);
        let (_, skip) = descendant(w.doc(), &profiles, Variant::Skipping);
        let (_, est) = descendant(w.doc(), &profiles, Variant::EstimationSkipping);
        t.row(cells!(
            w.scale,
            w.doc().len(),
            basic.nodes_touched(),
            skip.nodes_touched(),
            est.nodes_touched(),
            r.len()
        ));
    }
    t
}

/// **Figure 11(d)** — effectiveness of skipping: execution times of the
/// same three variants.
pub fn fig11d(workloads: &[Workload], runs: usize) -> Table {
    let mut t = Table::new(
        "Figure 11(d): skipping, execution time (Q1 second step)",
        &[
            "scale",
            "nodes",
            "no skipping ms",
            "skipping ms",
            "skipping (estimated) ms",
        ],
    );
    for w in workloads {
        let profiles = w.profiles();
        let basic = time_ms(runs, || descendant(w.doc(), &profiles, Variant::Basic));
        let skip = time_ms(runs, || descendant(w.doc(), &profiles, Variant::Skipping));
        let est = time_ms(runs, || {
            descendant(w.doc(), &profiles, Variant::EstimationSkipping)
        });
        t.row(cells!(
            w.scale,
            w.doc().len(),
            format!("{basic:.2}"),
            format!("{skip:.2}"),
            format!("{est:.2}")
        ));
    }
    t
}

/// **Figure 11(e)** — performance comparison on Q1: staircase join,
/// staircase join with early name test (pushdown), and the tree-unaware
/// SQL plan ("IBM DB2 SQL"). Two SQL variants are shown: the literal
/// Figure 3 plan, whose inner index scans are *unbounded* above (run only
/// while feasible — its cost is quadratic), and the same plan with the
/// paper's line-7 Equation-1 window, the optimizer hint §2.1 proposes.
pub fn fig11e(workloads: &[Workload], runs: usize) -> Table {
    comparison_figure(
        "Figure 11(e): performance comparison (Q1)",
        QUERY_Q1,
        workloads,
        runs,
    )
}

/// **Figure 11(f)** — performance comparison on Q2. Like the paper, the
/// SQL engine runs the manual rewrite
/// `/descendant::bidder[descendant::increase]` (the direct ancestor plan
/// is what DB2's optimizer mishandled).
pub fn fig11f(workloads: &[Workload], runs: usize) -> Table {
    let mut t = Table::new(
        "Figure 11(f): performance comparison (Q2)",
        &[
            "scale",
            "nodes",
            "staircase ms",
            "scj early nametest ms",
            "SQL (rewrite) ms",
            "SQL direct ancestor ms",
        ],
    );
    for w in workloads {
        let query = w.session().prepare(QUERY_Q2).expect("Q2 parses");
        let sql = w.session().sql_engine();
        let bidder = w.doc().tag_id("bidder").expect("bidder tag");
        let increase = w.doc().tag_id("increase").expect("increase tag");
        let root = w.root();

        let t_late = time_ms(runs, || query.run(Engine::default()));
        let t_early = time_ms(runs, || query.run(pushdown_engine()));
        let t_sql = time_ms(runs, || {
            sql.descendant_exists_rewrite(&root, bidder, increase)
        });
        // The plan the paper could not get DB2 to run acceptably: a direct
        // ancestor step, whose per-context prefix scans are quadratic.
        let t_direct = if w.doc().len() <= SQL_UNBOUNDED_LIMIT {
            format!("{:.2}", time_ms(runs, || query.run(sql_engine(true))))
        } else {
            "- (prefix scans infeasible)".to_string()
        };
        t.row(cells!(
            w.scale,
            w.doc().len(),
            format!("{t_late:.2}"),
            format!("{t_early:.2}"),
            format!("{t_sql:.2}"),
            t_direct
        ));
    }
    t
}

/// Documents above this size skip the unbounded SQL plan (quadratic cost).
const SQL_UNBOUNDED_LIMIT: usize = 200_000;

fn comparison_figure(title: &str, query: &str, workloads: &[Workload], runs: usize) -> Table {
    let mut t = Table::new(
        title,
        &[
            "scale",
            "nodes",
            "staircase ms",
            "scj early nametest ms",
            "SQL plan ms",
            "SQL+Eq1 window ms",
        ],
    );
    for w in workloads {
        let prepared = w.session().prepare(query).expect("paper query parses");
        // "Document loading time" work stays out of the timed region: force
        // the session's lazily built SQL B-tree before the clock starts.
        w.session().sql_engine();
        let t_late = time_ms(runs, || prepared.run(Engine::default()));
        let t_early = time_ms(runs, || prepared.run(pushdown_engine()));
        let t_sql = if w.doc().len() <= SQL_UNBOUNDED_LIMIT {
            format!("{:.2}", time_ms(runs, || prepared.run(sql_engine(false))))
        } else {
            "- (unbounded scans infeasible)".to_string()
        };
        let t_sqlw = time_ms(runs, || prepared.run(sql_engine(true)));
        t.row(cells!(
            w.scale,
            w.doc().len(),
            format!("{t_late:.2}"),
            format!("{t_early:.2}"),
            t_sql,
            format!("{t_sqlw:.2}")
        ));
    }
    t
}

/// **§4.3** — copy-phase memory bandwidth for `(root)/descendant`, the
/// experiment behind the paper's 719 MB/s (plain) vs 805 MB/s (unrolled +
/// prefetch) measurement. Bandwidth is computed with the paper's formula:
/// `(nodes read + written) × 4 bytes / time`.
pub fn bandwidth(w: &Workload, runs: usize) -> Table {
    let mut t = Table::new(
        format!(
            "§4.3 bandwidth: (root)/descendant copy phase ({} nodes)",
            w.doc().len()
        ),
        &["method", "time ms", "MB/s"],
    );
    let root = w.root();
    let n = w.doc().len() as f64;

    // Full staircase join (estimation skipping — almost pure copy phase).
    let ms = time_ms(runs, || {
        descendant(w.doc(), &root, Variant::EstimationSkipping)
    });
    let (result, _) = descendant(w.doc(), &root, Variant::EstimationSkipping);
    let bytes = (n + 1.0 + result.len() as f64) * 4.0;
    t.row(cells!(
        "staircase join (est. skipping)",
        format!("{ms:.2}"),
        format!("{:.0}", bytes / (ms / 1e3) / 1e6)
    ));

    // Raw copy kernels over the postorder column (load + store streams).
    let src = w.doc().post_column();
    let plain = time_ms(runs, || {
        let mut dst: Vec<u32> = Vec::with_capacity(src.len());
        append_run(&mut dst, src);
        dst
    });
    t.row(cells!(
        "plain copy kernel",
        format!("{plain:.2}"),
        format!("{:.0}", (2.0 * n * 4.0) / (plain / 1e3) / 1e6)
    ));
    let unrolled = time_ms(runs, || {
        let mut dst: Vec<u32> = Vec::with_capacity(src.len());
        append_run_unrolled(&mut dst, src);
        dst
    });
    t.row(cells!(
        "unrolled copy kernel (Duff)",
        format!("{unrolled:.2}"),
        format!("{:.0}", (2.0 * n * 4.0) / (unrolled / 1e3) / 1e6)
    ));
    t
}

/// **§6 future work** — fragmentation by tag name: Q1 over the full plane
/// versus over per-tag fragments (the paper saw 345 ms → 39 ms).
pub fn fragmentation(w: &Workload, runs: usize) -> Table {
    let mut t = Table::new(
        format!("§6 tag-name fragmentation (Q1, scale {})", w.scale),
        &["strategy", "time ms"],
    );
    let query = w.session().prepare(QUERY_Q1).expect("Q1 parses");
    // Fragments are "document loading time" work (§6): build them before
    // the clock starts so t_frag times the join, not TagIndex::build.
    w.session().tag_index();
    let t_full = time_ms(runs, || query.run(Engine::default()));
    let t_early = time_ms(runs, || query.run(pushdown_engine()));
    let t_frag = time_ms(runs, || query.run(fragmented_engine()));
    t.row(cells!("full plane, late nametest", format!("{t_full:.2}")));
    t.row(cells!(
        "query-time nametest pushdown",
        format!("{t_early:.2}")
    ));
    t.row(cells!("prebuilt per-tag fragments", format!("{t_frag:.2}")));
    t
}

/// **§3.2/§6** — partitioned parallel staircase join: the second axis
/// steps of Q1 (descendant) and Q2 (ancestor) across worker counts.
pub fn parallel(w: &Workload, threads: &[usize], runs: usize) -> Table {
    let mut t = Table::new(
        format!("§3.2/§6 partitioned parallelism (scale {})", w.scale),
        &["threads", "Q1 desc step ms", "Q2 anc step ms"],
    );
    let profiles = w.profiles();
    let increases = w.increases();
    for &workers in threads {
        let q1 = time_ms(runs, || {
            descendant_parallel(w.doc(), &profiles, Variant::EstimationSkipping, workers)
        });
        let q2 = time_ms(runs, || {
            ancestor_parallel(w.doc(), &increases, Variant::Skipping, workers)
        });
        t.row(cells!(workers, format!("{q1:.2}"), format!("{q2:.2}")));
    }
    t
}

/// **§4.1** — storage footprint and loading paths. The paper: "a document
/// occupies only about 1.5× its size in Monet using our storage
/// structure" (thanks to the void `pre` column). We report the encoded
/// size against the XML text size, plus load-path timings: XML parse +
/// encode, direct generation, and binary reload of a persisted plane.
pub fn storage(scale: f64, runs: usize) -> Table {
    use staircase_xmlgen::{generate_xml, XmarkConfig};
    let mut t = Table::new(
        format!("§4.1 storage footprint and loading (scale {scale})"),
        &["quantity", "value"],
    );
    let xml = generate_xml(XmarkConfig::new(scale));
    let doc = staircase_accel::Doc::from_xml(&xml).expect("generated XML parses");
    let encoded = doc.to_bytes();
    t.row(cells!("XML text bytes", xml.len()));
    t.row(cells!("encoded bytes (content retained)", encoded.len()));
    t.row(cells!(
        "encoded / XML ratio",
        format!("{:.2}", encoded.len() as f64 / xml.len() as f64)
    ));
    // Without content the encoding is the pure plane: 15 bytes/node
    // (post 4 + level 2 + kind 1 + tag 4 + parent 4).
    let plane_only = 16 + doc.len() * 15;
    t.row(cells!("plane-only bytes (no content)", plane_only));
    t.row(cells!(
        "plane-only / XML ratio",
        format!("{:.2}", plane_only as f64 / xml.len() as f64)
    ));
    t.row(cells!("nodes", doc.len()));

    let parse_ms = time_ms(runs, || staircase_accel::Doc::from_xml(&xml).unwrap());
    t.row(cells!(
        "load: parse XML + encode",
        format!("{parse_ms:.2} ms")
    ));
    let gen_ms = time_ms(runs, || staircase_xmlgen::generate(XmarkConfig::new(scale)));
    t.row(cells!("load: direct generation", format!("{gen_ms:.2} ms")));
    let reload_ms = time_ms(runs, || staircase_accel::Doc::from_bytes(&encoded).unwrap());
    t.row(cells!("load: binary reload", format!("{reload_ms:.2} ms")));
    t
}

/// **Ablation** — where skipping pays off: nodes touched by the second Q1
/// step as the context density varies. With one context node near the
/// root, every strategy must walk the result; with many scattered context
/// nodes, the tree-unaware plan re-reads shared regions while the
/// staircase join's pruning+skipping keeps accesses at
/// `result + context`.
pub fn context_density(w: &Workload) -> Table {
    let mut t = Table::new(
        format!(
            "ablation: context density vs nodes touched (scale {})",
            w.scale
        ),
        &[
            "context size",
            "staircase touched",
            "naive scanned",
            "sql entries",
            "result size",
        ],
    );
    let sql = w.session().sql_engine();
    let profiles = w.profiles();
    let all = profiles.as_slice();
    for take in [1usize, 10, 100, 1_000, all.len()] {
        let take = take.min(all.len());
        // Spread the sample across the document, not a prefix.
        let step = (all.len() / take).max(1);
        let ctx: Context = all.iter().step_by(step).take(take).copied().collect();
        let (r, sc) = descendant(w.doc(), &ctx, Variant::EstimationSkipping);
        let sql_stats = if w.doc().len() <= SQL_UNBOUNDED_LIMIT || take <= 100 {
            let (_, s) = sql.axis_step(
                &ctx,
                Axis::Descendant,
                staircase_baselines::SqlPlanOptions {
                    eq1_window: true,
                    early_nametest: None,
                },
            );
            s.index_entries_scanned.to_string()
        } else {
            "-".into()
        };
        // The naive strategy's scan volume is analytic: each context node
        // scans from its position to the end of the plane.
        let naive_scanned: u64 = ctx
            .iter()
            .map(|c| (w.doc().len() as u64).saturating_sub(c as u64 + 1))
            .sum();
        t.row(cells!(
            ctx.len(),
            sc.nodes_touched(),
            naive_scanned,
            sql_stats,
            r.len()
        ));
    }
    t
}

/// Sanity helper used by tests and the repro binary: all engines agree on
/// both queries for the given workload.
pub fn verify_engines_agree(w: &Workload) -> bool {
    let engines = [
        Engine::staircase()
            .variant(Variant::Basic)
            .build()
            .expect("valid engine config"),
        pushdown_engine(),
        fragmented_engine(),
        Engine::staircase()
            .parallel(4)
            .build()
            .expect("valid engine config"),
        Engine::naive(),
        sql_engine(true),
    ];
    for query in [QUERY_Q1, QUERY_Q2] {
        let Ok(prepared) = w.session().prepare(query) else {
            return false;
        };
        let results: Vec<Context> = engines
            .iter()
            .map(|&e| prepared.run(e).into_nodes())
            .collect();
        if !results.windows(2).all(|p| p[0] == p[1]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        Workload::generate(0.25)
    }

    #[test]
    fn table1_shape_matches_paper() {
        let w = small();
        let t = table1(&w);
        assert_eq!(t.rows.len(), 2);
        // Q1 and Q2 share the first intermediate (descendants of root).
        assert_eq!(t.rows[0][1], t.rows[1][1]);
        // education ≤ profile count; bidder count equals increase count.
        let q1_profiles: u64 = t.rows[0][2].parse().unwrap();
        let q1_educations: u64 = t.rows[0][4].parse().unwrap();
        assert!(q1_educations <= q1_profiles);
        let q2_increases: u64 = t.rows[1][2].parse().unwrap();
        let q2_bidders: u64 = t.rows[1][4].parse().unwrap();
        assert_eq!(q2_increases, q2_bidders);
        // ancestor result strictly larger than bidder count (adds
        // open_auction/open_auctions/site ancestors).
        let q2_anc: u64 = t.rows[1][3].parse().unwrap();
        assert!(q2_anc > q2_bidders);
    }

    #[test]
    fn fig11a_duplicate_ratio_near_75_percent() {
        let w = small();
        let t = fig11a(std::slice::from_ref(&w));
        let dup_pct: f64 = t.rows[0][5].parse().unwrap();
        // level(increase) = 4 and heavy path sharing at level 3 yields the
        // paper's "about 75%" duplicates.
        assert!((60.0..85.0).contains(&dup_pct), "duplicate ratio {dup_pct}");
    }

    #[test]
    fn fig11c_skipping_shrinks_access_counts() {
        let w = small();
        let t = fig11c(std::slice::from_ref(&w));
        let no_skip: u64 = t.rows[0][2].parse().unwrap();
        let skip: u64 = t.rows[0][3].parse().unwrap();
        let est: u64 = t.rows[0][4].parse().unwrap();
        let result: u64 = t.rows[0][5].parse().unwrap();
        assert!(skip < no_skip, "skipping must reduce accesses");
        assert!(est <= skip + 1);
        assert!(skip >= result, "accessed ≥ result");
    }

    #[test]
    fn engines_agree_on_generated_documents() {
        assert!(verify_engines_agree(&small()));
    }

    #[test]
    fn fig11a_analytic_count_matches_naive_engine() {
        let (analytic, executed) = naive_count_crosscheck(&small());
        assert_eq!(analytic, executed);
    }

    #[test]
    fn timing_tables_have_expected_shape() {
        let w = small();
        let ws = [w];
        assert_eq!(fig11b(&ws, 1).rows.len(), 1);
        assert_eq!(fig11d(&ws, 1).rows.len(), 1);
        assert_eq!(fig11e(&ws, 1).rows.len(), 1);
        assert_eq!(fig11f(&ws, 1).rows.len(), 1);
        assert_eq!(bandwidth(&ws[0], 1).rows.len(), 3);
        assert_eq!(fragmentation(&ws[0], 1).rows.len(), 3);
        assert_eq!(parallel(&ws[0], &[1, 2], 1).rows.len(), 2);
    }
}
