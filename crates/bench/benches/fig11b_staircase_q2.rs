//! Figure 11(b): staircase join performance on Q2 across document sizes.
//!
//! The paper's claim is *linearity*: execution times grow linearly with
//! document size because the join scans each table once. Criterion's
//! throughput view (elements = nodes) makes that visible as a flat
//! ns/node rate across the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use staircase_bench::{Workload, QUERY_Q2};
use staircase_xpath::Engine;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11b_q2_staircase");
    g.sample_size(10);
    for scale in [0.25, 1.0, 4.0] {
        let w = Workload::generate(scale);
        let query = w.session().prepare(QUERY_Q2).expect("Q2 parses");
        g.throughput(Throughput::Elements(w.doc().len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &query, |b, query| {
            b.iter(|| query.run(Engine::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
