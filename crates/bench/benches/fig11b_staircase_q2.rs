//! Figure 11(b): staircase join performance on Q2 across document sizes.
//!
//! The paper's claim is *linearity*: execution times grow linearly with
//! document size because the join scans each table once. Criterion's
//! throughput view (elements = nodes) makes that visible as a flat
//! ns/node rate across the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use staircase_bench::{Workload, QUERY_Q2};
use staircase_core::Variant;
use staircase_xpath::{Engine, Evaluator};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11b_q2_staircase");
    g.sample_size(10);
    for scale in [0.25, 1.0, 4.0] {
        let w = Workload::generate(scale);
        let eval = Evaluator::new(
            &w.doc,
            Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
        );
        g.throughput(Throughput::Elements(w.doc.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &eval, |b, eval| {
            b.iter(|| eval.evaluate(QUERY_Q2).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
