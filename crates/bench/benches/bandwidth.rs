//! §4.2/§4.3: copy-phase bandwidth of `(root)/descendant` and the raw
//! copy kernels (plain vs 8-way unrolled — the paper's Duff's-device
//! optimisation). Criterion reports bytes/second via `Throughput::Bytes`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use staircase_bench::Workload;
use staircase_core::{descendant, Variant};
use staircase_storage::scan::{append_run, append_run_unrolled};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(4.0);
    let n = w.doc().len();
    let root = w.root();

    let mut g = c.benchmark_group("bandwidth_root_descendant");
    g.sample_size(10);
    // Paper formula: bytes read + bytes written = (|doc| + ctx + result)×4.
    let (result, _) = descendant(w.doc(), &root, Variant::EstimationSkipping);
    g.throughput(Throughput::Bytes(((n + 1 + result.len()) * 4) as u64));
    g.bench_function("staircase_est_skipping", |b| {
        b.iter(|| descendant(w.doc(), &root, Variant::EstimationSkipping))
    });
    g.bench_function("staircase_basic", |b| {
        b.iter(|| descendant(w.doc(), &root, Variant::Basic))
    });
    g.finish();

    let mut g = c.benchmark_group("copy_kernels");
    g.sample_size(10);
    let src = w.doc().post_column();
    g.throughput(Throughput::Bytes((2 * n * 4) as u64));
    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut dst: Vec<u32> = Vec::with_capacity(src.len());
            append_run(&mut dst, src);
            dst
        })
    });
    g.bench_function("unrolled_duff", |b| {
        b.iter(|| {
            let mut dst: Vec<u32> = Vec::with_capacity(src.len());
            append_run_unrolled(&mut dst, src);
            dst
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
