//! Cost-based per-step operator picking (`Engine::auto`) vs every fixed
//! engine.
//!
//! The paper's experiments show no single evaluator winning everywhere:
//! tag fragmentation (§6) dominates highly selective name tests, the
//! estimation-skipping staircase join dominates unselective steps, and
//! the tree-unaware plans lose badly once contexts overlap. A fixed
//! engine therefore leaves time on the table whenever a workload mixes
//! shapes — which real workloads do. This bench runs three workloads
//! over a ~10k-node xmlgen document:
//!
//! * `skewed`  — selective name tests (rare tags, the fragmentation
//!   sweet spot);
//! * `uniform` — `node()`/`*` steps (the staircase sweet spot);
//! * `mixed`   — both interleaved, the planner's reason to exist.
//!
//! For each workload every fixed engine runs the whole batch, then
//! `Engine::auto` plans per step. The acceptance claim (printed at the
//! end): on the mixed workload auto is within 10% of the best fixed
//! engine and at least 1.3× faster than the worst. The session is
//! warmed first so auxiliary-structure construction (shared by
//! fragmented/sql/auto) is not attributed to any engine.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use staircase_bench::Workload;
use staircase_xpath::{Engine, Query, Session};

const SKEWED: [&str; 5] = [
    "/descendant::privacy",
    "/descendant::education/ancestor::person",
    "/descendant::increase/ancestor::open_auction",
    "/descendant::emph",
    "/descendant::bidder/descendant::date",
];

const UNIFORM: [&str; 4] = [
    "/descendant::node()",
    "/descendant::*",
    "/descendant::person/descendant::node()",
    "/descendant::date/ancestor::node()",
];

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        ("staircase", Engine::default()),
        (
            "basic",
            Engine::staircase()
                .variant(staircase_core::Variant::Basic)
                .build()
                .unwrap(),
        ),
        (
            "pushdown",
            Engine::staircase().pushdown(true).build().unwrap(),
        ),
        (
            "fragmented",
            Engine::staircase().fragmented(true).build().unwrap(),
        ),
        ("naive", Engine::naive()),
        (
            "sql",
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()
                .unwrap(),
        ),
        ("auto", Engine::auto()),
    ]
}

fn prepare<'s>(session: &'s Session, exprs: &[&str]) -> Vec<Query<'s>> {
    exprs
        .iter()
        .map(|e| session.prepare(e).expect("bench query parses"))
        .collect()
}

/// Best-of-N wall time for running the whole workload sequentially.
fn best_of(reps: usize, queries: &[Query<'_>], engine: Engine) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        for q in queries {
            std::hint::black_box(q.run(engine));
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench(c: &mut Criterion) {
    // Scale 0.2 ≈ 10k nodes.
    let w = Workload::generate(0.2);
    let session = w.session();
    session.warm();
    println!(
        "document: scale {}, {} nodes, height {}",
        w.scale,
        w.doc().len(),
        w.doc().height()
    );

    let mixed_exprs: Vec<&str> = SKEWED.iter().chain(UNIFORM.iter()).copied().collect();
    let workloads: Vec<(&str, Vec<Query<'_>>)> = vec![
        ("skewed", prepare(session, &SKEWED)),
        ("uniform", prepare(session, &UNIFORM)),
        ("mixed", prepare(session, &mixed_exprs)),
    ];

    for (wname, queries) in &workloads {
        let mut g = c.benchmark_group(format!("planner_auto_{wname}"));
        g.sample_size(10);
        for (ename, engine) in engines() {
            g.bench_function(ename, |b| {
                b.iter(|| {
                    for q in queries {
                        std::hint::black_box(q.run(engine));
                    }
                })
            });
        }
        g.finish();
    }

    // Direct acceptance measurement on the mixed workload: interleaved
    // best-of-N per engine, robust against frequency drift.
    let mixed = &workloads[2].1;
    let reps = if criterion::is_test_mode() { 1 } else { 30 };
    let mut times: Vec<(&str, f64)> = engines()
        .iter()
        .map(|(name, engine)| (*name, best_of(reps, mixed, *engine)))
        .collect();
    let auto_time = times
        .iter()
        .find(|(n, _)| *n == "auto")
        .map(|(_, t)| *t)
        .expect("auto measured");
    times.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nmixed workload, best of {reps} (total batch wall time):");
    for (name, t) in &times {
        println!(
            "  {name:<12} {:>9.3} ms  ({:.2}x auto)",
            t * 1e3,
            t / auto_time
        );
    }
    let best_fixed = times
        .iter()
        .filter(|(n, _)| *n != "auto")
        .map(|(_, t)| *t)
        .fold(f64::MAX, f64::min);
    let worst_fixed = times
        .iter()
        .filter(|(n, _)| *n != "auto")
        .map(|(_, t)| *t)
        .fold(0.0, f64::max);
    println!(
        "auto vs best fixed: {:.2}x (acceptance: ≤ 1.10x); vs worst fixed: {:.2}x faster \
         (acceptance: ≥ 1.3x)",
        auto_time / best_fixed,
        worst_fixed / auto_time
    );

    // The access-pattern story behind the wall times: touched totals.
    println!("\ntouched nodes (mixed workload):");
    for (name, engine) in engines() {
        let touched: u64 = mixed
            .iter()
            .map(|q| q.run(engine).stats().total_touched())
            .sum();
        println!("  {name:<12} {touched:>12}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
