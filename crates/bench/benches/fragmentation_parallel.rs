//! §6 future-work experiments: tag-name fragmentation (Q1 over per-tag
//! fragments vs the full plane) and the partitioned parallel join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use staircase_bench::{Workload, QUERY_Q1};
use staircase_core::{ancestor_parallel, descendant_parallel, Variant};
use staircase_xpath::Engine;

fn bench(c: &mut Criterion) {
    let w = Workload::generate(2.0);

    let mut g = c.benchmark_group("fragmentation_q1");
    g.sample_size(10);
    let query = w.session().prepare(QUERY_Q1).expect("Q1 parses");
    // Fragments are "document loading time" work: build them before the
    // measured region so the bench times the join, not TagIndex::build.
    w.session().tag_index();
    let pushdown = Engine::staircase()
        .pushdown(true)
        .build()
        .expect("valid engine config");
    let fragmented = Engine::staircase()
        .fragmented(true)
        .build()
        .expect("valid engine config");
    g.bench_function("full_plane", |b| b.iter(|| query.run(Engine::default())));
    g.bench_function("query_time_pushdown", |b| b.iter(|| query.run(pushdown)));
    g.bench_function("prebuilt_tag_fragments", |b| {
        b.iter(|| query.run(fragmented))
    });
    g.finish();

    let mut g = c.benchmark_group("parallel_partitions");
    g.sample_size(10);
    let profiles = w.profiles();
    let increases = w.increases();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("q1_descendant", threads),
            &threads,
            |b, &t| {
                b.iter(|| descendant_parallel(w.doc(), &profiles, Variant::EstimationSkipping, t))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("q2_ancestor", threads),
            &threads,
            |b, &t| b.iter(|| ancestor_parallel(w.doc(), &increases, Variant::Skipping, t)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
