//! §6 future-work experiments: tag-name fragmentation (Q1 over per-tag
//! fragments vs the full plane) and the partitioned parallel join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use staircase_bench::{Workload, QUERY_Q1};
use staircase_core::{ancestor_parallel, descendant_parallel, Variant};
use staircase_xpath::{Engine, Evaluator};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(2.0);

    let mut g = c.benchmark_group("fragmentation_q1");
    g.sample_size(10);
    let full = Evaluator::new(
        &w.doc,
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
    );
    let frag = Evaluator::new(
        &w.doc,
        Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true },
    );
    g.bench_function("full_plane", |b| b.iter(|| full.evaluate(QUERY_Q1).unwrap()));
    g.bench_function("tag_fragments", |b| b.iter(|| frag.evaluate(QUERY_Q1).unwrap()));
    g.finish();

    let mut g = c.benchmark_group("parallel_partitions");
    g.sample_size(10);
    let profiles = w.profiles();
    let increases = w.increases();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("q1_descendant", threads), &threads, |b, &t| {
            b.iter(|| descendant_parallel(&w.doc, &profiles, Variant::EstimationSkipping, t))
        });
        g.bench_with_input(BenchmarkId::new("q2_ancestor", threads), &threads, |b, &t| {
            b.iter(|| ancestor_parallel(&w.doc, &increases, Variant::Skipping, t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
