//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * pruning on/off — what the staircase shape itself buys;
//! * staircase join vs naive region queries vs MPMGJN on the same step;
//! * B-tree range scan vs positional plane scan (why the accelerator keeps
//!   `pre` as a void column).

use criterion::{criterion_group, criterion_main, Criterion};
use staircase_accel::{Axis, Context};
use staircase_baselines::{mpmgjn_join, naive_step, SqlPlanOptions};
use staircase_bench::Workload;
use staircase_core::{ancestor, descendant, descendant_fused, prune_descendant, Variant};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(1.0);
    let increases = w.increases();
    let profiles = w.profiles();

    // --- pruning cost and benefit -------------------------------------
    let mut g = c.benchmark_group("ablation_pruning");
    g.sample_size(10);
    g.bench_function("prune_descendant_pass", |b| {
        b.iter(|| prune_descendant(w.doc(), &profiles))
    });
    g.bench_function("prune_then_join", |b| {
        b.iter(|| descendant(w.doc(), &profiles, Variant::EstimationSkipping))
    });
    g.bench_function("fused_on_the_fly_pruning", |b| {
        b.iter(|| descendant_fused(w.doc(), &profiles, Variant::EstimationSkipping))
    });
    g.finish();

    // --- one ancestor step, four engines --------------------------------
    let mut g = c.benchmark_group("ablation_q2_ancestor_step");
    g.sample_size(10);
    g.bench_function("staircase_skipping", |b| {
        b.iter(|| ancestor(w.doc(), &increases, Variant::Skipping))
    });
    g.bench_function("staircase_basic", |b| {
        b.iter(|| ancestor(w.doc(), &increases, Variant::Basic))
    });
    g.bench_function("naive", |b| {
        b.iter(|| naive_step(w.doc(), &increases, Axis::Ancestor))
    });
    let sql = w.session().sql_engine();
    g.bench_function("sql_plan", |b| {
        b.iter(|| sql.axis_step(&increases, Axis::Ancestor, SqlPlanOptions::default()))
    });
    g.finish();

    // --- one descendant step: staircase vs MPMGJN ----------------------
    let mut g = c.benchmark_group("ablation_q1_descendant_step");
    g.sample_size(10);
    let dlist: Vec<u32> = w
        .doc()
        .pres()
        .filter(|&v| w.doc().kind(v) != staircase_accel::NodeKind::Attribute)
        .collect();
    let alist: Vec<u32> = profiles.iter().collect();
    g.bench_function("staircase_est_skipping", |b| {
        b.iter(|| descendant(w.doc(), &profiles, Variant::EstimationSkipping))
    });
    g.bench_function("mpmgjn", |b| {
        b.iter(|| mpmgjn_join(w.doc(), &alist, &dlist))
    });
    g.finish();

    // --- index scan vs positional scan ---------------------------------
    let mut g = c.benchmark_group("ablation_scan_paths");
    g.sample_size(10);
    let root = Context::singleton(w.doc().root());
    g.bench_function("plane_positional_scan", |b| {
        b.iter(|| descendant(w.doc(), &root, Variant::Basic))
    });
    g.bench_function("btree_range_scan", |b| {
        b.iter(|| sql.axis_step(&root, Axis::Descendant, SqlPlanOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
