//! Figures 11(c)/(d): effectiveness of skipping on Q1's second axis step.
//!
//! Three series — no skipping (Algorithm 2), skipping (Algorithm 3),
//! estimation-based skipping (Algorithm 4) — at two document sizes.
//! Figure 11(c)'s node-access counts are asserted by tests and printed by
//! the `repro` binary; this bench reproduces the 11(d) timing view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use staircase_bench::Workload;
use staircase_core::{descendant, Variant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11d_q1_second_step");
    g.sample_size(10);
    for scale in [1.0, 4.0] {
        let w = Workload::generate(scale);
        let profiles = w.profiles();
        for (name, variant) in [
            ("no_skipping", Variant::Basic),
            ("skipping", Variant::Skipping),
            ("skipping_estimated", Variant::EstimationSkipping),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, scale),
                &(&w, &profiles),
                |b, (w, profiles)| b.iter(|| descendant(w.doc(), profiles, variant)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
